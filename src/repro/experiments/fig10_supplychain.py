"""Fig. 10 extension — the confidential container supply chain.

The paper evaluates CVMs as FaaS hosts but stops short of how
confidential FaaS actually deploys: signed + encrypted container
images whose decryption keys a Key Broker Service releases only after
successful attestation.  This experiment puts the whole chain on the
boot critical path and measures the matrix operators care about:

- **eager vs lazy** pull (pull-then-run vs nydus-style
  chunk-on-demand): boot latency against warm-path chunk faults;
- **secure vs normal** deployment: the attestation + key-release +
  signature/decrypt tax over a plain unsigned pull of the same bytes;
- **cold vs warm relaunch**: wave 2 re-launches the same VM
  identities, so attestation sessions resume (PR 8) and the KBS
  handshake collapses to one exchange.

Every trial reconciles its counters against the ground-truth request
logs — KBS releases vs clean KBS log entries, registry fetches vs
clean registry entries, collateral origin fetches vs clean PCS
entries — and the experiment fails if any trial disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.errors import SupplyChainError
from repro.experiments.common import default_runner, mean
from repro.experiments.report import render_table

#: platforms with a modelled attestation flow (LaunchAttestor.SUPPORTED)
PLATFORMS = ("tdx", "sev-snp")

#: the pull-strategy × deployment-mode matrix, in spec order
STRATEGIES = ("eager", "lazy")
SIDES = ("secure", "normal")


@dataclass
class Fig10SupplyResult:
    """Per-cell supply-chain numbers plus reconciliation state."""

    #: (platform, strategy, side) key "platform/strategy/side" ->
    #: trial-meaned row the table renders
    rows: dict[str, dict[str, float]] = field(default_factory=dict)
    #: True iff every trial's counters matched its request logs
    reconciled: bool = True
    #: summed across every trial
    resumed: int = 0
    chunk_faults: int = 0
    bytes_pulled: int = 0
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def render(self) -> str:
        headers = ("cell", "cold boot ms", "warm boot ms", "speedup",
                   "chunks", "faults", "resumed")
        rows = []
        for cell, row in self.rows.items():
            cold = row["cold_boot_ns"]
            warm = row["warm_boot_ns"]
            rows.append((
                cell,
                f"{cold / 1e6:.1f}",
                f"{warm / 1e6:.1f}",
                f"{cold / warm:.2f}x" if warm else "-",
                int(row["chunks_fetched"]),
                int(row["chunk_faults"]),
                int(row["resumed"]),
            ))
        table = render_table(
            "Fig. 10 ext — confidential supply chain "
            "(eager/lazy x secure/normal)", headers, rows)
        reconciliation = (
            "counters reconcile with KBS/registry/PCS request logs"
            if self.reconciled
            else "RECONCILIATION FAILED: counters disagree with logs")
        return (f"{table}\n\n  session resumptions: {self.resumed}  "
                f"lazy chunk faults: {self.chunk_faults}\n"
                f"  {reconciliation}")


def run_fig10(seed: int = 0, trials: int = 1, vms: int = 3,
              accesses: int = 6, platforms: tuple = PLATFORMS,
              runner: TrialRunner | None = None,
              journal: TrialJournal | None = None) -> Fig10SupplyResult:
    """Run the supply-chain matrix, one spec per (platform, cell).

    The deployment mode rides in the workload name
    (``<strategy>-<side>``) because body memoization keys on workload,
    not on the spec's secure flag; the flag is still set to match so
    VM-side costs line up.  Counters fold into the runner's metrics
    registry in spec order, so serial and parallel runs produce
    byte-identical snapshots.
    """
    runner = default_runner(runner, journal)
    params = {"infra_seed": seed, "vms": vms, "accesses": accesses}
    # One matrix per (platform, cell): the deployment side must pin
    # the secure flag (eager-secure never runs with secure=False), a
    # coupling the full-matrix constructor cannot express.
    plan = TrialPlan(specs=tuple(
        spec
        for platform in platforms
        for strategy in STRATEGIES
        for side in SIDES
        for spec in TrialPlan.matrix(
            kind="supplychain", platforms=(platform,),
            workloads=(f"{strategy}-{side}",), trials=trials,
            seed=seed, secure_modes=(side == "secure",),
            params=params).specs
    ))

    per_cell: dict[str, list[dict]] = {}
    result = Fig10SupplyResult()
    for trial_result in runner.run(plan):
        output = trial_result.output
        cell = f"{trial_result.platform}/{trial_result.workload}"
        per_cell.setdefault(cell, []).append(output)
        if not output["reconciled"]:
            result.reconciled = False
        result.resumed += output["resumed"]
        result.chunk_faults += output["chunk_faults"]
        result.bytes_pulled += output["bytes_pulled"]
        prefix = f"supply.{cell}"
        runner.metrics.count_many((
            (f"{prefix}.chunks_fetched", output["chunks_fetched"]),
            (f"{prefix}.chunk_faults", output["chunk_faults"]),
            (f"{prefix}.resumed", output["resumed"]),
            (f"{prefix}.origin_fetches", output["origin_fetches"]),
        ))
        for name, value in output["counters"].items():
            runner.metrics.count(f"{prefix}.{name}", value)
        runner.metrics.observe(
            f"{prefix}.cold_boot_ns",
            mean(output["boot_ns"]["wave1"]))
    runner.metrics.count("supply.reconciled", int(result.reconciled))

    for platform in platforms:
        for strategy in STRATEGIES:
            for side in SIDES:
                cell = f"{platform}/{strategy}-{side}"
                outputs = per_cell.get(cell)
                if not outputs:
                    raise SupplyChainError(
                        f"no trial results for cell {cell!r}")
                result.rows[cell] = {
                    "cold_boot_ns": mean(
                        mean(o["boot_ns"]["wave1"]) for o in outputs),
                    "warm_boot_ns": mean(
                        mean(o["boot_ns"]["wave2"]) for o in outputs),
                    "chunks_fetched": sum(
                        o["chunks_fetched"] for o in outputs),
                    "chunk_faults": sum(
                        o["chunk_faults"] for o in outputs),
                    "resumed": sum(o["resumed"] for o in outputs),
                }

    _check_separation(result, platforms)
    result.metrics = runner.metrics.snapshot()
    return result


def _check_separation(result: Fig10SupplyResult,
                      platforms: tuple) -> None:
    """The headline claims must hold per platform, or the run fails.

    Lazy must boot colder-faster than eager in the same mode, and
    secure must cost more than normal under the same strategy — if a
    model change erases either separation, the figure is lying and
    the experiment says so instead of rendering it.
    """
    for platform in platforms:
        for side in SIDES:
            lazy = result.rows[f"{platform}/lazy-{side}"]
            eager = result.rows[f"{platform}/eager-{side}"]
            if not lazy["cold_boot_ns"] < eager["cold_boot_ns"]:
                raise SupplyChainError(
                    f"{platform}/{side}: lazy cold boot "
                    f"({lazy['cold_boot_ns']:.0f} ns) is not faster "
                    f"than eager ({eager['cold_boot_ns']:.0f} ns)")
        for strategy in STRATEGIES:
            secure = result.rows[f"{platform}/{strategy}-secure"]
            normal = result.rows[f"{platform}/{strategy}-normal"]
            if not secure["cold_boot_ns"] > normal["cold_boot_ns"]:
                raise SupplyChainError(
                    f"{platform}/{strategy}: secure cold boot "
                    f"({secure['cold_boot_ns']:.0f} ns) is not dearer "
                    f"than normal ({normal['cold_boot_ns']:.0f} ns)")
