"""Fig. 7 — CCA FaaS heatmap.

The same 25 x 7 grid as Fig. 6, but for realms inside the FVP
simulator: both the secure realm and the normal VM run under the
simulation layer, so the ratio isolates realm mechanisms.  Shape
target: ratios higher overall than TDX/SEV-SNP ("more lighter
blue/red-ish cells").
"""

from __future__ import annotations

from repro.core.journal import TrialJournal
from repro.core.runner import TrialRunner
from repro.experiments.common import PAPER_TRIALS
from repro.experiments.fig6_heatmap import HeatmapResult, run_heatmap
from repro.runtimes.registry import RUNTIME_NAMES
from repro.workloads.faas.registry import FIGURE_WORKLOAD_NAMES


def run_fig7(
    seed: int = 0,
    workloads: tuple[str, ...] = FIGURE_WORKLOAD_NAMES,
    languages: tuple[str, ...] = RUNTIME_NAMES,
    trials: int = PAPER_TRIALS,
    runner: TrialRunner | None = None,
    journal: TrialJournal | None = None,
) -> HeatmapResult:
    """Regenerate Fig. 7 (CCA only)."""
    return run_heatmap(("cca",), seed=seed, workloads=workloads,
                       languages=languages, trials=trials, runner=runner,
                       journal=journal)
