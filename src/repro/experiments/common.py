"""Shared experiment plumbing.

Builders for the secure/normal VM pairs the paper's testbed keeps on
each host ("in each host we created two VMs: a VM with TEE-backed
security guarantees and a 'normal' VM"), plus trial runners.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.launcher import FunctionLauncher
from repro.tee.base import VmConfig
from repro.tee.registry import platform_by_name
from repro.tee.vm import Vm
from repro.workloads.faas.registry import workload_by_name

#: The paper's trial count (§IV-D: "10 independent trials").
PAPER_TRIALS = 10

#: The TEEs the paper benches.
HW_TEES = ("tdx", "sev-snp")
ALL_TEES = ("tdx", "sev-snp", "cca")


@dataclass
class VmPair:
    """One platform's secure + normal VM pair."""

    platform: str
    secure_vm: Vm
    normal_vm: Vm

    def run_both(self, body, name: str, trials: int) -> tuple[list, list]:
        """Matched trials on both VMs; returns (secure, normal) results."""
        secure = [self.secure_vm.run(body, name=name, trial=t)
                  for t in range(trials)]
        normal = [self.normal_vm.run(body, name=name, trial=t)
                  for t in range(trials)]
        return secure, normal


def make_pair(platform_name: str, seed: int = 0) -> VmPair:
    """Build and boot the secure/normal pair for one platform."""
    platform = platform_by_name(platform_name, seed=seed)
    secure = platform.create_vm(VmConfig(secure=True))
    secure.boot()
    normal = platform.create_vm(VmConfig(secure=False))
    normal.boot()
    return VmPair(platform=platform_name, secure_vm=secure, normal_vm=normal)


def faas_ratio(pair: VmPair, workload_name: str, language: str,
               trials: int = PAPER_TRIALS) -> tuple[float, list[float], list[float]]:
    """Mean-time ratio for one (workload, language) cell.

    Returns ``(ratio, secure_times, normal_times)``.
    """
    workload = workload_by_name(workload_name)
    body = FunctionLauncher.for_language(language).launch(workload)
    secure, normal = pair.run_both(
        body, name=f"{workload_name}/{language}", trials=trials
    )
    secure_times = [run.elapsed_ns for run in secure]
    normal_times = [run.elapsed_ns for run in normal]
    ratio = statistics.fmean(secure_times) / statistics.fmean(normal_times)
    return ratio, secure_times, normal_times


def mean(values) -> float:
    """Arithmetic mean of an iterable."""
    return statistics.fmean(values)
