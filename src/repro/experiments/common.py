"""Shared experiment plumbing.

Builders for the secure/normal VM pairs the paper's testbed keeps on
each host ("in each host we created two VMs: a VM with TEE-backed
security guarantees and a 'normal' VM"), plus the aggregation helpers
the harnesses use on top of the unified trial pipeline
(:mod:`repro.core.runner`).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.journal import TrialJournal
from repro.core.launcher import FunctionLauncher
from repro.errors import GatewayError
from repro.core.runner import TrialPlan, TrialRunner
from repro.tee.base import VmConfig
from repro.tee.registry import platform_by_name
from repro.tee.vm import RunResult, Vm
from repro.workloads.faas.registry import workload_by_name

#: The paper's trial count (§IV-D: "10 independent trials").
PAPER_TRIALS = 10

#: The TEEs the paper benches.
HW_TEES = ("tdx", "sev-snp")
ALL_TEES = ("tdx", "sev-snp", "cca")


@dataclass
class VmPair:
    """One platform's secure + normal VM pair."""

    platform: str
    secure_vm: Vm
    normal_vm: Vm

    def run_both(self, body, name: str, trials: int) -> tuple[list, list]:
        """Matched trials on both VMs; returns (secure, normal) results.

        Trials are interleaved (secure, normal) per trial index — not
        all-secure-then-all-normal — so accumulated VM perf counters
        and any stateful platform randomness see the same ordering the
        paper's matched-trials methodology implies.
        """
        secure: list[RunResult] = []
        normal: list[RunResult] = []
        for trial in range(trials):
            secure.append(self.secure_vm.run(body, name=name, trial=trial))
            normal.append(self.normal_vm.run(body, name=name, trial=trial))
        return secure, normal


def make_pair(platform_name: str, seed: int = 0) -> VmPair:
    """Build and boot the secure/normal pair for one platform."""
    platform = platform_by_name(platform_name, seed=seed)
    secure = platform.create_vm(VmConfig(secure=True))
    secure.boot()
    normal = platform.create_vm(VmConfig(secure=False))
    normal.boot()
    return VmPair(platform=platform_name, secure_vm=secure, normal_vm=normal)


def faas_ratio(pair: VmPair, workload_name: str, language: str,
               trials: int = PAPER_TRIALS) -> tuple[float, list[float], list[float]]:
    """Mean-time ratio for one (workload, language) cell on a live pair.

    Returns ``(ratio, secure_times, normal_times)``.  The figure
    harnesses now go through :class:`~repro.core.runner.TrialRunner`
    instead; this remains the quick-look helper for interactive use.
    """
    workload = workload_by_name(workload_name)
    body = FunctionLauncher.for_language(language).launch(workload)
    secure, normal = pair.run_both(
        body, name=f"{workload_name}/{language}", trials=trials
    )
    secure_times = [run.elapsed_ns for run in secure]
    normal_times = [run.elapsed_ns for run in normal]
    ratio = statistics.fmean(secure_times) / statistics.fmean(normal_times)
    return ratio, secure_times, normal_times


def mean(values) -> float:
    """Arithmetic mean of an iterable."""
    return statistics.fmean(values)


# -- runner-pipeline helpers ------------------------------------------------

def default_runner(runner: TrialRunner | None,
                   journal: TrialJournal | None = None) -> TrialRunner:
    """The harnesses' runner default: serial, no cache.

    With a ``journal``, the (given or default) runner records every
    completed trial to it and replays journaled results instead of
    re-executing — the resume path every harness exposes, so an
    interrupted sweep picks up where it crashed.
    """
    runner = runner if runner is not None else TrialRunner()
    if journal is not None:
        runner.journal = journal
    return runner


def matched_cells(
    runner: TrialRunner,
    plan: TrialPlan,
) -> dict[tuple[str, str, str | None], dict[str, list[RunResult]]]:
    """Run a plan and pair up its secure/normal sides.

    Returns ``{(platform, workload, runtime): {"secure": [...],
    "normal": [...]}}`` with results in trial order — the shape every
    ratio-reporting harness aggregates from.
    """
    paired: dict[tuple, dict[str, list[RunResult]]] = {}
    for cell, results in runner.run_cells(plan).items():
        platform, workload, runtime, secure = cell
        entry = paired.setdefault((platform, workload, runtime),
                                  {"secure": [], "normal": []})
        entry["secure" if secure else "normal"].extend(results)
    return paired


def cell_ratio(sides: dict[str, list[RunResult]]) -> float:
    """Mean secure / mean normal elapsed time for one matched cell.

    Degraded trials carry no measurement (``elapsed_ns`` is 0), so
    they are excluded from both means; a cell with no surviving trial
    on either side cannot produce a ratio and raises a clean
    :class:`~repro.errors.GatewayError` instead of dividing by zero.
    """
    usable = {side: [r for r in results if not r.degraded]
              for side, results in sides.items()}
    empty = [side for side in ("secure", "normal") if not usable[side]]
    if empty:
        raise GatewayError(
            f"no completed trials on the {' or '.join(empty)} side of a "
            "cell (every attempt degraded — budget too tight or fault "
            "rates too high); cannot compute a secure/normal ratio")
    return (mean(r.elapsed_ns for r in usable["secure"])
            / mean(r.elapsed_ns for r in usable["normal"]))
