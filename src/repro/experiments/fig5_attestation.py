"""Fig. 5 — attestation report creation and validation latencies.

Absolute wall-clock times (log-scale worthy) for:

- TDX "attest": TDREPORT via TDCALL + DCAP quote generation;
- TDX "check": go-tdx-guest-style verification, fetching TCB info and
  CRLs from the (simulated) Intel PCS over the network;
- SEV-SNP "attest": AMD-SP firmware report request + VCEK signature;
- SEV-SNP "check": snpguest's three-step local verification.

Shape targets: both SNP phases faster than their TDX counterparts;
the TDX check dominated by PCS round-trips.  CCA is excluded — the
FVP simulator lacks the attestation hardware (§IV-B).

Each trial runs through the unified pipeline with the attest and
check phases recorded as trace spans, so attestation network time
(the Intel PCS fetches) shows up in the same per-span ledger format
as every other experiment's phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.experiments.common import default_runner, mean
from repro.experiments.report import render_log_bars
from repro.sim.ledger import CostCategory

#: platform -> the attestation trial flavor the body factory resolves.
_FLAVORS = {"tdx": "tdx-attestation", "sev-snp": "snp-attestation"}


@dataclass
class Fig5Result:
    """Mean attest/check latencies per platform."""

    #: e.g. {"tdx attest": ns, "tdx check": ns, ...}
    latencies_ns: dict[str, float] = field(default_factory=dict)
    #: share of the TDX check spent on network round-trips
    tdx_check_network_fraction: float = 0.0
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def render(self) -> str:
        bars = render_log_bars(
            "Fig. 5 — attestation: creation (attest) and validation "
            "(check) wall-clock time",
            self.latencies_ns,
        )
        return (
            f"{bars}\n\n  TDX check time spent in Intel PCS round-trips: "
            f"{self.tdx_check_network_fraction * 100:.1f}%"
        )


def run_fig5(seed: int = 0, trials: int = 5,
             runner: TrialRunner | None = None,
             journal: TrialJournal | None = None) -> Fig5Result:
    """Regenerate Fig. 5 (TDX and SEV-SNP only, as in the paper)."""
    runner = default_runner(runner, journal)
    # Each platform attests through its own flavor, so the plan is a
    # concatenation of single-cell matrices rather than a cross
    # product.  Attestation has no "normal VM" baseline: secure only.
    specs = []
    for platform, flavor in _FLAVORS.items():
        specs.extend(TrialPlan.matrix(
            kind="attestation", platforms=(platform,), workloads=(flavor,),
            trials=trials, seed=seed, secure_modes=(True,),
            params={"infra_seed": seed},
        ).specs)
    plan = TrialPlan(specs=tuple(specs))
    attest: dict[str, list[float]] = {p: [] for p in _FLAVORS}
    check: dict[str, list[float]] = {p: [] for p in _FLAVORS}
    tdx_check_network: list[float] = []
    for result in runner.run(plan):
        platform = result.platform
        attest_span = result.trace.find("attest")
        check_span = result.trace.find("check")
        attest[platform].append(attest_span.ledger_ns)
        check[platform].append(check_span.ledger_ns)
        if platform == "tdx":
            tdx_check_network.append(
                check_span.breakdown.get(CostCategory.NETWORK.value, 0.0))

    return Fig5Result(
        latencies_ns={
            "tdx attest": mean(attest["tdx"]),
            "tdx check": mean(check["tdx"]),
            "sev-snp attest": mean(attest["sev-snp"]),
            "sev-snp check": mean(check["sev-snp"]),
        },
        tdx_check_network_fraction=(
            mean(tdx_check_network) / mean(check["tdx"])),
        metrics=runner.metrics.snapshot(),
    )
