"""Fig. 5 — attestation report creation and validation latencies.

Absolute wall-clock times (log-scale worthy) for:

- TDX "attest": TDREPORT via TDCALL + DCAP quote generation;
- TDX "check": go-tdx-guest-style verification, fetching TCB info and
  CRLs from the (simulated) Intel PCS over the network;
- SEV-SNP "attest": AMD-SP firmware report request + VCEK signature;
- SEV-SNP "check": snpguest's three-step local verification.

Shape targets: both SNP phases faster than their TDX counterparts;
the TDX check dominated by PCS round-trips.  CCA is excluded — the
FVP simulator lacks the attestation hardware (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attest import (
    AmdKeyInfrastructure,
    IntelPcs,
    QuotingEnclave,
    SnpVerifier,
    TdxVerifier,
    generate_snp_report,
    generate_tdx_quote,
)
from repro.experiments.common import mean
from repro.experiments.report import render_log_bars
from repro.guestos.context import ExecContext
from repro.hw.machine import epyc_9124, xeon_gold_5515
from repro.sim.ledger import CostCategory
from repro.sim.rng import SimRng
from repro.tee.sevsnp import AmdSecureProcessor
from repro.tee.tdx import TdxModule


@dataclass
class Fig5Result:
    """Mean attest/check latencies per platform."""

    #: e.g. {"tdx attest": ns, "tdx check": ns, ...}
    latencies_ns: dict[str, float] = field(default_factory=dict)
    #: share of the TDX check spent on network round-trips
    tdx_check_network_fraction: float = 0.0

    def render(self) -> str:
        bars = render_log_bars(
            "Fig. 5 — attestation: creation (attest) and validation "
            "(check) wall-clock time",
            self.latencies_ns,
        )
        return (
            f"{bars}\n\n  TDX check time spent in Intel PCS round-trips: "
            f"{self.tdx_check_network_fraction * 100:.1f}%"
        )


def run_fig5(seed: int = 0, trials: int = 5) -> Fig5Result:
    """Regenerate Fig. 5 (TDX and SEV-SNP only, as in the paper)."""
    rng = SimRng(seed, "fig5")
    pcs = IntelPcs(rng)
    qe = QuotingEnclave(pcs, rng)
    module = TdxModule()
    keys = AmdKeyInfrastructure(rng)
    amd_sp = AmdSecureProcessor()

    tdx_attest, tdx_check, tdx_check_network = [], [], []
    snp_attest, snp_check = [], []

    for trial in range(trials):
        nonce = f"nonce-{trial}".encode()

        attest_ctx = ExecContext(machine=xeon_gold_5515(),
                                 rng=rng.child(f"tdx-attest/{trial}"))
        quote = generate_tdx_quote(module, qe, pcs, attest_ctx, nonce)
        tdx_attest.append(attest_ctx.ledger.total())

        check_ctx = ExecContext(machine=xeon_gold_5515(),
                                rng=rng.child(f"tdx-check/{trial}"))
        verdict = TdxVerifier(pcs).verify(quote, check_ctx,
                                          expected_report_data=nonce)
        assert verdict.accepted
        tdx_check.append(check_ctx.ledger.total())
        tdx_check_network.append(check_ctx.ledger.get(CostCategory.NETWORK))

        snp_ctx = ExecContext(machine=epyc_9124(),
                              rng=rng.child(f"snp-attest/{trial}"))
        report = generate_snp_report(amd_sp, keys, snp_ctx, nonce)
        snp_attest.append(snp_ctx.ledger.total())

        snp_check_ctx = ExecContext(machine=epyc_9124(),
                                    rng=rng.child(f"snp-check/{trial}"))
        verdict = SnpVerifier(keys).verify(report, snp_check_ctx,
                                           expected_report_data=nonce)
        assert verdict.accepted
        snp_check.append(snp_check_ctx.ledger.total())

    return Fig5Result(
        latencies_ns={
            "tdx attest": mean(tdx_attest),
            "tdx check": mean(tdx_check),
            "sev-snp attest": mean(snp_attest),
            "sev-snp check": mean(snp_check),
        },
        tdx_check_network_fraction=mean(tdx_check_network) / mean(tdx_check),
    )
