"""Text renderers for the figures, plus the structured-trace dump.

The paper's plots become terminal-friendly artifacts: shaded-cell
heatmaps (Figs. 6/7), stacked-percentile tables (Fig. 3), log-scale
bar charts (Fig. 5), ratio bars (Fig. 4) and box-and-whisker strips
(Fig. 8).  :func:`trace_payload` / :func:`dump_traces` additionally
expose every executed trial's span trace as JSON.
"""

from __future__ import annotations

import json
import math
from collections.abc import Mapping, Sequence
from dataclasses import asdict

#: Shading ramp for heatmap cells, light (good, ratio<=1) to dark.
_SHADES = " .:-=+*#%@"


def shade_for_ratio(ratio: float, low: float = 0.9, high: float = 2.0) -> str:
    """Map a ratio onto a shading character (darker = worse)."""
    if ratio != ratio:   # NaN
        return "?"
    clipped = min(max(ratio, low), high)
    position = (clipped - low) / (high - low)
    index = min(len(_SHADES) - 1, int(position * (len(_SHADES) - 1) + 0.5))
    return _SHADES[index]


def render_heatmap(
    title: str,
    rows: Sequence[str],
    cols: Sequence[str],
    values: Mapping[tuple[str, str], float],
    low: float = 0.9,
    high: float = 2.0,
) -> str:
    """A labelled heatmap: rows x cols of ratios with shading.

    Each cell shows the numeric ratio and a shade character; the paper
    uses darker-blue-is-better, here lighter-is-better.
    """
    col_width = max(6, *(len(c) for c in cols)) + 1
    row_label_width = max(len(r) for r in rows) + 1
    lines = [title, ""]
    header = " " * row_label_width + "".join(c.rjust(col_width) for c in cols)
    lines.append(header)
    for row in rows:
        cells = []
        for col in cols:
            ratio = values.get((row, col), float("nan"))
            mark = shade_for_ratio(ratio, low, high)
            cells.append(f"{ratio:5.2f}{mark}".rjust(col_width))
        lines.append(row.ljust(row_label_width) + "".join(cells))
    lines.append("")
    lines.append(f"(shade ramp '{_SHADES}': light = ratio<={low}, "
                 f"dark = ratio>={high})")
    return "\n".join(lines)


def render_percentile_stacks(
    title: str,
    stacks: Mapping[str, Mapping[str, float]],
    unit: str = "ms",
    scale: float = 1e6,
) -> str:
    """Fig. 3-style table: one row per series, min/p25/median/p95/max."""
    keys = ("min", "p25", "median", "p95", "max")
    label_width = max(len(name) for name in stacks) + 1
    lines = [title, ""]
    header = " " * label_width + "".join(k.rjust(10) for k in keys)
    lines.append(header + f"   ({unit})")
    for name, stack in stacks.items():
        row = name.ljust(label_width)
        row += "".join(f"{stack[k] / scale:10.3f}" for k in keys)
        lines.append(row)
    return "\n".join(lines)


def render_log_bars(
    title: str,
    values: Mapping[str, float],
    unit: str = "ms",
    scale: float = 1e6,
    width: int = 48,
) -> str:
    """Fig. 5-style horizontal bars on a log scale."""
    scaled = {name: value / scale for name, value in values.items()}
    positives = [v for v in scaled.values() if v > 0]
    if not positives:
        return f"{title}\n(no data)"
    low = math.log10(min(positives)) - 0.2
    high = math.log10(max(positives)) + 0.2
    span = max(high - low, 1e-9)
    label_width = max(len(name) for name in scaled) + 1
    lines = [title, ""]
    for name, value in scaled.items():
        length = 0
        if value > 0:
            length = int((math.log10(value) - low) / span * width)
        bar = "#" * max(1, length)
        lines.append(f"{name.ljust(label_width)}|{bar.ljust(width)}| "
                     f"{value:10.3f} {unit}")
    lines.append(f"{''.ljust(label_width)} (log scale)")
    return "\n".join(lines)


def render_ratio_bars(
    title: str,
    ratios: Mapping[str, float],
    width: int = 40,
    maximum: float | None = None,
) -> str:
    """Fig. 4-style bars: ratio 1.0 marked, bars extend to the ratio."""
    cap = maximum if maximum is not None else max(ratios.values()) * 1.1
    label_width = max(len(name) for name in ratios) + 1
    lines = [title, ""]
    for name, ratio in ratios.items():
        length = int(min(ratio, cap) / cap * width)
        baseline = int(1.0 / cap * width)
        bar = "".join(
            "|" if i == baseline else ("#" if i < length else " ")
            for i in range(width)
        )
        lines.append(f"{name.ljust(label_width)}[{bar}] {ratio:6.2f}x")
    lines.append(f"{''.ljust(label_width)} '|' marks ratio 1.0 (no overhead)")
    return "\n".join(lines)


def render_box_plots(
    title: str,
    summaries: Mapping[str, Mapping[str, float]],
    unit: str = "ms",
    scale: float = 1e6,
    width: int = 50,
) -> str:
    """Fig. 8-style box-and-whisker strips (linear scale per figure)."""
    all_highs = [s["whisker_high"] for s in summaries.values()]
    all_lows = [s["whisker_low"] for s in summaries.values()]
    low, high = min(all_lows), max(all_highs)
    span = max(high - low, 1e-9)

    def column(value: float) -> int:
        return int((value - low) / span * (width - 1))

    label_width = max(len(name) for name in summaries) + 1
    lines = [title, ""]
    for name, s in summaries.items():
        strip = [" "] * width
        lo, q1 = column(s["whisker_low"]), column(s["q1"])
        med, q3 = column(s["median"]), column(s["q3"])
        hi = column(s["whisker_high"])
        for i in range(lo, hi + 1):
            strip[i] = "-"
        for i in range(q1, q3 + 1):
            strip[i] = "="
        strip[lo] = strip[hi] = "|"
        strip[med] = "O"
        lines.append(
            f"{name.ljust(label_width)}[{''.join(strip)}] "
            f"med {s['median'] / scale:9.3f} {unit}"
        )
    lines.append(f"{''.ljust(label_width)} |-: whiskers, =: IQR, O: median")
    return "\n".join(lines)


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A plain aligned table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = [title, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


# -- structured traces ------------------------------------------------------

def trace_payload(history) -> list[dict]:
    """JSON-ready span traces for every executed trial.

    ``history`` is :attr:`repro.core.runner.TrialRunner.history` — a
    list of ``(plan, results)`` pairs.  Each trial becomes one record
    pairing its declarative spec with the result's span trace, so the
    per-phase timings (boot/launch/execute and any nested spans such
    as Fig. 5's attest/check) are machine-readable alongside the
    rendered figures.
    """
    records = []
    for plan, results in history:
        for spec, result in zip(plan.specs, results):
            records.append({
                "spec": asdict(spec),
                "spec_hash": spec.content_hash(),
                "elapsed_ns": result.elapsed_ns,
                "trace": result.trace.to_list(),
            })
    return records


def dump_traces(history, path: str) -> int:
    """Write :func:`trace_payload` to ``path`` as JSON.

    Returns the number of trial records written.
    """
    records = trace_payload(history)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")
    return len(records)
