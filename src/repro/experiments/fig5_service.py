"""Fig. 5 extension — attestation latency vs collateral cache tier.

The paper measures *one* launch's attest/check cost; this extension
asks what a fleet pays.  Each trial drives the verifier service
(:mod:`repro.attest.service`) through three launch waves across two
hosts sharing a cluster CDN tier, so every collateral path gets
exercised:

- ``origin``  — first launch ever: four WAN fetches from the PCS;
- ``host``    — same host relaunches: collateral one IPC hop away;
- ``cdn``     — a cold host behind a warm cluster cache: LAN hops;
- ``session`` — a returning tenant resumes its attestation session,
  skipping quote generation and verification entirely;
- ``local``   — SEV-SNP's full verification (no network to tier).

Shape targets: origin ≫ cdn > host ≫ session for TDX, and the
cache-tier counters must reconcile exactly with the PCS request log
(every clean log entry is an origin fetch, nothing more).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.experiments.common import default_runner, mean
from repro.experiments.report import render_log_bars

#: platform -> the service trial flavor the body factory resolves.
_FLAVORS = {"tdx": "tdx-attestation", "sev-snp": "snp-attestation"}


@dataclass
class Fig5ServiceResult:
    """Per-platform, per-tier verification latencies plus counters."""

    #: e.g. {"tdx origin": ns, "tdx host": ns, "tdx session": ns, ...}
    tier_latencies_ns: dict[str, float] = field(default_factory=dict)
    #: summed service/session/collateral counters across trials
    counters: dict[str, int] = field(default_factory=dict)
    #: True iff, in every trial, origin fetches == clean request_log
    #: entries (the obs counters and the PCS log tell the same story)
    reconciled: bool = True
    #: peak verification backlog observed across all trials
    queue_depth_peak: int = 0
    #: mean queue wait per platform
    queue_wait_ns: dict[str, float] = field(default_factory=dict)
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def render(self) -> str:
        bars = render_log_bars(
            "Fig. 5 ext — attestation verification time by collateral "
            "cache tier",
            self.tier_latencies_ns,
        )
        reconciliation = (
            "origin fetches reconcile with the PCS request log"
            if self.reconciled
            else "RECONCILIATION FAILED: counters disagree with request log"
        )
        return (
            f"{bars}\n\n  peak verification backlog: "
            f"{self.queue_depth_peak}\n  {reconciliation}"
        )


def run_fig5_service(seed: int = 0, trials: int = 3,
                     runner: TrialRunner | None = None,
                     journal: TrialJournal | None = None
                     ) -> Fig5ServiceResult:
    """Run the fleet-attestation scenario on TDX and SEV-SNP.

    Trial bodies return plain per-tier data (the verifier service lives
    below ``obs``, and worker processes cannot share a live registry);
    this harness folds the counters into the runner's metrics registry
    in spec order, so serial and parallel sweeps produce byte-identical
    snapshots.
    """
    runner = default_runner(runner, journal)
    specs = []
    for platform, flavor in _FLAVORS.items():
        specs.extend(TrialPlan.matrix(
            kind="attestation-service", platforms=(platform,),
            workloads=(flavor,), trials=trials, seed=seed,
            secure_modes=(True,), params={"infra_seed": seed},
        ).specs)
    plan = TrialPlan(specs=tuple(specs))

    tier_samples: dict[str, list[float]] = {}
    wait_samples: dict[str, list[float]] = {}
    counters: dict[str, int] = {}
    reconciled = True
    queue_depth_peak = 0
    for result in runner.run(plan):
        platform = result.platform
        output = result.output
        for tier, values in output["tiers"].items():
            tier_samples.setdefault(f"{platform} {tier}", []).extend(values)
            for value in values:
                runner.metrics.observe(
                    f"attest.service.{platform}.verify_ns.{tier}", value)
        wait_samples.setdefault(platform, []).extend(output["queue_wait_ns"])
        for name, value in output["counters"].items():
            key = f"{platform}.{name}"
            counters[key] = counters.get(key, 0) + value
            runner.metrics.count(f"attest.service.{key}", value)
        reconciled = reconciled and output["reconciled"]
        queue_depth_peak = max(queue_depth_peak, output["queue_depth_peak"])
    runner.metrics.set_gauge("attest.service.queue_depth_peak",
                             queue_depth_peak)
    runner.metrics.count("attest.service.reconciled", int(reconciled))

    return Fig5ServiceResult(
        tier_latencies_ns={
            label: mean(values)
            for label, values in sorted(tier_samples.items())
        },
        counters=dict(sorted(counters.items())),
        reconciled=reconciled,
        queue_depth_peak=queue_depth_peak,
        queue_wait_ns={
            platform: mean(values)
            for platform, values in sorted(wait_samples.items())
        },
        metrics=runner.metrics.snapshot(),
    )
