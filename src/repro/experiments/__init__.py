"""Experiment harnesses: one module per paper figure/table.

Each module exposes a ``run_*`` function that regenerates the
artifact's data (with parameters defaulting to the paper's setup) and
returns a result object with ``render()`` (the text figure) and
machine-readable accessors the benches assert shapes on.

==========================  ==========================================
module                       paper artifact
==========================  ==========================================
:mod:`fig3_ml`               Fig. 3 — confidential ML percentile stacks
:mod:`dbms_table`            §IV-C DBMS findings (per-test ratios)
:mod:`fig4_unixbench`        Fig. 4 — UnixBench ratios
:mod:`fig5_attestation`      Fig. 5 — attestation attest/check latency
:mod:`fig5_service`          Fig. 5 ext — verifier service cache tiers
:mod:`fig6_heatmap`          Fig. 6 — TDX+SEV FaaS heatmaps
:mod:`fig7_cca_heatmap`      Fig. 7 — CCA FaaS heatmap
:mod:`fig8_cca_box`          Fig. 8 — CCA box-and-whiskers
:mod:`fig9_cluster`          Fig. 9 ext — cluster resilience sweep
:mod:`fig10_supplychain`     Fig. 10 ext — confidential supply chain
==========================  ==========================================
"""

from repro.experiments.fig3_ml import Fig3Result, run_fig3
from repro.experiments.dbms_table import DbmsTableResult, run_dbms_table
from repro.experiments.fig4_unixbench import Fig4Result, run_fig4
from repro.experiments.fig5_attestation import Fig5Result, run_fig5
from repro.experiments.fig5_service import Fig5ServiceResult, run_fig5_service
from repro.experiments.fig6_heatmap import HeatmapResult, run_fig6
from repro.experiments.fig7_cca_heatmap import run_fig7
from repro.experiments.fig8_cca_box import Fig8Result, run_fig8
from repro.experiments.fig9_cluster import Fig9ClusterResult, run_fig9
from repro.experiments.fig10_supplychain import (
    Fig10SupplyResult,
    run_fig10,
)

__all__ = [
    "Fig3Result", "run_fig3",
    "DbmsTableResult", "run_dbms_table",
    "Fig4Result", "run_fig4",
    "Fig5Result", "run_fig5",
    "Fig5ServiceResult", "run_fig5_service",
    "HeatmapResult", "run_fig6", "run_fig7",
    "Fig8Result", "run_fig8",
    "Fig9ClusterResult", "run_fig9",
    "Fig10SupplyResult", "run_fig10",
]
