"""Fig. 3 — Confidential ML workloads.

"Distribution (as stacked percentiles) of the observed inference
times" for MobileNet classifying 40 one-megabyte images, secure vs.
normal, on TDX / SEV-SNP / CCA.  Shape targets: TDX and SEV-SNP very
similar with a limited TDX advantage and close-to-native speed; CCA
up to ~1.33x slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import percentile_stack
from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.experiments.common import ALL_TEES, default_runner, matched_cells, mean
from repro.experiments.report import render_percentile_stacks

#: The paper's dataset: 40 diversified 1 MB images.
PAPER_IMAGE_COUNT = 40


@dataclass
class Fig3Result:
    """Per-platform secure/normal inference-time distributions."""

    image_count: int
    #: platform -> {"secure": [ns...], "normal": [ns...]}
    times: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def stack(self, platform: str, kind: str) -> dict[str, float]:
        """min/p25/median/p95/max for one series."""
        return percentile_stack(self.times[platform][kind])

    def mean_ratio(self, platform: str) -> float:
        """Mean secure / mean normal inference time."""
        series = self.times[platform]
        return mean(series["secure"]) / mean(series["normal"])

    def render(self) -> str:
        stacks = {}
        for platform in self.times:
            stacks[f"{platform} secure"] = self.stack(platform, "secure")
            stacks[f"{platform} normal"] = self.stack(platform, "normal")
        body = render_percentile_stacks(
            "Fig. 3 — Confidential ML: distribution of inference times "
            f"({self.image_count} x ~1 MB images)",
            stacks,
        )
        ratios = "\n".join(
            f"  {platform}: mean secure/normal ratio = "
            f"{self.mean_ratio(platform):.3f}"
            for platform in self.times
        )
        return f"{body}\n\n{ratios}"


def run_fig3(
    seed: int = 0,
    image_count: int = PAPER_IMAGE_COUNT,
    image_side: int = 296,
    platforms: tuple[str, ...] = ALL_TEES,
    trials: int = 1,
    runner: TrialRunner | None = None,
    journal: TrialJournal | None = None,
) -> Fig3Result:
    """Regenerate Fig. 3.

    ``image_side`` defaults to a reduced resolution so the real numpy
    forward passes stay fast; the *count* and the cost accounting are
    faithful.  ``trials`` repeats the whole dataset pass.
    """
    runner = default_runner(runner, journal)
    plan = TrialPlan.matrix(
        kind="ml",
        platforms=platforms,
        workloads=("ml",),
        trials=trials,
        seed=seed,
        params={"model_seed": seed, "dataset_seed": seed,
                "count": image_count, "side": image_side},
    )
    result = Fig3Result(image_count=image_count)
    for (platform, _, _), sides in matched_cells(runner, plan).items():
        result.times[platform] = {
            "secure": [ns for run in sides["secure"] for ns in run.output],
            "normal": [ns for run in sides["normal"] for ns in run.output],
        }
    result.metrics = runner.metrics.snapshot()
    return result
