"""Fig. 3 — Confidential ML workloads.

"Distribution (as stacked percentiles) of the observed inference
times" for MobileNet classifying 40 one-megabyte images, secure vs.
normal, on TDX / SEV-SNP / CCA.  Shape targets: TDX and SEV-SNP very
similar with a limited TDX advantage and close-to-native speed; CCA
up to ~1.33x slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import percentile_stack
from repro.experiments.common import ALL_TEES, make_pair, mean
from repro.experiments.report import render_percentile_stacks
from repro.workloads.ml import (
    MobileNetLite,
    generate_dataset,
    run_inference_workload,
)

#: The paper's dataset: 40 diversified 1 MB images.
PAPER_IMAGE_COUNT = 40


@dataclass
class Fig3Result:
    """Per-platform secure/normal inference-time distributions."""

    image_count: int
    #: platform -> {"secure": [ns...], "normal": [ns...]}
    times: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def stack(self, platform: str, kind: str) -> dict[str, float]:
        """min/p25/median/p95/max for one series."""
        return percentile_stack(self.times[platform][kind])

    def mean_ratio(self, platform: str) -> float:
        """Mean secure / mean normal inference time."""
        series = self.times[platform]
        return mean(series["secure"]) / mean(series["normal"])

    def render(self) -> str:
        stacks = {}
        for platform in self.times:
            stacks[f"{platform} secure"] = self.stack(platform, "secure")
            stacks[f"{platform} normal"] = self.stack(platform, "normal")
        body = render_percentile_stacks(
            "Fig. 3 — Confidential ML: distribution of inference times "
            f"({self.image_count} x ~1 MB images)",
            stacks,
        )
        ratios = "\n".join(
            f"  {platform}: mean secure/normal ratio = "
            f"{self.mean_ratio(platform):.3f}"
            for platform in self.times
        )
        return f"{body}\n\n{ratios}"


def run_fig3(
    seed: int = 0,
    image_count: int = PAPER_IMAGE_COUNT,
    image_side: int = 296,
    platforms: tuple[str, ...] = ALL_TEES,
    trials: int = 1,
) -> Fig3Result:
    """Regenerate Fig. 3.

    ``image_side`` defaults to a reduced resolution so the real numpy
    forward passes stay fast; the *count* and the cost accounting are
    faithful.  ``trials`` repeats the whole dataset pass.
    """
    model = MobileNetLite(seed=seed)
    dataset = generate_dataset(count=image_count, side=image_side, seed=seed)
    result = Fig3Result(image_count=image_count)

    def body(kernel):
        return [
            r.elapsed_ns
            for r in run_inference_workload(kernel, model, dataset)
        ]

    for platform in platforms:
        pair = make_pair(platform, seed=seed)
        secure_times: list[float] = []
        normal_times: list[float] = []
        for trial in range(trials):
            secure_times.extend(
                pair.secure_vm.run(body, name="ml", trial=trial).output
            )
            normal_times.extend(
                pair.normal_vm.run(body, name="ml", trial=trial).output
            )
        result.times[platform] = {
            "secure": secure_times,
            "normal": normal_times,
        }
    return result
