"""Fig. 4 — UnixBench benchmarks.

Single-threaded UnixBench in secure and normal VMs, "normalized as
ratios" of the index scores.  Shape targets: TDX introduces the least
overhead, SEV-SNP analogous figures, CCA the most; all larger than
the ML/DBMS overheads (frequent TDVMCALL/VMEXIT from sleep/wake-ups).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.experiments.common import ALL_TEES, default_runner, matched_cells, mean
from repro.experiments.report import render_ratio_bars, render_table


@dataclass
class Fig4Result:
    """Index ratios per platform, plus per-test detail."""

    #: platform -> normal_index / secure_index (>1 = secure slower)
    index_ratios: dict[str, float] = field(default_factory=dict)
    #: platform -> {test key -> time ratio secure/normal}
    test_ratios: dict[str, dict[str, float]] = field(default_factory=dict)
    #: platform -> mean vm transitions per secure run
    transitions: dict[str, float] = field(default_factory=dict)
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def render(self) -> str:
        bars = render_ratio_bars(
            "Fig. 4 — UnixBench: normal/secure aggregate index ratios",
            self.index_ratios,
        )
        platforms = list(self.test_ratios)
        test_keys = sorted(next(iter(self.test_ratios.values())))
        rows = [
            [key, *(f"{self.test_ratios[p][key]:.2f}" for p in platforms)]
            for key in test_keys
        ]
        detail = render_table(
            "Per-test secure/normal time ratios",
            ["test", *platforms],
            rows,
        )
        return f"{bars}\n\n{detail}"


def run_fig4(
    seed: int = 0,
    platforms: tuple[str, ...] = ALL_TEES,
    trials: int = 5,
    scale: float = 0.3,
    runner: TrialRunner | None = None,
    journal: TrialJournal | None = None,
) -> Fig4Result:
    """Regenerate Fig. 4."""
    runner = default_runner(runner, journal)
    plan = TrialPlan.matrix(
        kind="unixbench",
        platforms=platforms,
        workloads=("unixbench",),
        trials=trials,
        seed=seed,
        params={"scale": scale},
    )
    result = Fig4Result()
    for (platform, _, _), sides in matched_cells(runner, plan).items():
        secure_runs, normal_runs = sides["secure"], sides["normal"]
        secure_index = mean(r.output["index"] for r in secure_runs)
        normal_index = mean(r.output["index"] for r in normal_runs)
        result.index_ratios[platform] = normal_index / secure_index
        test_keys = secure_runs[0].output["tests"].keys()
        result.test_ratios[platform] = {
            key: (mean(r.output["tests"][key] for r in secure_runs)
                  / mean(r.output["tests"][key] for r in normal_runs))
            for key in test_keys
        }
        result.transitions[platform] = mean(
            r.counters.vm_transitions for r in secure_runs
        )
    result.metrics = runner.metrics.snapshot()
    return result
