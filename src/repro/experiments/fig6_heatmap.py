"""Fig. 6 — TDX and SEV-SNP FaaS heatmaps.

"Ratios between mean execution times from secure and normal VMs for
functions in different languages", 25 workloads x 7 languages, 10
independent trials, darker = better.  Shape targets: TDX faster with
CPU/memory-intensive workloads, SEV-SNP faster with I/O; heavier
managed runtimes (Python, Node, Ruby) run hotter than Lua / LuaJIT /
Go / Wasm; a few cells dip below 1 (cache-hit effects).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.experiments.common import (
    HW_TEES,
    PAPER_TRIALS,
    cell_ratio,
    default_runner,
    matched_cells,
    mean,
)
from repro.experiments.report import render_heatmap
from repro.runtimes.registry import RUNTIME_NAMES
from repro.workloads.base import WorkloadTrait
from repro.workloads.faas.registry import FIGURE_WORKLOAD_NAMES, workload_by_name

#: Heatmap row/column orders as in the figure.
HEAVY_LANGS = ("python", "node", "ruby")
LIGHT_LANGS = ("lua", "luajit", "go", "wasm")


@dataclass
class HeatmapResult:
    """FaaS ratio grids, one per platform."""

    workloads: tuple[str, ...]
    languages: tuple[str, ...]
    #: platform -> {(language, workload) -> ratio}
    grids: dict[str, dict[tuple[str, str], float]] = field(default_factory=dict)
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def ratio(self, platform: str, language: str, workload: str) -> float:
        return self.grids[platform][(language, workload)]

    def language_mean(self, platform: str, language: str) -> float:
        """Mean ratio across all workloads for one language row."""
        grid = self.grids[platform]
        return mean(grid[(language, w)] for w in self.workloads)

    def trait_mean(self, platform: str, trait: WorkloadTrait) -> float:
        """Mean ratio across workloads with the given trait."""
        grid = self.grids[platform]
        names = [w for w in self.workloads
                 if workload_by_name(w).trait is trait]
        return mean(
            grid[(lang, w)] for lang in self.languages for w in names
        )

    def cells_below_one(self, platform: str) -> int:
        """How many cells show secure faster than normal."""
        return sum(1 for ratio in self.grids[platform].values() if ratio < 1.0)

    def render(self) -> str:
        sections = []
        for platform, grid in self.grids.items():
            sections.append(render_heatmap(
                f"Fig. 6 — {platform}: secure/normal mean-time ratios "
                f"(darker = more overhead)",
                rows=list(self.languages),
                cols=list(self.workloads),
                values=grid,
            ))
        return "\n\n".join(sections)


def run_heatmap(
    platforms: tuple[str, ...],
    seed: int = 0,
    workloads: tuple[str, ...] = FIGURE_WORKLOAD_NAMES,
    languages: tuple[str, ...] = RUNTIME_NAMES,
    trials: int = PAPER_TRIALS,
    runner: TrialRunner | None = None,
    journal: TrialJournal | None = None,
) -> HeatmapResult:
    """Build the ratio grid for the given platforms."""
    runner = default_runner(runner, journal)
    plan = TrialPlan.matrix(
        kind="faas",
        platforms=platforms,
        workloads=workloads,
        runtimes=languages,
        trials=trials,
        seed=seed,
    )
    cells = matched_cells(runner, plan)
    result = HeatmapResult(workloads=tuple(workloads),
                           languages=tuple(languages))
    for platform in platforms:
        result.grids[platform] = {
            (language, workload):
                cell_ratio(cells[(platform, workload, language)])
            for language in languages
            for workload in workloads
        }
    result.metrics = runner.metrics.snapshot()
    return result


def run_fig6(
    seed: int = 0,
    workloads: tuple[str, ...] = FIGURE_WORKLOAD_NAMES,
    languages: tuple[str, ...] = RUNTIME_NAMES,
    trials: int = PAPER_TRIALS,
    runner: TrialRunner | None = None,
    journal: TrialJournal | None = None,
) -> HeatmapResult:
    """Regenerate Fig. 6 (the two hardware TEEs)."""
    return run_heatmap(HW_TEES, seed=seed, workloads=workloads,
                       languages=languages, trials=trials, runner=runner,
                       journal=journal)
