"""§IV-C Confidential DBMS — the speedtest findings table.

The paper describes (without a figure, "we omit detailed plots for
space") running the SQLite speedtest suite at the default relative
size 100 and comparing per-test execution times.  Findings to
reproduce: TDX and SEV-SNP ratios "very similar and close to 1";
CCA's overhead "the largest ones, on average up to 10x".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.experiments.common import ALL_TEES, default_runner, matched_cells, mean
from repro.experiments.report import render_table
from repro.workloads.dbms.speedtest import DEFAULT_SIZE


@dataclass
class DbmsTableResult:
    """Per-platform, per-test secure/normal ratios."""

    size: int
    test_names: dict[int, str] = field(default_factory=dict)
    #: platform -> {test_id -> ratio}
    ratios: dict[str, dict[int, float]] = field(default_factory=dict)
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def average_ratio(self, platform: str) -> float:
        return mean(self.ratios[platform].values())

    def max_ratio(self, platform: str) -> float:
        return max(self.ratios[platform].values())

    def render(self) -> str:
        platforms = list(self.ratios)
        rows = []
        for test_id in sorted(self.test_names):
            rows.append([
                test_id,
                self.test_names[test_id],
                *(f"{self.ratios[p][test_id]:.2f}" for p in platforms),
            ])
        rows.append([
            "", "AVERAGE",
            *(f"{self.average_ratio(p):.2f}" for p in platforms),
        ])
        return render_table(
            f"Confidential DBMS: speedtest secure/normal time ratios "
            f"(relative size {self.size})",
            ["test", "description", *platforms],
            rows,
        )


def run_dbms_table(
    seed: int = 0,
    size: int = DEFAULT_SIZE,
    platforms: tuple[str, ...] = ALL_TEES,
    trials: int = 3,
    runner: TrialRunner | None = None,
    journal: TrialJournal | None = None,
) -> DbmsTableResult:
    """Regenerate the DBMS findings.

    ``size`` is speedtest1's relative test size (paper default 100).
    """
    runner = default_runner(runner, journal)
    plan = TrialPlan.matrix(
        kind="speedtest",
        platforms=platforms,
        workloads=("speedtest",),
        trials=trials,
        seed=seed,
        params={"size": size},
    )
    result = DbmsTableResult(size=size)
    for (platform, _, _), sides in matched_cells(runner, plan).items():
        secure_acc: dict[int, list[float]] = {}
        normal_acc: dict[int, list[float]] = {}
        for run in sides["secure"]:
            for test_id, name, elapsed in run.output:
                result.test_names[test_id] = name
                secure_acc.setdefault(test_id, []).append(elapsed)
        for run in sides["normal"]:
            for test_id, _, elapsed in run.output:
                normal_acc.setdefault(test_id, []).append(elapsed)
        result.ratios[platform] = {
            test_id: mean(secure_acc[test_id]) / mean(normal_acc[test_id])
            for test_id in secure_acc
        }
    result.metrics = runner.metrics.snapshot()
    return result
