"""Fig. 8 — CCA execution-time distributions.

Box-and-whisker plots of secure *and* normal execution times per
function from the 10 independent runs.  Shape target: "with
confidential VMs, the length of the whiskers tends to be larger" —
more run-to-run variability inside realms (present but smaller on
TDX/SEV-SNP, whose plot the paper omits for space).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import five_number_summary
from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.experiments.common import (
    PAPER_TRIALS,
    default_runner,
    matched_cells,
    mean,
)
from repro.experiments.report import render_box_plots
from repro.workloads.faas.registry import FIGURE_WORKLOAD_NAMES

#: The figure shows one language's panel per function; python is the
#: densest panel in the paper's plot.
DEFAULT_LANGUAGE = "python"


@dataclass
class Fig8Result:
    """Per-function time samples for secure and normal CCA VMs."""

    language: str
    #: workload -> {"secure": [ns...], "normal": [ns...]}
    samples: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def summary(self, workload: str, kind: str) -> dict[str, float]:
        return five_number_summary(self.samples[workload][kind])

    def whisker_span(self, workload: str, kind: str) -> float:
        """Whisker length relative to the median (dimensionless)."""
        s = self.summary(workload, kind)
        return (s["whisker_high"] - s["whisker_low"]) / s["median"]

    def mean_whisker_span(self, kind: str) -> float:
        """Mean relative whisker span across functions."""
        return mean(self.whisker_span(w, kind) for w in self.samples)

    def render(self) -> str:
        sections = []
        for workload, series in self.samples.items():
            sections.append(render_box_plots(
                f"Fig. 8 — CCA {workload} ({self.language}): "
                "execution-time distribution",
                {
                    "secure": five_number_summary(series["secure"]),
                    "normal": five_number_summary(series["normal"]),
                },
            ))
        spans = (
            f"mean relative whisker span: secure "
            f"{self.mean_whisker_span('secure'):.2f} vs normal "
            f"{self.mean_whisker_span('normal'):.2f}"
        )
        return "\n\n".join(sections) + f"\n\n{spans}"


def run_fig8(
    seed: int = 0,
    workloads: tuple[str, ...] = FIGURE_WORKLOAD_NAMES,
    language: str = DEFAULT_LANGUAGE,
    trials: int = PAPER_TRIALS,
    runner: TrialRunner | None = None,
    journal: TrialJournal | None = None,
) -> Fig8Result:
    """Regenerate Fig. 8 (CCA distributions)."""
    runner = default_runner(runner, journal)
    plan = TrialPlan.matrix(
        kind="faas",
        platforms=("cca",),
        workloads=workloads,
        runtimes=(language,),
        trials=trials,
        seed=seed,
    )
    result = Fig8Result(language=language)
    for (_, workload, _), sides in matched_cells(runner, plan).items():
        result.samples[workload] = {
            "secure": [r.elapsed_ns for r in sides["secure"]],
            "normal": [r.elapsed_ns for r in sides["normal"]],
        }
    result.metrics = runner.metrics.snapshot()
    return result
