"""Whole-evaluation summary: every artifact in one report.

The artifact-evaluation entry point: regenerates each paper artifact
(optionally at reduced scale) and emits one combined report plus a
machine-readable shape check — the quick way to confirm the
reproduction's findings hold on a new machine or seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialRunner
from repro.experiments.common import default_runner
from repro.experiments.dbms_table import run_dbms_table
from repro.experiments.fig3_ml import run_fig3
from repro.experiments.fig4_unixbench import run_fig4
from repro.experiments.fig5_attestation import run_fig5
from repro.experiments.fig6_heatmap import run_fig6
from repro.experiments.fig7_cca_heatmap import run_fig7
from repro.experiments.fig8_cca_box import run_fig8
from repro.experiments.report import render_table


@dataclass
class ShapeCheck:
    """One paper finding and whether the regenerated data shows it."""

    artifact: str
    finding: str
    holds: bool
    detail: str


@dataclass
class EvaluationSummary:
    """All artifacts plus their shape checks."""

    renders: dict[str, str] = field(default_factory=dict)
    checks: list[ShapeCheck] = field(default_factory=list)
    #: the shared runner's metrics snapshot across every artifact
    metrics: dict = field(default_factory=dict)

    @property
    def all_hold(self) -> bool:
        return all(check.holds for check in self.checks)

    def render(self, include_artifacts: bool = False) -> str:
        rows = [
            [check.artifact, check.finding,
             "yes" if check.holds else "NO", check.detail]
            for check in self.checks
        ]
        table = render_table(
            "ConfBench reproduction — paper findings vs regenerated data",
            ["artifact", "finding", "holds", "measured"],
            rows,
        )
        if not include_artifacts:
            return table
        sections = [table]
        for name, text in self.renders.items():
            sections.append(f"\n{'=' * 72}\n{text}")
        return "\n".join(sections)


def run_evaluation(seed: int = 1, quick: bool = True,
                   runner: TrialRunner | None = None,
                   journal: TrialJournal | None = None) -> EvaluationSummary:
    """Regenerate every artifact and check the paper's findings.

    ``quick`` shrinks grids/trials for an interactive run; the full
    configuration matches the benches.  ``runner`` is shared by every
    artifact, so a parallel or caching runner accelerates all of them.
    """
    runner = default_runner(runner, journal)
    summary = EvaluationSummary()

    fig3 = run_fig3(seed=seed, image_count=12 if quick else 40,
                    image_side=128 if quick else 296,
                    trials=2 if quick else 3, runner=runner)
    summary.renders["fig3"] = fig3.render()
    cca_ml = fig3.mean_ratio("cca")
    summary.checks.append(ShapeCheck(
        "Fig. 3", "TDX/SEV near-native, CCA worst (<= ~1.5x)",
        holds=(fig3.mean_ratio("tdx") < 1.15
               and fig3.mean_ratio("sev-snp") < 1.15
               and 1.1 < cca_ml < 1.6),
        detail=(f"tdx {fig3.mean_ratio('tdx'):.2f} "
                f"sev {fig3.mean_ratio('sev-snp'):.2f} cca {cca_ml:.2f}"),
    ))

    dbms = run_dbms_table(seed=seed, size=20 if quick else 100,
                          trials=2 if quick else 3, runner=runner)
    summary.renders["dbms"] = dbms.render()
    summary.checks.append(ShapeCheck(
        "DBMS", "TDX/SEV ~= 1; CCA largest (avg up to ~10x)",
        holds=(dbms.average_ratio("tdx") < 1.25
               and dbms.average_ratio("sev-snp") < 1.25
               and dbms.average_ratio("cca") > 3.0),
        detail=(f"avg tdx {dbms.average_ratio('tdx'):.2f} "
                f"sev {dbms.average_ratio('sev-snp'):.2f} "
                f"cca {dbms.average_ratio('cca'):.2f}"),
    ))

    fig4 = run_fig4(seed=seed, trials=4 if quick else 6,
                    scale=0.25 if quick else 0.3, runner=runner)
    summary.renders["fig4"] = fig4.render()
    # TDX least, "SEV-SNP leads to analogous figures" — allow the
    # near-tie the paper itself describes; CCA must be far worse.
    tdx_r, sev_r = fig4.index_ratios["tdx"], fig4.index_ratios["sev-snp"]
    cca_r = fig4.index_ratios["cca"]
    ordered = (tdx_r < sev_r + 0.03
               and cca_r > 2.0 * max(tdx_r, sev_r)
               and tdx_r > 1.1)
    summary.checks.append(ShapeCheck(
        "Fig. 4", "UnixBench: TDX <= SEV (analogous) << CCA",
        holds=ordered,
        detail=" ".join(f"{name} {ratio:.2f}"
                        for name, ratio in fig4.index_ratios.items()),
    ))

    fig5 = run_fig5(seed=seed, trials=3 if quick else 10, runner=runner)
    summary.renders["fig5"] = fig5.render()
    lat = fig5.latencies_ns
    summary.checks.append(ShapeCheck(
        "Fig. 5", "SNP attest+check both >=10x faster than TDX",
        holds=(lat["sev-snp attest"] * 10 < lat["tdx attest"]
               and lat["sev-snp check"] * 10 < lat["tdx check"]),
        detail=(f"tdx {lat['tdx attest'] / 1e6:.0f}/{lat['tdx check'] / 1e6:.0f} ms, "
                f"snp {lat['sev-snp attest'] / 1e6:.1f}/"
                f"{lat['sev-snp check'] / 1e6:.1f} ms"),
    ))

    small_workloads = ("cpustress", "factors", "memstress", "iostress",
                       "logging", "filesystem")
    small_langs = ("python", "ruby", "lua", "go")
    fig6 = run_fig6(seed=seed,
                    workloads=small_workloads if quick else
                    __import__("repro.workloads.faas.registry",
                               fromlist=["FIGURE_WORKLOAD_NAMES"]
                               ).FIGURE_WORKLOAD_NAMES,
                    languages=small_langs if quick else
                    __import__("repro.runtimes.registry",
                               fromlist=["RUNTIME_NAMES"]).RUNTIME_NAMES,
                    trials=4 if quick else 10, runner=runner)
    summary.renders["fig6"] = fig6.render()
    io_cross = (fig6.ratio("sev-snp", "lua", "iostress")
                < fig6.ratio("tdx", "lua", "iostress"))
    cpu_cross = (fig6.ratio("tdx", "lua", "cpustress")
                 < fig6.ratio("sev-snp", "lua", "cpustress"))
    summary.checks.append(ShapeCheck(
        "Fig. 6", "TDX wins cpu, SEV wins io",
        holds=io_cross and cpu_cross,
        detail=(f"cpu tdx {fig6.ratio('tdx', 'lua', 'cpustress'):.2f} vs "
                f"sev {fig6.ratio('sev-snp', 'lua', 'cpustress'):.2f}; "
                f"io tdx {fig6.ratio('tdx', 'lua', 'iostress'):.2f} vs "
                f"sev {fig6.ratio('sev-snp', 'lua', 'iostress'):.2f}"),
    ))

    fig7 = run_fig7(seed=seed, workloads=small_workloads,
                    languages=small_langs, trials=4 if quick else 10,
                    runner=runner)
    summary.renders["fig7"] = fig7.render()
    import statistics

    cca_mean = statistics.fmean(fig7.grids["cca"].values())
    hw_mean = statistics.fmean(fig6.grids["tdx"].values())
    summary.checks.append(ShapeCheck(
        "Fig. 7", "CCA ratios much higher than hardware TEEs",
        holds=cca_mean > 1.5 * hw_mean,
        detail=f"cca mean {cca_mean:.2f} vs tdx mean {hw_mean:.2f}",
    ))

    fig8 = run_fig8(seed=seed, workloads=small_workloads,
                    trials=8 if quick else 10, runner=runner)
    summary.renders["fig8"] = fig8.render()
    summary.checks.append(ShapeCheck(
        "Fig. 8", "secure whiskers longer than normal",
        holds=(fig8.mean_whisker_span("secure")
               > fig8.mean_whisker_span("normal")),
        detail=(f"secure {fig8.mean_whisker_span('secure'):.2f} vs "
                f"normal {fig8.mean_whisker_span('normal'):.2f}"),
    ))

    summary.metrics = runner.metrics.snapshot()
    return summary
