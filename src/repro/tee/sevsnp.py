"""AMD SEV-SNP platform simulator.

Models the SNP mechanisms §II describes:

- The **Reverse Map Table (RMP)**: one entry per physical page
  recording its owner; assignment and validation are explicit steps
  and every nested-page-table walk checks it.
- **VM Privilege Levels (VMPLs)**: four per-guest privilege levels,
  ordered; VMPL0 is the most privileged (e.g. an SVSM would live
  there).
- **Shared (unencrypted) pages** a guest can expose for I/O.
- The **AMD Secure Processor (AMD-SP)**: the dedicated coprocessor
  that signs attestation reports with the chip's VCEK.  Report
  requests go firmware-mailbox style, with no external network — the
  reason SNP attestation is fast in the paper's Fig. 5.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro.errors import TeeError
from repro.guestos.context import CostProfile
from repro.hw.machine import Machine, epyc_9124
from repro.tee.base import PlatformInfo, TeePlatform, TransitionStats


class Vmpl(enum.IntEnum):
    """VM Privilege Levels — lower number, higher privilege."""

    VMPL0 = 0
    VMPL1 = 1
    VMPL2 = 2
    VMPL3 = 3


class PageState(enum.Enum):
    """RMP ownership states of a guest physical page."""

    HYPERVISOR = "hypervisor"   # untrusted, default
    GUEST_INVALID = "guest_invalid"   # assigned, not yet validated
    GUEST_VALID = "guest_valid"       # assigned + validated (private)
    SHARED = "shared"                 # guest opted into sharing


@dataclass
class RmpEntry:
    """One Reverse Map Table record."""

    owner_asid: int
    state: PageState
    vmpl: Vmpl = Vmpl.VMPL0


class ReverseMapTable:
    """The RMP: page-granular ownership and validation tracking.

    Enforces the SNP state machine: a page must be *assigned* by the
    hypervisor and then *validated* by the guest (PVALIDATE) before
    private use; double validation and use-before-validation are
    errors, mirroring the real integrity guarantees.
    """

    CHECK_COST_NS = 18.0          # per-access RMP walk overhead
    ASSIGN_COST_NS = 950.0        # RMPUPDATE
    PVALIDATE_COST_NS = 1_100.0   # guest-side PVALIDATE

    def __init__(self) -> None:
        self._entries: dict[int, RmpEntry] = {}
        self.checks = 0

    def assign(self, gpa_page: int, asid: int, vmpl: Vmpl = Vmpl.VMPL0) -> float:
        """Hypervisor assigns a page to a guest (RMPUPDATE)."""
        entry = self._entries.get(gpa_page)
        if entry is not None and entry.state is PageState.GUEST_VALID:
            raise TeeError(f"page {gpa_page:#x} is validated; cannot reassign")
        self._entries[gpa_page] = RmpEntry(owner_asid=asid,
                                           state=PageState.GUEST_INVALID,
                                           vmpl=vmpl)
        return self.ASSIGN_COST_NS

    def pvalidate(self, gpa_page: int, asid: int) -> float:
        """Guest validates an assigned page (PVALIDATE)."""
        entry = self._entries.get(gpa_page)
        if entry is None or entry.owner_asid != asid:
            raise TeeError(f"page {gpa_page:#x} not assigned to ASID {asid}")
        if entry.state is PageState.GUEST_VALID:
            raise TeeError(f"page {gpa_page:#x} already validated (replay?)")
        if entry.state is PageState.SHARED:
            raise TeeError(f"page {gpa_page:#x} is shared; unshare first")
        entry.state = PageState.GUEST_VALID
        return self.PVALIDATE_COST_NS

    def share(self, gpa_page: int, asid: int) -> float:
        """Guest flips a private page to shared (unencrypted)."""
        entry = self._entries.get(gpa_page)
        if entry is None or entry.owner_asid != asid:
            raise TeeError(f"page {gpa_page:#x} not assigned to ASID {asid}")
        entry.state = PageState.SHARED
        return self.ASSIGN_COST_NS

    def check_access(self, gpa_page: int, asid: int) -> float:
        """Per-access ownership check (the nested walk's RMP lookup)."""
        self.checks += 1
        entry = self._entries.get(gpa_page)
        if entry is None:
            raise TeeError(f"page {gpa_page:#x} has no RMP entry")
        if entry.state is PageState.GUEST_VALID and entry.owner_asid != asid:
            raise TeeError(
                f"RMP violation: ASID {asid} touched page {gpa_page:#x} "
                f"owned by {entry.owner_asid}"
            )
        if entry.state is PageState.GUEST_INVALID:
            raise TeeError(f"page {gpa_page:#x} used before PVALIDATE")
        return self.CHECK_COST_NS

    def state_of(self, gpa_page: int) -> PageState:
        """Current state of a page (HYPERVISOR when untracked)."""
        entry = self._entries.get(gpa_page)
        return entry.state if entry is not None else PageState.HYPERVISOR


@dataclass
class SnpReportRequest:
    """Guest-supplied inputs for an attestation report."""

    report_data: bytes            # 64 user bytes bound into the report
    vmpl: Vmpl = Vmpl.VMPL0


@dataclass
class AmdSecureProcessor:
    """The AMD-SP coprocessor: firmware mailbox for report requests.

    The actual signing happens in :mod:`repro.attest.snp_report`; this
    class models the mailbox round-trip cost and measurement capture.
    """

    chip_id: str = "epyc-9124-chip-0"
    MAILBOX_COST_NS: float = 3_500_000.0     # firmware call, ~3.5 ms
    stats: TransitionStats = field(default_factory=TransitionStats)

    def measurement_for(self, guest_identity: str) -> bytes:
        """Launch digest of a guest (SHA-384 of its identity here)."""
        return hashlib.sha384(f"snp-launch:{guest_identity}".encode()).digest()

    def request_report(self, request: SnpReportRequest,
                       guest_identity: str) -> dict[str, bytes | str | int]:
        """Produce the unsigned report body for the attest stack."""
        if len(request.report_data) > 64:
            raise TeeError(
                f"report_data must be <= 64 bytes, got {len(request.report_data)}"
            )
        self.stats.record("report_requests")
        return {
            "measurement": self.measurement_for(guest_identity),
            "report_data": request.report_data.ljust(64, b"\0"),
            "vmpl": int(request.vmpl),
            "chip_id": self.chip_id,
        }


class SevSnpPlatform(TeePlatform):
    """AMD SEV-SNP on the paper's EPYC 9124 host."""

    name = "sev-snp"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.rmp = ReverseMapTable()
        self.amd_sp = AmdSecureProcessor()

    def info(self) -> PlatformInfo:
        return PlatformInfo(
            name=self.name,
            display_name="AMD SEV-SNP",
            vendor="amd",
            is_simulated=False,
            supports_attestation=True,
            supports_perf_counters=True,
            description="SNP guests with RMP integrity and AMD-SP attestation",
        )

    def build_machine(self) -> Machine:
        return epyc_9124()

    def secure_profile(self) -> CostProfile:
        """SEV-SNP guest cost profile.

        Calibration notes: slightly costlier CPU/memory than TDX (RMP
        checks on nested walks, no TD-style cache partitioning), but
        cheaper I/O — SNP guests use conventional SWIOTLB shared pages
        with less copy overhead than TDX's bounce buffers, matching
        the paper's "SEV-SNP is faster with I/O tasks".
        """
        return CostProfile(
            name="sev-snp",
            cpu_multiplier=1.035,
            mem_alloc_multiplier=1.075,
            mem_access_multiplier=1.055,
            io_read_multiplier=1.05,
            io_write_multiplier=1.05,
            syscall_multiplier=1.16,
            mem_encrypted=True,
            mem_integrity=True,
            mem_miss_extra_ns=12.0,
            syscall_transition_ns=0.0,
            halt_transition_ns=2.0 * 3_300.0,   # VMEXIT/VMRUN pair
            io_transition_ns=3_300.0,
            io_bounce_per_byte_ns=0.03,
            cache_hit_bonus_probability=0.15,
            cache_hit_bonus=0.004,
            noise_sigma=0.024,
            startup_ns=2_100_000.0,
        )
