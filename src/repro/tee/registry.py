"""Platform registry.

ConfBench's gateway maps TEE names to execution platforms through a
configuration file; this registry is the code-level equivalent.  New
platforms register a factory here (or are injected programmatically
into a :class:`repro.core.gateway.Gateway`), which is all "adding a
new TEE" takes — matching the paper's extensibility claim.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import NoSuchPlatformError
from repro.tee.base import TeePlatform
from repro.tee.cca import CcaPlatform
from repro.tee.container import ConfidentialContainerPlatform
from repro.tee.novm import NormalVmPlatform
from repro.tee.sevsnp import SevSnpPlatform
from repro.tee.sgx import SgxEnclavePlatform
from repro.tee.tdx import TdxPlatform

PLATFORM_FACTORIES: dict[str, Callable[[int], TeePlatform]] = {
    "tdx": lambda seed: TdxPlatform(seed=seed),
    "sev-snp": lambda seed: SevSnpPlatform(seed=seed),
    "cca": lambda seed: CcaPlatform(seed=seed),
    "novm": lambda seed: NormalVmPlatform(seed=seed),
    # execution units beyond VM-level TEEs (the paper's §VI plans):
    "sgx": lambda seed: SgxEnclavePlatform(seed=seed),
    "coco": lambda seed: ConfidentialContainerPlatform(seed=seed),
}

#: The TEE platforms the paper benches (excludes the plain-VM baseline).
TEE_PLATFORM_NAMES = ("tdx", "sev-snp", "cca")


def available_platforms() -> list[str]:
    """Registered platform names, sorted."""
    return sorted(PLATFORM_FACTORIES)


def platform_by_name(name: str, seed: int = 0) -> TeePlatform:
    """Instantiate a registered platform.

    Raises
    ------
    NoSuchPlatformError
        If the name is not registered.
    """
    try:
        factory = PLATFORM_FACTORIES[name]
    except KeyError:
        raise NoSuchPlatformError(
            f"unknown platform {name!r}; available: {', '.join(available_platforms())}"
        ) from None
    return factory(seed)


def register_platform(name: str, factory: Callable[[int], TeePlatform]) -> None:
    """Register a new platform factory (overwrites are rejected)."""
    if name in PLATFORM_FACTORIES:
        raise ValueError(f"platform {name!r} already registered")
    PLATFORM_FACTORIES[name] = factory


def unregister_platform(name: str) -> None:
    """Remove a platform (used by tests adding temporary platforms)."""
    if name in ("tdx", "sev-snp", "cca", "novm", "sgx", "coco"):
        raise ValueError(f"refusing to unregister built-in platform {name!r}")
    PLATFORM_FACTORIES.pop(name, None)
