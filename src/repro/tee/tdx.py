"""Intel TDX platform simulator.

Models the pieces §II describes:

- The **TDX Module** living in reserved memory, running in SEAM root
  mode.  Trusted Domains (TDs) call into it with ``TDCALL``; the
  hypervisor calls it with ``SEAMCALL`` and the module returns with
  ``SEAMRET``.  Each of these is a priced world switch.
- TD memory is **encrypted and integrity-protected** and only
  manageable through the module.
- I/O leaves the protected space through **bounce buffers** in shared
  memory — the paper's explanation for TDX's iostress penalty
  (TDX Connect will eventually remove this copy).
- A **firmware performance model**: the paper reports that upgrading
  to ``TDX_1.5.05.46.698`` improved runtime up to 10×; older firmware
  is therefore available here as a configuration for the ablation
  bench.
- ``TDREPORT`` generation for the attestation stack.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import TeeError
from repro.guestos.context import CostProfile
from repro.hw.machine import Machine, xeon_gold_5515
from repro.tee.base import PlatformInfo, TeePlatform, TransitionStats

#: The firmware the paper's final numbers use.
GOOD_FIRMWARE = "TDX_1.5.05.46.698"
#: A stand-in for the pre-upgrade firmware with the ~10x pathology.
OLD_FIRMWARE = "TDX_1.5.00.00.000"

_FIRMWARE_TRANSITION_FACTOR = {
    GOOD_FIRMWARE: 1.0,
    OLD_FIRMWARE: 10.0,
}


@dataclass
class TdReport:
    """The raw TDREPORT a TD obtains via TDCALL[TDG.MR.REPORT].

    Carries the measurement registers the quote is later built from.
    """

    mrtd: bytes                 # build-time measurement of the TD
    rtmr: tuple[bytes, ...]     # runtime-extendable measurement registers
    report_data: bytes          # caller-chosen 64 bytes bound into the report
    tee_tcb_svn: str            # module/firmware security version


class TdxModule:
    """The TDX Module: SEAM-root intermediary between VMM and TDs.

    Counts transitions so experiments can correlate overhead with
    TDCALL/SEAMCALL frequency, and prices each transition according to
    the loaded firmware.
    """

    #: Baseline cost of one SEAM transition on good firmware (ns).
    BASE_TRANSITION_NS = 2_200.0

    def __init__(self, firmware: str = GOOD_FIRMWARE) -> None:
        if firmware not in _FIRMWARE_TRANSITION_FACTOR:
            known = ", ".join(sorted(_FIRMWARE_TRANSITION_FACTOR))
            raise TeeError(f"unknown TDX firmware {firmware!r}; known: {known}")
        self.firmware = firmware
        self.stats = TransitionStats()

    @property
    def transition_cost_ns(self) -> float:
        """Cost of one world switch under the loaded firmware."""
        return self.BASE_TRANSITION_NS * _FIRMWARE_TRANSITION_FACTOR[self.firmware]

    def tdcall(self, leaf: str, count: int = 1) -> float:
        """TD(s) requesting a module service (SEAM non-root -> root).

        ``count > 1`` records a batch of identical calls in one
        bookkeeping step; the returned cost covers the whole batch.
        """
        self.stats.record("tdcalls", count)
        self.stats.record(leaf, count)
        return self.transition_cost_ns * count

    def seamcall(self, leaf: str, count: int = 1) -> float:
        """The hypervisor calling into the module (VMX root -> SEAM)."""
        self.stats.record("seamcalls", count)
        self.stats.record(leaf, count)
        return self.transition_cost_ns * count

    def seamret(self, count: int = 1) -> float:
        """The module returning to the hypervisor."""
        self.stats.record("seamrets", count)
        return self.transition_cost_ns * 0.5 * count

    def generate_tdreport(self, report_data: bytes, td_identity: str) -> TdReport:
        """TDG.MR.REPORT: produce a TDREPORT bound to ``report_data``.

        ``report_data`` must be at most 64 bytes (zero-padded), as in
        the real interface.
        """
        if len(report_data) > 64:
            raise TeeError(f"report_data must be <= 64 bytes, got {len(report_data)}")
        self.tdcall("TDG.MR.REPORT")
        padded = report_data.ljust(64, b"\0")
        mrtd = hashlib.sha384(f"mrtd:{td_identity}".encode()).digest()
        rtmr = tuple(
            hashlib.sha384(f"rtmr{i}:{td_identity}".encode()).digest()
            for i in range(4)
        )
        return TdReport(
            mrtd=mrtd,
            rtmr=rtmr,
            report_data=padded,
            tee_tcb_svn=self.firmware,
        )


class TdxPlatform(TeePlatform):
    """Intel TDX on the paper's Xeon Gold 5515+ host."""

    name = "tdx"

    def __init__(self, seed: int = 0, firmware: str = GOOD_FIRMWARE) -> None:
        super().__init__(seed)
        self.module = TdxModule(firmware)

    def info(self) -> PlatformInfo:
        return PlatformInfo(
            name=self.name,
            display_name="Intel TDX",
            vendor="intel",
            is_simulated=False,
            supports_attestation=True,
            supports_perf_counters=True,
            description=(
                "Trust Domains behind the TDX Module (SEAM), "
                f"firmware {self.module.firmware}"
            ),
        )

    def build_machine(self) -> Machine:
        return xeon_gold_5515()

    def secure_profile(self) -> CostProfile:
        """TDX trusted-domain cost profile.

        Calibration notes (targets from the paper's shapes):

        - near-native CPU: TDs run at full speed, single-digit-percent
          penalty from TLB/EPT pressure;
        - memory encryption + integrity on all TD pages;
        - bounce-buffer copies per I/O byte — the iostress driver;
        - halt/wake transitions priced by the firmware model — the
          UnixBench driver;
        - occasional cache-hit *bonus* reproducing sub-1.0 ratio cells.
        """
        transition = self.module.transition_cost_ns
        return CostProfile(
            name="tdx",
            cpu_multiplier=1.010,
            mem_alloc_multiplier=1.040,
            mem_access_multiplier=1.030,
            io_read_multiplier=1.10,
            io_write_multiplier=1.10,
            syscall_multiplier=1.12,
            mem_encrypted=True,
            mem_integrity=True,
            mem_miss_extra_ns=8.0,
            syscall_transition_ns=0.0,
            halt_transition_ns=2.0 * transition,   # HLT exit + wake
            io_transition_ns=transition,           # virtio kick
            io_bounce_per_byte_ns=0.14,
            cache_hit_bonus_probability=0.22,
            cache_hit_bonus=0.0045,
            noise_sigma=0.020,
            startup_ns=2_400_000.0,
        )
