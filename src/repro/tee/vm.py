"""VM lifecycle and execution engine.

A :class:`Vm` belongs to one platform and is either confidential or
normal.  Booting charges platform-specific bring-up; each
:meth:`Vm.run` executes a workload callable inside a fresh
:class:`~repro.guestos.context.ExecContext` + guest kernel, so runs
are independent trials (as in the paper's 10-trial methodology) while
the VM-level perf counters accumulate across runs.

Workload callables receive the :class:`~repro.guestos.kernel.GuestKernel`
and return an arbitrary JSON-able payload; the engine wraps that in a
:class:`RunResult` carrying elapsed time, the cost-ledger breakdown,
and the perf-counter delta that ConfBench's monitor piggybacks onto
responses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import VmCrashError, VmError
from repro.guestos.context import ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.perfcounters import PerfCounters
from repro.sim.clock import ns_to_ms
from repro.sim.faults import FaultContext, FaultKind
from repro.sim.ledger import CostCategory, CostLedger
from repro.sim.rng import SimRng
from repro.sim.trace import Trace
from repro.tee.base import TeePlatform, VmConfig


class VmState(enum.Enum):
    """VM lifecycle states."""

    CREATED = "created"
    BOOTED = "booted"
    DESTROYED = "destroyed"


#: Memoized category lookup for :meth:`RunResult.from_dict` — the enum
#: constructor's value lookup costs a call per record, and cache/journal
#: reloads rebuild thousands of results.
_CATEGORY_BY_NAME = {category.value: category for category in CostCategory}


@dataclass
class RunResult:
    """Outcome of one workload run in one VM."""

    vm_id: str
    platform: str
    secure: bool
    workload: str
    output: Any
    elapsed_ns: float
    total_ns: float                     # including startup charges
    ledger: CostLedger
    counters: PerfCounters
    trial: int = 0
    trace: Trace = field(default_factory=Trace)
    #: failure-handling metadata (left at defaults on clean runs so a
    #: zero-fault serialisation is byte-identical to the classic form)
    attempts: int = 1
    faults_injected: tuple[str, ...] = ()
    degraded: bool = False

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time (net of bootstrap) in milliseconds."""
        return ns_to_ms(self.elapsed_ns)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able summary (what the gateway returns to users)."""
        payload = {
            "vm_id": self.vm_id,
            "platform": self.platform,
            "secure": self.secure,
            "workload": self.workload,
            "trial": self.trial,
            "output": self.output,
            "elapsed_ns": self.elapsed_ns,
            "elapsed_ms": self.elapsed_ms,
            "total_ns": self.total_ns,
            "perf": self.counters.as_dict(),
            "cost_breakdown": {
                category.value: nanos for category, nanos in self.ledger
            },
            "trace": self.trace.to_list(),
        }
        if self.attempts != 1 or self.faults_injected or self.degraded:
            payload["attempts"] = self.attempts
            payload["faults_injected"] = list(self.faults_injected)
            payload["degraded"] = self.degraded
        return payload

    def emit(self, sink, prefix: str = "run") -> None:
        """Feed this result's measurements into a metrics sink.

        ``sink`` is duck-typed against the :mod:`repro.obs` sink
        protocol (``count`` / ``observe``); the tee layer sits below
        the observability package and must not import it.  Metric
        names are keyed by platform and secure/normal side so the
        registry separates the paper's comparison axes.
        """
        side = "secure" if self.secure else "normal"
        base = f"{prefix}.{self.platform}.{side}"
        sink.count(f"{base}.trials", 1)
        if self.degraded:
            sink.count(f"{base}.degraded", 1)
        if self.attempts > 1:
            sink.count(f"{base}.retries", self.attempts - 1)
        sink.observe(f"{base}.elapsed_ns", self.elapsed_ns)
        sink.observe(f"{base}.total_ns", self.total_ns)
        self.ledger.emit(sink, prefix=f"{base}.ledger")
        self.counters.emit(sink, prefix=f"{base}.perf")

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (cache reload)."""
        ledger = CostLedger()
        for name, nanos in payload.get("cost_breakdown", {}).items():
            category = _CATEGORY_BY_NAME.get(name)
            if category is None:
                raise VmError(f"unknown cost category in payload: {name!r}")
            # cold path: one charge per serialized category, not per op
            ledger.charge(category, nanos)  # confbench: allow[hot-path-per-op]
        trace = Trace()
        for span in payload.get("trace", []):
            trace.record(span["name"], span["start_ns"], span["end_ns"],
                         breakdown=span.get("breakdown"),
                         parent=span.get("parent"))
        return cls(
            vm_id=payload["vm_id"],
            platform=payload["platform"],
            secure=payload["secure"],
            workload=payload["workload"],
            output=payload["output"],
            elapsed_ns=payload["elapsed_ns"],
            total_ns=payload["total_ns"],
            ledger=ledger,
            counters=PerfCounters(**payload["perf"]),
            trial=payload["trial"],
            trace=trace,
            attempts=payload.get("attempts", 1),
            faults_injected=tuple(payload.get("faults_injected", ())),
            degraded=payload.get("degraded", False),
        )


# VM bring-up costs (ns).  Confidential VMs measure and accept pages at
# launch, which is why their boot is slower.
_BOOT_BASE_NS = 900_000_000.0          # ~0.9 s plain VM boot
_SECURE_BOOT_EXTRA_PER_MIB_NS = 110_000.0


@dataclass
class Vm:
    """One virtual machine instance."""

    vm_id: str
    platform: TeePlatform
    config: VmConfig
    state: VmState = VmState.CREATED
    boot_time_ns: float = 0.0
    counters: PerfCounters = field(default_factory=PerfCounters)
    run_count: int = 0

    @property
    def secure(self) -> bool:
        """Whether this is the confidential variant."""
        return self.config.secure

    def boot(self) -> float:
        """Boot the VM; returns the virtual boot time in ns.

        Confidential boots pay per-MiB launch measurement (page
        acceptance / RMP assignment / realm population).
        """
        if self.state is not VmState.CREATED:
            raise VmError(f"{self.vm_id}: cannot boot from state {self.state.value}")
        boot_ns = _BOOT_BASE_NS
        if self.secure:
            boot_ns += self.config.memory_mib * _SECURE_BOOT_EXTRA_PER_MIB_NS
        profile = self.platform.profile_for(self.secure)
        boot_ns *= profile.simulator_multiplier
        self.boot_time_ns = boot_ns
        self.state = VmState.BOOTED
        return boot_ns

    def destroy(self) -> None:
        """Tear the VM down; it cannot run afterwards."""
        if self.state is VmState.DESTROYED:
            raise VmError(f"{self.vm_id}: already destroyed")
        self.state = VmState.DESTROYED

    def run(
        self,
        workload: Callable[[GuestKernel], Any],
        name: str = "anonymous",
        trial: int = 0,
        contention: float = 1.0,
        rng: SimRng | None = None,
        trace: Trace | None = None,
        faults: FaultContext | None = None,
    ) -> RunResult:
        """Execute ``workload`` in this VM and measure it.

        Each run gets a fresh guest kernel and exec context seeded from
        ``(platform seed, vm id, workload name, trial)`` so trials are
        independent but reproducible.  The runner pipeline passes an
        explicit per-trial ``rng`` substream instead, making the draws
        independent of VM identity and execution order (the property
        the parallel executor's bit-identical guarantee rests on).

        ``contention`` (>= 1.0) uniformly inflates costs to model
        co-scheduled VMs oversubscribing the host (the §VI multi-tenant
        study); 1.0 means the VM runs alone.

        Every run records a span trace (``launch`` + ``execute`` root
        spans at minimum); pass ``trace`` to prepend host-side spans
        such as ``boot``.  Workload bodies can open sub-spans through
        ``kernel.ctx.trace``.

        ``faults`` enables seeded fault injection: a triggered
        slow-trial degrades the whole run (like contention), and a
        triggered vm-crash destroys the VM mid-execute and raises
        :class:`~repro.errors.VmCrashError` carrying the wasted
        virtual time.
        """
        if self.state is not VmState.BOOTED:
            raise VmError(f"{self.vm_id}: cannot run in state {self.state.value}")
        if contention < 1.0:
            raise VmError(f"contention factor must be >= 1.0: {contention}")

        self.run_count += 1
        machine = self.platform.build_machine()
        profile = self.platform.profile_for(self.secure)
        slowdown = contention
        if faults is not None and faults.triggers(FaultKind.SLOW_TRIAL, "slow"):
            slowdown *= faults.plan.slow_factor
        if slowdown > 1.0:
            import dataclasses

            profile = dataclasses.replace(
                profile,
                simulator_multiplier=profile.simulator_multiplier * slowdown,
            )
        if trace is None:
            trace = Trace()
        ctx = ExecContext(
            machine=machine,
            profile=profile,
            rng=(rng if rng is not None
                 else self.platform.rng.child(f"{self.vm_id}/{name}/{trial}")),
            trace=trace,
            faults=faults,
        )
        kernel = GuestKernel(ctx)
        with trace.span("launch", ctx):
            if ctx.profile.startup_ns > 0:
                # per-invocation platform prep (TD entry setup, enclave
                # creation, sandbox cold start) — charged as STARTUP so
                # the paper-style elapsed time excludes it, but total_ns
                # keeps it
                ctx.startup(ctx.profile.startup_ns)

        before = machine.counters.snapshot()
        with trace.span("execute", ctx):
            if faults is not None and faults.triggers(FaultKind.VM_CRASH,
                                                     "execute"):
                # the TD dies partway through the body: account for the
                # work already charged plus a drawn partial-execution
                # waste, then leave the VM unusable
                wasted = (ctx.elapsed_ns(exclude_startup=False)
                          + faults.waste_ns("execute"))
                self.state = VmState.DESTROYED
                raise VmCrashError(
                    f"{self.vm_id}: injected VM crash during execute",
                    wasted_ns=wasted,
                )
            output = workload(kernel)
        delta = machine.counters.delta(before)
        self.counters.add(delta)

        return RunResult(
            vm_id=self.vm_id,
            platform=self.platform.name,
            secure=self.secure,
            workload=name,
            output=output,
            elapsed_ns=ctx.elapsed_ns(exclude_startup=True),
            total_ns=ctx.elapsed_ns(exclude_startup=False),
            ledger=ctx.ledger,
            counters=delta,
            trial=trial,
            trace=trace,
        )

    def run_trials(
        self,
        workload: Callable[[GuestKernel], Any],
        name: str = "anonymous",
        trials: int = 10,
    ) -> list[RunResult]:
        """Run ``trials`` independent trials (the paper uses 10)."""
        if trials < 1:
            raise VmError(f"need at least one trial, got {trials}")
        return [self.run(workload, name=name, trial=i) for i in range(trials)]
