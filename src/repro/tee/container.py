"""Confidential containers platform.

§V cites Segarra et al.: "serverless workloads can be deployed in
confidential containers, however with unpractical results from the
resulting overheads.  Similar results can easily be reproduced
leveraging ConfBench" — this platform is that reproduction hook.

The model follows Kata-style confidential containers: each container
runs inside a (TDX-backed) micro-VM, so steady-state execution pays
the TDX profile **plus**:

- a **kata-agent hop** on the I/O and exit paths (guest agent
  proxying between the container and the sandbox boundary);
- **virtio-fs** instead of virtio-blk for the container rootfs —
  markedly slower file I/O;
- a very expensive **cold start**: encrypted image pull + measured
  unpack + sandbox VM boot, charged as STARTUP so ConfBench's
  steady-state ratios stay comparable, with the cold-start figure
  reported separately (it is the "unpractical" part).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import TeeError
from repro.guestos.context import CostProfile
from repro.hw.machine import Machine, xeon_gold_5515
from repro.tee.base import PlatformInfo, TeePlatform
from repro.tee.tdx import GOOD_FIRMWARE, TdxModule

#: Cold start: encrypted image pull + verification + sandbox boot.
COLD_START_NS = 2_800_000_000.0   # ~2.8 s

#: The kata-agent proxy hop added to each I/O operation.
AGENT_HOP_NS = 9_500.0


@dataclass
class ContainerImage:
    """A (pulled, measured) container image."""

    reference: str
    size_bytes: int
    digest: str


class ConfidentialContainerPlatform(TeePlatform):
    """Confidential containers in TDX-backed sandbox micro-VMs."""

    name = "coco"

    def __init__(self, seed: int = 0,
                 image_size_bytes: int = 350 * 1024 * 1024) -> None:
        super().__init__(seed)
        if image_size_bytes <= 0:
            raise TeeError(f"image size must be positive: {image_size_bytes}")
        self.module = TdxModule(GOOD_FIRMWARE)
        self.image = ContainerImage(
            reference="registry.local/workload:latest",
            size_bytes=image_size_bytes,
            # hashlib, not builtin hash(): str hashing is randomized
            # per process (PYTHONHASHSEED), which would give parallel
            # trial workers a different digest than the serial path.
            digest=f"sha256:{hashlib.sha256(f'image:{seed}'.encode()).hexdigest()}",
        )

    def info(self) -> PlatformInfo:
        return PlatformInfo(
            name=self.name,
            display_name="Confidential containers (TDX sandbox)",
            vendor="intel",
            is_simulated=False,
            supports_attestation=True,
            supports_perf_counters=True,
            description=(
                "Kata-style containers in TDX micro-VMs; encrypted image "
                f"pull ({self.image.size_bytes // (1024 * 1024)} MiB) + "
                "measured boot per sandbox"
            ),
        )

    def build_machine(self) -> Machine:
        return xeon_gold_5515()

    def secure_profile(self) -> CostProfile:
        transition = self.module.transition_cost_ns
        return CostProfile(
            name="coco",
            cpu_multiplier=1.015,          # TDX-like compute
            mem_alloc_multiplier=1.06,
            mem_access_multiplier=1.04,
            io_read_multiplier=2.1,        # virtio-fs rootfs path
            io_write_multiplier=2.1,
            syscall_multiplier=1.25,       # agent interposition
            mem_encrypted=True,
            mem_integrity=True,
            mem_miss_extra_ns=8.0,
            syscall_transition_ns=0.0,
            halt_transition_ns=2.0 * transition,
            io_transition_ns=transition + AGENT_HOP_NS,
            io_bounce_per_byte_ns=0.14,
            cache_hit_bonus_probability=0.1,
            cache_hit_bonus=0.003,
            noise_sigma=0.035,
            startup_ns=COLD_START_NS,      # the "unpractical" part
        )

    def normal_profile(self) -> CostProfile:
        """A plain (non-confidential) container: runc-style, near
        native, tiny cold start."""
        return CostProfile(
            name="container",
            io_read_multiplier=1.08,       # overlayfs
            io_write_multiplier=1.08,
            syscall_multiplier=1.03,       # seccomp
            noise_sigma=0.018,
            startup_ns=120_000_000.0,      # ~120 ms runc start
        )

    def cold_start_ns(self, secure: bool) -> float:
        """The reported cold-start figure for one sandbox/container."""
        return (self.secure_profile() if secure
                else self.normal_profile()).startup_ns
