"""The plain, non-confidential VM platform.

ConfBench always deploys a "normal" VM next to each secure VM so that
overhead ratios have a baseline.  On the hardware TEE hosts the
normal VM is an ordinary KVM guest; this platform models that case as
a near-passthrough (tiny virtualisation noise, no TEE costs).

This platform is also useful standalone: submitting a workload with
``secure=False`` through the gateway lands here when no TEE host is
involved.
"""

from __future__ import annotations

from repro.guestos.context import CostProfile
from repro.hw.machine import Machine, machine_by_name
from repro.tee.base import PlatformInfo, TeePlatform


class NormalVmPlatform(TeePlatform):
    """A legacy VM on a host without TEE protections engaged."""

    name = "novm"

    def __init__(self, seed: int = 0, host: str = "xeon-gold-5515") -> None:
        super().__init__(seed)
        self.host = host

    def info(self) -> PlatformInfo:
        return PlatformInfo(
            name=self.name,
            display_name="Normal VM",
            vendor="generic",
            is_simulated=False,
            supports_attestation=False,
            supports_perf_counters=True,
            description=f"non-confidential KVM guest on {self.host}",
        )

    def build_machine(self) -> Machine:
        return machine_by_name(self.host)

    def secure_profile(self) -> CostProfile:
        """A "secure" request on this platform is still a plain VM."""
        return self.normal_profile()

    def normal_profile(self) -> CostProfile:
        return CostProfile(name="novm", noise_sigma=0.012)
