"""Intel SGX enclave platform (first-generation, process-level TEE).

§VI lists "support [for] native processes (for Intel SGX enclaves)"
as planned work, and §I contrasts first-generation TEEs ("complex
implementation requirements ... deep modifications") with the
VM-level TEEs ConfBench benches.  This platform models SGX's
process-level execution unit so those comparisons can actually run:

- an **enclave** instead of a VM — creation is cheap (no guest OS
  boot) but every syscall must leave the enclave through an **OCALL**
  (enclave exit + re-entry), the classic SGX tax;
- the **EPC** (Enclave Page Cache) is small; working sets beyond it
  page through costly EWB/ELDU encrypted swaps;
- memory is encrypted + integrity-protected by the MEE, with a larger
  per-line cost than second-generation engines.

The expected (and asserted) result mirrors the literature: syscall-
and memory-heavy workloads suffer far more in SGX enclaves than in
TDX/SNP confidential VMs, while pure compute stays near-native.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TeeError
from repro.guestos.context import CostProfile
from repro.hw.machine import Machine, xeon_gold_5515
from repro.tee.base import PlatformInfo, TeePlatform

#: EPC size of classic SGX parts (the paper-era 93.5 MiB usable).
EPC_BYTES = 93 * 1024 * 1024

#: One enclave exit + re-entry (EEXIT/EENTER + flushes), ~8000 cycles.
OCALL_COST_NS = 2_600.0

#: Encrypted EPC page swap (EWB + ELDU pair).
EPC_SWAP_PAGE_NS = 11_000.0


@dataclass
class EnclaveMetrics:
    """Counters specific to enclave execution."""

    ecalls: int = 0
    ocalls: int = 0
    epc_swaps: int = 0


class SgxEnclavePlatform(TeePlatform):
    """Process-level SGX enclaves on the Xeon host.

    The "VM" this platform creates is really an enclave-hosting
    process: the same execution engine applies, but the cost profile
    is first-generation — brutal syscall path, EPC-bound memory.
    """

    name = "sgx"

    def __init__(self, seed: int = 0, epc_bytes: int = EPC_BYTES) -> None:
        super().__init__(seed)
        if epc_bytes < 16 * 1024 * 1024:
            raise TeeError(f"EPC too small to be useful: {epc_bytes}")
        self.epc_bytes = epc_bytes
        self.metrics = EnclaveMetrics()

    def info(self) -> PlatformInfo:
        return PlatformInfo(
            name=self.name,
            display_name="Intel SGX (enclave)",
            vendor="intel",
            is_simulated=False,
            supports_attestation=True,   # EPID/DCAP — not modelled here
            supports_perf_counters=True,
            description=(
                f"process-level enclaves, EPC "
                f"{self.epc_bytes // (1024 * 1024)} MiB, OCALL-mediated "
                "syscalls"
            ),
        )

    def build_machine(self) -> Machine:
        machine = xeon_gold_5515()
        # enclave working sets beyond the EPC page expensively: model
        # as a much smaller effective cache plus swap-heavy misses.
        machine.cpu.cache.size_bytes = min(
            machine.cpu.cache.size_bytes, self.epc_bytes // 4
        )
        return machine

    def secure_profile(self) -> CostProfile:
        return CostProfile(
            name="sgx",
            cpu_multiplier=1.02,           # in-enclave compute is fast
            mem_alloc_multiplier=1.9,      # EADD/EAUG + EPC pressure
            mem_access_multiplier=1.25,
            io_read_multiplier=1.35,
            io_write_multiplier=1.35,
            syscall_multiplier=1.3,
            mem_encrypted=True,
            mem_integrity=True,
            mem_miss_extra_ns=30.0,        # MEE is costlier than TME-MK
            # the defining first-gen tax: EVERY syscall is an OCALL
            syscall_transition_ns=OCALL_COST_NS,
            halt_transition_ns=2.0 * OCALL_COST_NS,
            io_transition_ns=OCALL_COST_NS,
            io_bounce_per_byte_ns=0.20,    # copy through untrusted buffers
            cache_hit_bonus_probability=0.0,
            cache_hit_bonus=0.0,
            noise_sigma=0.030,
            startup_ns=180_000_000.0,      # enclave create+measure ~180 ms
        )

    def epc_pressure(self, working_set_bytes: int) -> float:
        """Fraction of the working set beyond the EPC (0 when it fits)."""
        if working_set_bytes <= self.epc_bytes:
            return 0.0
        return 1.0 - self.epc_bytes / working_set_bytes
