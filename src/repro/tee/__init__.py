"""TEE platform simulators.

One module per platform the paper benches:

- :mod:`repro.tee.tdx` — Intel TDX: the TDX Module in SEAM mode,
  TDCALL/SEAMCALL/SEAMRET transitions, encrypted + integrity-protected
  TD memory, bounce-buffer I/O, firmware-version performance model.
- :mod:`repro.tee.sevsnp` — AMD SEV-SNP: the Reverse Map Table (RMP),
  VM Privilege Levels, the AMD-SP secure coprocessor.
- :mod:`repro.tee.cca` — ARM CCA: four worlds, the Realm Management
  Monitor with its RMI/RSI interfaces, two-stage address translation,
  all running inside the :mod:`repro.tee.fvp` simulation layer.
- :mod:`repro.tee.novm` — the plain, non-confidential VM used as the
  ratio baseline.

The common surface is :class:`repro.tee.base.TeePlatform`; the shared
VM execution engine lives in :mod:`repro.tee.vm`.
"""

from repro.tee.base import TeePlatform, VmConfig
from repro.tee.vm import Vm, VmState, RunResult
from repro.tee.novm import NormalVmPlatform
from repro.tee.tdx import TdxPlatform, TdxModule
from repro.tee.sevsnp import SevSnpPlatform, ReverseMapTable, Vmpl
from repro.tee.cca import CcaPlatform, RealmManagementMonitor, World
from repro.tee.container import ConfidentialContainerPlatform
from repro.tee.fvp import FvpSimulator
from repro.tee.sgx import SgxEnclavePlatform
from repro.tee.registry import (
    PLATFORM_FACTORIES,
    available_platforms,
    platform_by_name,
)

__all__ = [
    "TeePlatform",
    "VmConfig",
    "Vm",
    "VmState",
    "RunResult",
    "NormalVmPlatform",
    "TdxPlatform",
    "TdxModule",
    "SevSnpPlatform",
    "ReverseMapTable",
    "Vmpl",
    "CcaPlatform",
    "RealmManagementMonitor",
    "World",
    "ConfidentialContainerPlatform",
    "FvpSimulator",
    "SgxEnclavePlatform",
    "PLATFORM_FACTORIES",
    "available_platforms",
    "platform_by_name",
]
