"""ARM CCA platform simulator.

Models the CCA software stack §II describes:

- **Four worlds** (normal, secure, realm, root) with their physical
  address spaces; confidential VMs and the Realm Management Monitor
  (RMM) live in the realm world at different exception levels.
- The **RMM** exposing the Realm Services Interface (RSI, used by
  realms for attestation/memory services) and the Realm Management
  Interface (RMI, used by the host to manage realms).
- **Two-stage address translation** with the RMM owning stage 2.
- The **FVP simulation layer** everything runs inside (see
  :mod:`repro.tee.fvp`), which both slows execution down uniformly
  and adds the variance behind Fig. 8's long whiskers.

Like the paper's setup, the simulated CCA lacks the hardware needed
for attestation report signing, so :meth:`CcaPlatform.attestation_device`
raises :class:`~repro.errors.TeeUnsupportedError` — the Fig. 5 bench
consequently covers TDX and SEV-SNP only.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from repro.errors import TeeError, TeeUnsupportedError
from repro.guestos.context import CostProfile
from repro.hw.machine import Machine, fvp_model
from repro.tee.base import PlatformInfo, TeePlatform, TransitionStats
from repro.tee.fvp import FvpSimulator


class World(enum.Enum):
    """CCA security worlds, each with its own physical address space."""

    NORMAL = "normal"
    SECURE = "secure"
    REALM = "realm"
    ROOT = "root"


class ExceptionLevel(enum.IntEnum):
    """ARM exception (privilege) levels."""

    EL0 = 0   # applications
    EL1 = 1   # guest OS / realm kernel
    EL2 = 2   # hypervisor / RMM
    EL3 = 3   # monitor (root world)


class RealmState(enum.Enum):
    """Lifecycle of a realm per the RMM specification (simplified)."""

    NEW = "new"
    ACTIVE = "active"
    DESTROYED = "destroyed"


@dataclass
class Realm:
    """One confidential VM in the realm world."""

    rid: int
    identity: str
    state: RealmState = RealmState.NEW
    measurement: bytes = b""
    granules: int = 0   # delegated 4 KiB granules


class RealmManagementMonitor:
    """The RMM: realm-world firmware at EL2.

    The host drives realm lifecycle through RMI calls; realms request
    services through RSI calls.  Every call is a priced world switch.
    """

    RMI_COST_NS = 9_000.0   # host <-> RMM transition (through root world)
    RSI_COST_NS = 7_000.0   # realm <-> RMM transition

    def __init__(self) -> None:
        self.stats = TransitionStats()
        self._realms: dict[int, Realm] = {}
        self._next_rid = 1

    # -- RMI: host-side management ------------------------------------

    def rmi_realm_create(self, identity: str) -> tuple[Realm, float]:
        """RMI_REALM_CREATE: make a new realm in state NEW."""
        self.stats.record("rmi_calls")
        realm = Realm(rid=self._next_rid, identity=identity)
        realm.measurement = hashlib.sha384(
            f"realm-initial:{identity}".encode()
        ).digest()
        self._realms[realm.rid] = realm
        self._next_rid += 1
        return realm, self.RMI_COST_NS

    def rmi_granule_delegate(self, rid: int, granules: int) -> float:
        """RMI_GRANULE_DELEGATE: move pages into the realm PAS."""
        self.stats.record("rmi_calls")
        realm = self._get(rid)
        if realm.state is RealmState.DESTROYED:
            raise TeeError(f"realm {rid} destroyed")
        if granules < 0:
            raise TeeError(f"negative granule count: {granules}")
        realm.granules += granules
        return self.RMI_COST_NS + granules * 400.0

    def rmi_realm_activate(self, rid: int) -> float:
        """RMI_REALM_ACTIVATE: seal the measurement, allow execution."""
        self.stats.record("rmi_calls")
        realm = self._get(rid)
        if realm.state is not RealmState.NEW:
            raise TeeError(f"realm {rid} cannot activate from {realm.state.value}")
        realm.state = RealmState.ACTIVE
        return self.RMI_COST_NS

    def rmi_realm_destroy(self, rid: int) -> float:
        """RMI_REALM_DESTROY: tear the realm down, reclaim granules."""
        self.stats.record("rmi_calls")
        realm = self._get(rid)
        if realm.state is RealmState.DESTROYED:
            raise TeeError(f"realm {rid} already destroyed")
        realm.state = RealmState.DESTROYED
        realm.granules = 0
        return self.RMI_COST_NS

    # -- RSI: realm-side services ----------------------------------------

    def rsi_attestation_token(self, rid: int, challenge: bytes) -> tuple[dict, float]:
        """RSI_ATTESTATION_TOKEN: measurements bound to a challenge.

        Returns the *unsigned* token body: on FVP there is no hardware
        key to sign with (the paper leaves CCA out of the attestation
        experiment for exactly this reason).
        """
        self.stats.record("rsi_calls")
        realm = self._get(rid)
        if realm.state is not RealmState.ACTIVE:
            raise TeeError(f"realm {rid} not active")
        if len(challenge) > 64:
            raise TeeError(f"challenge must be <= 64 bytes, got {len(challenge)}")
        token = {
            "realm_initial_measurement": realm.measurement,
            "challenge": challenge.ljust(64, b"\0"),
            "rim_extensions": (),
            "signed": False,
        }
        return token, self.RSI_COST_NS

    def rsi_ipa_state_set(self, rid: int, pages: int) -> float:
        """RSI_IPA_STATE_SET: realm changes page protection (stage 2)."""
        self.stats.record("rsi_calls")
        realm = self._get(rid)
        if realm.state is not RealmState.ACTIVE:
            raise TeeError(f"realm {rid} not active")
        if pages < 0:
            raise TeeError(f"negative page count: {pages}")
        return self.RSI_COST_NS + pages * 350.0

    def _get(self, rid: int) -> Realm:
        try:
            return self._realms[rid]
        except KeyError:
            raise TeeError(f"no such realm: {rid}") from None


@dataclass
class StageTwoTranslation:
    """RMM-managed stage-2 translation cost model.

    Realm memory accesses translate VA -> IPA (stage 1, guest) and
    IPA -> PA (stage 2, RMM-owned tables); under FVP emulation the
    second stage is notably expensive.
    """

    walk_cost_ns: float = 110.0
    tlb_hit_rate: float = 0.986

    def access_overhead_ns(self, accesses: int) -> float:
        """Added cost of stage-2 walks for ``accesses`` memory accesses."""
        if accesses < 0:
            raise TeeError(f"negative access count: {accesses}")
        misses = accesses * (1.0 - self.tlb_hit_rate)
        return misses * self.walk_cost_ns


class CcaPlatform(TeePlatform):
    """ARM CCA realms inside the FVP simulator."""

    name = "cca"

    def __init__(self, seed: int = 0, fvp: FvpSimulator | None = None) -> None:
        super().__init__(seed)
        self.fvp = fvp if fvp is not None else FvpSimulator()
        self.rmm = RealmManagementMonitor()
        self.stage2 = StageTwoTranslation()

    def info(self) -> PlatformInfo:
        return PlatformInfo(
            name=self.name,
            display_name="ARM CCA (FVP)",
            vendor="arm",
            is_simulated=True,
            supports_attestation=False,   # FVP lacks the signing hardware
            supports_perf_counters=False,  # perf unavailable inside realms
            description=(
                f"Realms behind the RMM inside FVP (slowdown {self.fvp.slowdown}x)"
            ),
        )

    def build_machine(self) -> Machine:
        return fvp_model()

    def secure_profile(self) -> CostProfile:
        """Realm cost profile (inside FVP).

        Everything inside FVP gets the simulator slowdown (see
        :meth:`normal_profile` — it applies to the normal VM too, so
        the *ratio* reflects realm mechanisms, not the simulator).
        The realm additionally pays RMM-mediated stage-2 handling,
        priced world switches on every syscall's trap path under
        emulation, and heavy emulated-virtio I/O — which is what makes
        the mixed-operation DBMS workload the paper's worst CCA case.
        """
        return CostProfile(
            name="cca",
            cpu_multiplier=1.21,
            mem_alloc_multiplier=1.42,
            mem_access_multiplier=1.28,
            io_read_multiplier=12.0,
            io_write_multiplier=12.0,
            syscall_multiplier=2.6,
            mem_encrypted=True,
            mem_integrity=True,
            mem_miss_extra_ns=24.0,
            syscall_transition_ns=1_800.0,   # emulated trap path intrusion
            halt_transition_ns=2.0 * self.rmm.RMI_COST_NS,
            io_transition_ns=self.rmm.RSI_COST_NS,
            io_bounce_per_byte_ns=0.5,
            cache_hit_bonus_probability=0.0,
            cache_hit_bonus=0.0,
            noise_sigma=self.fvp.noise_sigma,
            startup_ns=9_500_000.0,
            simulator_multiplier=self.fvp.slowdown,
        )

    def normal_profile(self) -> CostProfile:
        """The non-secure VM inside the same FVP instance.

        Near-native multipliers, but the same simulator slowdown and
        elevated (though smaller) noise: normal-VM whiskers in Fig. 8
        are shorter than realm whiskers but longer than bare metal.
        """
        return CostProfile(
            name="cca-normal",
            noise_sigma=self.fvp.noise_sigma * 0.55,
            simulator_multiplier=self.fvp.slowdown,
        )

    def attestation_device(self):
        raise TeeUnsupportedError(
            "CCA attestation needs hardware the FVP simulator lacks; "
            "the paper's Fig. 5 covers TDX and SEV-SNP only"
        )
