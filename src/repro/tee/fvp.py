"""ARM Fixed Virtual Platform (FVP) simulation layer.

No CCA silicon was commercially available when the paper was written,
so — like the paper — the CCA platform here runs inside a software
simulator.  ARM claims FVP speed is "comparable to the real hardware";
the paper's measurements suggest the simulation layer still inflates
and destabilises timings, and explicitly warns that only *relative*
comparisons within one simulator are sound.

This module models that layer: a uniform slowdown factor applied to
everything executed inside the FVP (secure realm *and* normal VM, so
ratios between them are not distorted by the layer itself), plus
substantially higher run-to-run variance, which is what gives Fig. 8
its long whiskers.  It also models the tap/tun networking workaround
§III-B describes: host↔FVP traffic crosses two extra hops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TeeError


@dataclass
class FvpSimulator:
    """The FVP wrapper every CCA VM runs inside.

    Parameters
    ----------
    slowdown:
        Uniform multiplicative slowdown of simulated execution.
    noise_sigma:
        Lognormal sigma of per-run timing noise inside the simulator
        (well above bare-metal values).
    tap_tun_hops:
        Extra network hops between host and VM (the paper needed a
        mix of tap and tun devices to get FVP networking to work).
    """

    slowdown: float = 9.0
    noise_sigma: float = 0.11
    tap_tun_hops: int = 2
    HOP_LATENCY_NS: float = 160_000.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise TeeError(f"FVP cannot be faster than hardware: {self.slowdown}")
        if self.tap_tun_hops < 0:
            raise TeeError(f"negative hop count: {self.tap_tun_hops}")

    def network_extra_ns(self) -> float:
        """Added latency of the tap/tun forwarding chain."""
        return self.tap_tun_hops * self.HOP_LATENCY_NS
