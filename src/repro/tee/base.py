"""Common TEE platform interface.

A :class:`TeePlatform` knows how to build the host machine it runs on,
how to price secure and normal execution on that host (via
:class:`~repro.guestos.context.CostProfile`), and how to create VMs.
Adding a new TEE to the reproduction — like adding one to ConfBench
itself — means implementing this interface and registering it in
:mod:`repro.tee.registry`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import VmError
from repro.guestos.context import NATIVE_PROFILE, CostProfile
from repro.hw.machine import Machine
from repro.sim.rng import SimRng


@dataclass
class VmConfig:
    """Requested VM shape.

    ``secure`` selects the confidential variant (TD / SNP guest /
    realm); both variants boot from the same image so that workload
    execution environments match, as §III-B requires ("every VM on a
    host must have the same file locations, libraries, interpreters").
    """

    vcpus: int = 2
    memory_mib: int = 4096
    secure: bool = True
    image: str = "ubuntu-cloud"

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise VmError(f"need at least one vcpu, got {self.vcpus}")
        if self.memory_mib < 128:
            raise VmError(f"need at least 128 MiB, got {self.memory_mib}")


@dataclass
class PlatformInfo:
    """Static facts about a platform, used by the gateway and docs."""

    name: str
    display_name: str
    vendor: str
    is_simulated: bool
    supports_attestation: bool
    supports_perf_counters: bool
    description: str = ""


class TeePlatform(abc.ABC):
    """One TEE technology on one host machine."""

    #: short machine-readable name, e.g. ``"tdx"``
    name: str = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = SimRng(seed, f"platform/{self.name}")
        self._vm_counter = 0

    # -- static description -------------------------------------------

    @abc.abstractmethod
    def info(self) -> PlatformInfo:
        """Static platform facts."""

    # -- cost modelling -------------------------------------------------

    @abc.abstractmethod
    def build_machine(self) -> Machine:
        """A fresh host machine of the right shape."""

    @abc.abstractmethod
    def secure_profile(self) -> CostProfile:
        """Cost profile of the confidential VM variant."""

    def normal_profile(self) -> CostProfile:
        """Cost profile of the non-confidential VM variant.

        Defaults to the native passthrough.  Platforms that wrap both
        VM kinds in a software layer (CCA's FVP) override this so
        absolute times are layered even for the normal VM.
        """
        return NATIVE_PROFILE

    def profile_for(self, secure: bool) -> CostProfile:
        """Profile for a VM of the requested kind."""
        return self.secure_profile() if secure else self.normal_profile()

    # -- VM factory -------------------------------------------------------

    def create_vm(self, config: VmConfig | None = None) -> "Vm":
        """Create (but do not boot) a VM on this platform."""
        from repro.tee.vm import Vm  # local import to avoid a cycle

        self._vm_counter += 1
        return Vm(
            vm_id=f"{self.name}-vm{self._vm_counter}",
            platform=self,
            config=config if config is not None else VmConfig(),
        )

    # -- attestation hooks --------------------------------------------------

    def attestation_device(self):
        """The guest-visible attestation device, or raise.

        Overridden by TDX (TDREPORT via TDCALL) and SEV-SNP (AMD-SP
        report requests).  The base implementation raises, matching
        platforms without attestation support.
        """
        from repro.errors import TeeUnsupportedError

        raise TeeUnsupportedError(
            f"platform {self.name!r} does not expose an attestation device"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


@dataclass
class TransitionStats:
    """Counts of TEE-specific transition events (per platform object)."""

    tdcalls: int = 0
    seamcalls: int = 0
    seamrets: int = 0
    vmexits: int = 0
    rmi_calls: int = 0
    rsi_calls: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    _FIELDS = ("tdcalls", "seamcalls", "seamrets", "vmexits",
               "rmi_calls", "rsi_calls")

    def record(self, name: str, count: int = 1) -> None:
        """Record ``count`` transition events of one kind in one call.

        ``name`` is either a declared field (``tdcalls``, ``vmexits``,
        ...) or a free-form key folded into :attr:`extra` (interface
        leaf names like ``TDG.VP.VMCALL``).  Firmware models call this
        once per *batch* of transitions rather than once per event, so
        a batched run's bookkeeping costs one increment, not N.
        """
        if count < 0:
            raise VmError(f"negative transition count: {count}")
        if name in self._FIELDS:
            setattr(self, name, getattr(self, name) + count)
        else:
            self.extra[name] = self.extra.get(name, 0) + count

    def total(self) -> int:
        """All declared transition events (``extra`` keys excluded —
        they re-count events already tallied in a declared field)."""
        return sum(getattr(self, name) for name in self._FIELDS)

    def as_dict(self) -> dict[str, int]:
        """JSON-able counts: declared fields first, then extras."""
        payload = {name: getattr(self, name) for name in self._FIELDS}
        payload.update(sorted(self.extra.items()))
        return payload
