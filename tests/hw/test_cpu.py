"""Tests for the CPU and cache models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HardwareError
from repro.hw.cpu import CacheModel, CpuModel
from repro.hw.perfcounters import PerfCounters


class TestCacheModel:
    def test_small_working_set_keeps_base_hit_rate(self):
        cache = CacheModel(size_bytes=1024, base_hit_rate=0.95)
        assert cache.hit_rate(512) == 0.95

    def test_zero_working_set(self):
        cache = CacheModel(base_hit_rate=0.9)
        assert cache.hit_rate(0) == 0.9

    def test_oversized_working_set_decays(self):
        cache = CacheModel(size_bytes=1024, base_hit_rate=0.95)
        assert cache.hit_rate(10 * 1024) < 0.95

    def test_hit_rate_never_below_floor(self):
        cache = CacheModel(size_bytes=1024)
        assert cache.hit_rate(10**9) >= 0.35

    def test_access_cost_all_hits_cheaper_than_misses(self):
        cache = CacheModel()
        assert cache.access_cost_ns(1000, 1.0) < cache.access_cost_ns(1000, 0.0)

    def test_access_cost_rejects_negative(self):
        with pytest.raises(HardwareError):
            CacheModel().access_cost_ns(-1, 0.5)

    @given(ws=st.integers(min_value=0, max_value=2**40))
    def test_hit_rate_bounded(self, ws):
        """Property: hit rate always within [0, 1]."""
        rate = CacheModel().hit_rate(ws)
        assert 0.0 <= rate <= 1.0

    @given(
        small=st.integers(min_value=0, max_value=2**30),
        extra=st.integers(min_value=0, max_value=2**30),
    )
    def test_hit_rate_monotonically_nonincreasing(self, small, extra):
        """Property: bigger working sets never improve the hit rate."""
        cache = CacheModel()
        assert cache.hit_rate(small + extra) <= cache.hit_rate(small)


class TestCpuModel:
    def test_execute_advances_counters(self):
        cpu = CpuModel()
        counters = PerfCounters()
        cpu.execute(10_000, counters, memory_references=100)
        assert counters.instructions == 10_000
        assert counters.cycles > 0
        assert counters.cache_references == 100

    def test_execute_returns_positive_time(self):
        cpu = CpuModel()
        assert cpu.execute(1000, PerfCounters()) > 0

    def test_zero_instructions_zero_cost(self):
        cpu = CpuModel()
        assert cpu.execute(0, PerfCounters()) == 0.0

    def test_more_instructions_take_longer(self):
        cpu = CpuModel()
        short = cpu.execute(1_000, PerfCounters())
        long = cpu.execute(100_000, PerfCounters())
        assert long > short

    def test_faster_clock_is_faster(self):
        slow = CpuModel(frequency_ghz=1.0)
        fast = CpuModel(frequency_ghz=4.0)
        assert fast.execute(10_000, PerfCounters()) < slow.execute(
            10_000, PerfCounters()
        )

    def test_memory_bound_work_slower(self):
        cpu = CpuModel()
        lean = cpu.execute(10_000, PerfCounters(), memory_references=0)
        heavy = cpu.execute(
            10_000,
            PerfCounters(),
            memory_references=10_000,
            working_set_bytes=10 * cpu.cache.size_bytes,
        )
        assert heavy > lean

    def test_hit_rate_override_changes_misses(self):
        cpu = CpuModel()
        good, bad = PerfCounters(), PerfCounters()
        cpu.execute(1000, good, memory_references=1000, hit_rate_override=1.0)
        cpu.execute(1000, bad, memory_references=1000, hit_rate_override=0.0)
        assert good.cache_misses == 0
        assert bad.cache_misses == 1000

    def test_better_cache_is_faster(self):
        cpu = CpuModel()
        fast = cpu.execute(1000, PerfCounters(), memory_references=5000,
                           hit_rate_override=1.0)
        slow = cpu.execute(1000, PerfCounters(), memory_references=5000,
                           hit_rate_override=0.5)
        assert fast < slow

    def test_rejects_negative_instructions(self):
        with pytest.raises(HardwareError):
            CpuModel().execute(-1, PerfCounters())

    def test_rejects_negative_memory_references(self):
        with pytest.raises(HardwareError):
            CpuModel().execute(10, PerfCounters(), memory_references=-1)

    def test_rejects_bad_frequency(self):
        with pytest.raises(HardwareError):
            CpuModel(frequency_ghz=0)

    def test_rejects_bad_ipc(self):
        with pytest.raises(HardwareError):
            CpuModel(base_ipc=-1)

    def test_branch_counters_populated(self):
        cpu = CpuModel(branch_fraction=0.5, branch_miss_rate=0.1)
        counters = PerfCounters()
        cpu.execute(10_000, counters)
        assert counters.branch_instructions == 5_000
        assert counters.branch_misses == 500

    @given(instructions=st.integers(min_value=0, max_value=10**9))
    def test_cost_nonnegative(self, instructions):
        """Property: execution cost is never negative."""
        assert CpuModel().execute(instructions, PerfCounters()) >= 0.0
