"""Tests for memory, disk and NIC cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HardwareError
from repro.hw.disk import DiskModel
from repro.hw.memory import PAGE_SIZE, MemoryModel
from repro.hw.nic import NicModel, lan_path, wan_path
from repro.hw.perfcounters import PerfCounters
from repro.sim.rng import SimRng


class TestMemoryModel:
    def test_allocation_counts_page_faults(self):
        memory = MemoryModel()
        counters = PerfCounters()
        memory.allocate(10 * PAGE_SIZE, counters)
        assert counters.page_faults == 10

    def test_partial_page_rounds_up(self):
        memory = MemoryModel()
        counters = PerfCounters()
        memory.allocate(PAGE_SIZE + 1, counters)
        assert counters.page_faults == 2

    def test_encrypted_allocation_costs_more(self):
        memory = MemoryModel()
        plain = memory.allocate(1 << 20, PerfCounters())
        encrypted = memory.allocate(1 << 20, PerfCounters(), encrypted=True)
        assert encrypted > plain

    def test_integrity_costs_even_more(self):
        memory = MemoryModel()
        encrypted = memory.allocate(1 << 20, PerfCounters(), encrypted=True)
        both = memory.allocate(1 << 20, PerfCounters(), encrypted=True,
                               integrity=True)
        assert both > encrypted

    def test_copy_scales_with_size(self):
        memory = MemoryModel()
        small = memory.copy(1 << 10, PerfCounters())
        large = memory.copy(1 << 20, PerfCounters())
        assert large > small * 100

    def test_copy_rejects_negative(self):
        with pytest.raises(HardwareError):
            MemoryModel().copy(-1, PerfCounters())

    def test_allocate_rejects_negative(self):
        with pytest.raises(HardwareError):
            MemoryModel().allocate(-1, PerfCounters())

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(HardwareError):
            MemoryModel(bandwidth_gbps=0)

    @given(nbytes=st.integers(min_value=0, max_value=2**30))
    def test_costs_nonnegative(self, nbytes):
        """Property: memory costs are never negative."""
        memory = MemoryModel()
        assert memory.allocate(nbytes, PerfCounters()) >= 0
        assert memory.copy(nbytes, PerfCounters()) >= 0


class TestDiskModel:
    def test_read_has_fixed_latency_floor(self):
        disk = DiskModel(read_latency_us=100.0)
        assert disk.read(0) == pytest.approx(100_000.0)

    def test_write_cheaper_latency_than_read_by_default(self):
        disk = DiskModel()
        assert disk.write(0) < disk.read(0)

    def test_bandwidth_term_scales(self):
        disk = DiskModel()
        assert disk.read(1 << 20) > disk.read(0)

    def test_rejects_negative_sizes(self):
        disk = DiskModel()
        with pytest.raises(HardwareError):
            disk.read(-1)
        with pytest.raises(HardwareError):
            disk.write(-1)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(HardwareError):
            DiskModel(read_bandwidth_mbps=0)

    @given(nbytes=st.integers(min_value=0, max_value=2**32))
    def test_read_monotone_in_size(self, nbytes):
        """Property: reading more bytes never costs less."""
        disk = DiskModel()
        assert disk.read(nbytes + 4096) >= disk.read(nbytes)


class TestNicModel:
    def test_round_trip_includes_rtt(self):
        nic = NicModel(rtt_ms=10.0, jitter_sigma=0.0)
        assert nic.round_trip(0) == pytest.approx(10e6)

    def test_payload_adds_transfer_time(self):
        nic = NicModel(jitter_sigma=0.0)
        assert nic.round_trip(1 << 20) > nic.round_trip(0)

    def test_jitter_applies_with_rng(self):
        nic = NicModel(rtt_ms=1.0, jitter_sigma=0.5)
        rng = SimRng(1)
        samples = {nic.round_trip(0, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_no_rng_is_deterministic(self):
        nic = NicModel()
        assert nic.round_trip(100) == nic.round_trip(100)

    def test_rejects_negative_payload(self):
        with pytest.raises(HardwareError):
            NicModel().round_trip(-1)

    def test_rejects_negative_rtt(self):
        with pytest.raises(HardwareError):
            NicModel(rtt_ms=-1)

    def test_wan_slower_than_lan(self):
        assert wan_path().round_trip(4096) > lan_path().round_trip(4096)
