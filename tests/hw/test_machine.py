"""Tests for machine assembly and perf counters."""

import pytest

from repro.errors import HardwareError
from repro.hw.machine import (
    MACHINE_FACTORIES,
    epyc_9124,
    fvp_model,
    machine_by_name,
    xeon_gold_5515,
)
from repro.hw.perfcounters import PerfCounters


class TestPerfCounters:
    def test_starts_at_zero(self):
        counters = PerfCounters()
        assert counters.instructions == 0
        assert counters.vm_transitions == 0

    def test_add_accumulates(self):
        a = PerfCounters(instructions=10, cycles=5)
        b = PerfCounters(instructions=1, cache_misses=2)
        a.add(b)
        assert a.instructions == 11
        assert a.cycles == 5
        assert a.cache_misses == 2

    def test_snapshot_is_independent(self):
        counters = PerfCounters(instructions=5)
        snap = counters.snapshot()
        counters.instructions = 10
        assert snap.instructions == 5

    def test_delta(self):
        counters = PerfCounters(instructions=100)
        snap = counters.snapshot()
        counters.instructions = 150
        counters.cache_misses = 3
        delta = counters.delta(snap)
        assert delta.instructions == 50
        assert delta.cache_misses == 3

    def test_delta_rejects_backwards_counters(self):
        counters = PerfCounters(instructions=100)
        snap = counters.snapshot()
        counters.instructions = 50
        with pytest.raises(HardwareError):
            counters.delta(snap)

    def test_as_dict_round_trips(self):
        counters = PerfCounters(instructions=7, vm_transitions=2)
        data = counters.as_dict()
        assert data["instructions"] == 7
        assert data["vm_transitions"] == 2
        assert PerfCounters(**data).instructions == 7

    def test_cache_miss_rate(self):
        counters = PerfCounters(cache_references=100, cache_misses=25)
        assert counters.cache_miss_rate() == 0.25

    def test_cache_miss_rate_no_references(self):
        assert PerfCounters().cache_miss_rate() == 0.0

    def test_ipc(self):
        counters = PerfCounters(instructions=200, cycles=100)
        assert counters.ipc() == 2.0

    def test_ipc_no_cycles(self):
        assert PerfCounters().ipc() == 0.0


class TestMachineFactories:
    def test_tdx_host_shape(self):
        machine = xeon_gold_5515()
        assert machine.spec.vendor == "intel"
        assert machine.spec.cores == 8
        assert machine.spec.frequency_ghz == pytest.approx(3.2)

    def test_sev_host_shape(self):
        machine = epyc_9124()
        assert machine.spec.vendor == "amd"
        assert machine.spec.cores == 16

    def test_fvp_shape(self):
        machine = fvp_model()
        assert machine.spec.vendor == "arm"

    def test_factories_make_fresh_instances(self):
        assert xeon_gold_5515() is not xeon_gold_5515()

    def test_machine_by_name(self):
        for name in MACHINE_FACTORIES:
            assert machine_by_name(name).spec.name == name

    def test_machine_by_name_unknown(self):
        with pytest.raises(KeyError):
            machine_by_name("cray-1")

    def test_reset_counters(self):
        machine = xeon_gold_5515()
        machine.cpu.execute(100, machine.counters)
        assert machine.counters.instructions > 0
        machine.reset_counters()
        assert machine.counters.instructions == 0
