"""Tests for the §VI execution units: SGX enclaves and confidential
containers."""

import statistics

import pytest

from repro.core.launcher import FunctionLauncher
from repro.errors import TeeError
from repro.tee import (
    ConfidentialContainerPlatform,
    SgxEnclavePlatform,
    platform_by_name,
)
from repro.tee.sgx import EPC_BYTES
from repro.workloads.faas import workload_by_name


def ratio(platform_name, workload_name, lang="lua", trials=6, seed=4):
    platform = platform_by_name(platform_name, seed=seed)
    secure = platform.create_vm()
    secure.boot()
    normal = platform.create_vm()
    normal.config.secure = False
    normal.boot()
    body = FunctionLauncher.for_language(lang).launch(
        workload_by_name(workload_name)
    )
    s = statistics.fmean(
        secure.run(body, name=workload_name, trial=i).elapsed_ns
        for i in range(trials)
    )
    n = statistics.fmean(
        normal.run(body, name=workload_name, trial=i).elapsed_ns
        for i in range(trials)
    )
    return s / n


class TestSgxPlatform:
    def test_registered(self):
        assert isinstance(platform_by_name("sgx"), SgxEnclavePlatform)

    def test_info(self):
        info = SgxEnclavePlatform().info()
        assert "enclave" in info.display_name.lower()
        assert not info.is_simulated

    def test_tiny_epc_rejected(self):
        with pytest.raises(TeeError):
            SgxEnclavePlatform(epc_bytes=1024)

    def test_epc_pressure(self):
        platform = SgxEnclavePlatform()
        assert platform.epc_pressure(EPC_BYTES // 2) == 0.0
        assert platform.epc_pressure(2 * EPC_BYTES) == pytest.approx(0.5)

    def test_every_syscall_pays_an_ocall(self):
        """The first-generation tax: regular syscalls exit the enclave."""
        profile = SgxEnclavePlatform().secure_profile()
        assert profile.syscall_transition_ns > 0
        # ... unlike second-generation VM TEEs
        assert platform_by_name("tdx").secure_profile().syscall_transition_ns == 0

    def test_syscall_heavy_work_suffers_most(self):
        """Classic SGX result: logging >> compute overhead."""
        assert ratio("sgx", "logging") > 3.0
        assert ratio("sgx", "cpustress") < 1.4

    def test_sgx_worse_than_tdx_on_syscalls(self):
        """Second-generation TEEs fixed the syscall path (§I)."""
        assert ratio("sgx", "logging") > 2.5 * ratio("tdx", "logging")

    def test_memory_pressure_beyond_epc(self):
        assert ratio("sgx", "memstress") > 1.5

    def test_enclave_creation_charged_as_startup(self):
        platform = SgxEnclavePlatform(seed=1)
        unit = platform.create_vm()
        unit.boot()
        body = FunctionLauncher.for_language("lua").launch(
            workload_by_name("factors")
        )
        result = unit.run(body, name="factors")
        # the ~180 ms enclave create+measure is excluded from timing
        assert result.total_ns - result.elapsed_ns > 100e6


class TestConfidentialContainers:
    def test_registered(self):
        assert isinstance(platform_by_name("coco"),
                          ConfidentialContainerPlatform)

    def test_image_metadata(self):
        platform = ConfidentialContainerPlatform(seed=1)
        assert platform.image.size_bytes > 0
        assert platform.image.digest.startswith("sha256:")

    def test_bad_image_size_rejected(self):
        with pytest.raises(TeeError):
            ConfidentialContainerPlatform(image_size_bytes=0)

    def test_cold_start_unpractical(self):
        """§V: confidential-container serverless has 'unpractical'
        overheads — dominated by sandbox cold start."""
        platform = ConfidentialContainerPlatform()
        confidential = platform.cold_start_ns(secure=True)
        plain = platform.cold_start_ns(secure=False)
        assert confidential > 20 * plain
        assert confidential > 1e9   # seconds, not milliseconds

    def test_steady_state_io_worse_than_plain_tdx_vm(self):
        """virtio-fs + agent hop: container I/O costs more than the
        same workload in a plain TDX VM."""
        assert ratio("coco", "iostress") > ratio("tdx", "iostress") * 1.3

    def test_steady_state_compute_near_tdx(self):
        assert abs(ratio("coco", "cpustress") - ratio("tdx", "cpustress")) < 0.12

    def test_normal_variant_is_plain_container(self):
        profile = ConfidentialContainerPlatform().normal_profile()
        assert profile.name == "container"
        assert not profile.mem_encrypted
        assert profile.startup_ns < 0.5e9
