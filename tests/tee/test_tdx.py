"""Tests for the TDX module simulator."""

import pytest

from repro.errors import TeeError
from repro.tee.tdx import (
    GOOD_FIRMWARE,
    OLD_FIRMWARE,
    TdxModule,
    TdxPlatform,
)


class TestTdxModule:
    def test_tdcall_counts(self):
        module = TdxModule()
        module.tdcall("TDG.VP.VMCALL")
        module.tdcall("TDG.VP.VMCALL")
        assert module.stats.tdcalls == 2
        assert module.stats.extra["TDG.VP.VMCALL"] == 2

    def test_seamcall_and_seamret(self):
        module = TdxModule()
        cost_call = module.seamcall("TDH.VP.ENTER")
        cost_ret = module.seamret()
        assert module.stats.seamcalls == 1
        assert module.stats.seamrets == 1
        assert cost_ret < cost_call

    def test_transition_cost_positive(self):
        assert TdxModule().tdcall("X") > 0

    def test_old_firmware_is_10x_slower(self):
        """The paper saw ~10x runtime boosts from the firmware upgrade."""
        good = TdxModule(GOOD_FIRMWARE)
        old = TdxModule(OLD_FIRMWARE)
        assert old.transition_cost_ns == pytest.approx(
            good.transition_cost_ns * 10.0
        )

    def test_unknown_firmware_rejected(self):
        with pytest.raises(TeeError):
            TdxModule("TDX_9.9.9")


class TestTdReport:
    def test_report_binds_report_data(self):
        module = TdxModule()
        report = module.generate_tdreport(b"nonce", "td-1")
        assert report.report_data.startswith(b"nonce")
        assert len(report.report_data) == 64

    def test_report_data_size_limit(self):
        module = TdxModule()
        with pytest.raises(TeeError):
            module.generate_tdreport(b"x" * 65, "td-1")

    def test_report_measurements_stable_per_identity(self):
        module = TdxModule()
        a = module.generate_tdreport(b"", "td-1")
        b = module.generate_tdreport(b"", "td-1")
        c = module.generate_tdreport(b"", "td-2")
        assert a.mrtd == b.mrtd
        assert a.mrtd != c.mrtd

    def test_report_has_four_rtmrs(self):
        report = TdxModule().generate_tdreport(b"", "td-1")
        assert len(report.rtmr) == 4
        assert len(set(report.rtmr)) == 4

    def test_report_carries_firmware_version(self):
        report = TdxModule(GOOD_FIRMWARE).generate_tdreport(b"", "td")
        assert report.tee_tcb_svn == GOOD_FIRMWARE

    def test_generation_is_a_tdcall(self):
        module = TdxModule()
        module.generate_tdreport(b"", "td")
        assert module.stats.tdcalls == 1


class TestTdxPlatformFirmware:
    def test_platform_defaults_to_good_firmware(self):
        assert TdxPlatform().module.firmware == GOOD_FIRMWARE

    def test_old_firmware_inflates_transitions(self):
        good = TdxPlatform(firmware=GOOD_FIRMWARE).secure_profile()
        old = TdxPlatform(firmware=OLD_FIRMWARE).secure_profile()
        assert old.halt_transition_ns == pytest.approx(
            good.halt_transition_ns * 10.0
        )

    def test_old_firmware_slows_transition_heavy_runs(self):
        def time_with(firmware):
            platform = TdxPlatform(seed=3, firmware=firmware)
            vm = platform.create_vm()
            vm.boot()
            return vm.run(lambda k: k.pipe_ping_pong(100), name="pp").elapsed_ns

        assert time_with(OLD_FIRMWARE) > time_with(GOOD_FIRMWARE) * 3
