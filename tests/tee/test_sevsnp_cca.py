"""Tests for the SEV-SNP RMP/AMD-SP and CCA RMM simulators."""

import pytest

from repro.errors import TeeError
from repro.tee.cca import (
    CcaPlatform,
    RealmManagementMonitor,
    RealmState,
    StageTwoTranslation,
)
from repro.tee.fvp import FvpSimulator
from repro.tee.sevsnp import (
    AmdSecureProcessor,
    PageState,
    ReverseMapTable,
    SevSnpPlatform,
    SnpReportRequest,
    Vmpl,
)


class TestReverseMapTable:
    def test_untracked_page_is_hypervisor_owned(self):
        assert ReverseMapTable().state_of(0x1000) is PageState.HYPERVISOR

    def test_assign_then_validate(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        assert rmp.state_of(0x1000) is PageState.GUEST_INVALID
        rmp.pvalidate(0x1000, asid=5)
        assert rmp.state_of(0x1000) is PageState.GUEST_VALID

    def test_use_before_validate_rejected(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        with pytest.raises(TeeError):
            rmp.check_access(0x1000, asid=5)

    def test_double_validate_rejected(self):
        """Replay protection: PVALIDATE twice is the classic SNP attack."""
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        rmp.pvalidate(0x1000, asid=5)
        with pytest.raises(TeeError):
            rmp.pvalidate(0x1000, asid=5)

    def test_cross_asid_access_rejected(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        rmp.pvalidate(0x1000, asid=5)
        with pytest.raises(TeeError):
            rmp.check_access(0x1000, asid=6)

    def test_owner_access_allowed_and_counted(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        rmp.pvalidate(0x1000, asid=5)
        assert rmp.check_access(0x1000, asid=5) > 0
        assert rmp.checks == 1

    def test_validate_unassigned_rejected(self):
        with pytest.raises(TeeError):
            ReverseMapTable().pvalidate(0x2000, asid=1)

    def test_reassign_validated_page_rejected(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        rmp.pvalidate(0x1000, asid=5)
        with pytest.raises(TeeError):
            rmp.assign(0x1000, asid=6)

    def test_shared_pages_accessible_across_asids(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        rmp.share(0x1000, asid=5)
        assert rmp.state_of(0x1000) is PageState.SHARED
        rmp.check_access(0x1000, asid=6)   # no error: shared memory

    def test_validate_shared_page_rejected(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5)
        rmp.share(0x1000, asid=5)
        with pytest.raises(TeeError):
            rmp.pvalidate(0x1000, asid=5)

    def test_vmpl_recorded(self):
        rmp = ReverseMapTable()
        rmp.assign(0x1000, asid=5, vmpl=Vmpl.VMPL2)
        assert rmp._entries[0x1000].vmpl is Vmpl.VMPL2


class TestAmdSp:
    def test_report_request_shape(self):
        sp = AmdSecureProcessor()
        body = sp.request_report(SnpReportRequest(report_data=b"abc"), "guest-1")
        assert body["report_data"].startswith(b"abc")
        assert len(body["report_data"]) == 64
        assert body["vmpl"] == 0
        assert body["chip_id"] == sp.chip_id

    def test_report_data_limit(self):
        sp = AmdSecureProcessor()
        with pytest.raises(TeeError):
            sp.request_report(SnpReportRequest(report_data=b"x" * 65), "g")

    def test_measurement_stable_per_guest(self):
        sp = AmdSecureProcessor()
        assert sp.measurement_for("g1") == sp.measurement_for("g1")
        assert sp.measurement_for("g1") != sp.measurement_for("g2")

    def test_vmpl_passthrough(self):
        sp = AmdSecureProcessor()
        body = sp.request_report(
            SnpReportRequest(report_data=b"", vmpl=Vmpl.VMPL3), "g"
        )
        assert body["vmpl"] == 3


class TestRmm:
    def test_realm_lifecycle(self):
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        assert realm.state is RealmState.NEW
        rmm.rmi_granule_delegate(realm.rid, 1024)
        assert realm.granules == 1024
        rmm.rmi_realm_activate(realm.rid)
        assert realm.state is RealmState.ACTIVE
        rmm.rmi_realm_destroy(realm.rid)
        assert realm.state is RealmState.DESTROYED
        assert realm.granules == 0

    def test_double_activate_rejected(self):
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        rmm.rmi_realm_activate(realm.rid)
        with pytest.raises(TeeError):
            rmm.rmi_realm_activate(realm.rid)

    def test_destroy_twice_rejected(self):
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        rmm.rmi_realm_destroy(realm.rid)
        with pytest.raises(TeeError):
            rmm.rmi_realm_destroy(realm.rid)

    def test_unknown_realm_rejected(self):
        with pytest.raises(TeeError):
            RealmManagementMonitor().rmi_realm_activate(99)

    def test_attestation_token_unsigned_on_fvp(self):
        """FVP lacks signing hardware — token comes back unsigned."""
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        rmm.rmi_realm_activate(realm.rid)
        token, cost = rmm.rsi_attestation_token(realm.rid, b"nonce")
        assert token["signed"] is False
        assert token["challenge"].startswith(b"nonce")
        assert cost > 0

    def test_attestation_token_requires_active_realm(self):
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        with pytest.raises(TeeError):
            rmm.rsi_attestation_token(realm.rid, b"n")

    def test_challenge_limit(self):
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        rmm.rmi_realm_activate(realm.rid)
        with pytest.raises(TeeError):
            rmm.rsi_attestation_token(realm.rid, b"x" * 65)

    def test_call_stats(self):
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        rmm.rmi_realm_activate(realm.rid)
        rmm.rsi_attestation_token(realm.rid, b"")
        assert rmm.stats.rmi_calls == 2
        assert rmm.stats.rsi_calls == 1

    def test_ipa_state_set_scales_with_pages(self):
        rmm = RealmManagementMonitor()
        realm, _ = rmm.rmi_realm_create("r1")
        rmm.rmi_realm_activate(realm.rid)
        small = rmm.rsi_ipa_state_set(realm.rid, 1)
        large = rmm.rsi_ipa_state_set(realm.rid, 1000)
        assert large > small


class TestStageTwo:
    def test_overhead_scales_with_accesses(self):
        stage2 = StageTwoTranslation()
        assert stage2.access_overhead_ns(10_000) > stage2.access_overhead_ns(10)

    def test_zero_accesses_zero_cost(self):
        assert StageTwoTranslation().access_overhead_ns(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(TeeError):
            StageTwoTranslation().access_overhead_ns(-1)


class TestFvp:
    def test_fvp_cannot_be_faster_than_hardware(self):
        with pytest.raises(TeeError):
            FvpSimulator(slowdown=0.5)

    def test_tap_tun_latency(self):
        fvp = FvpSimulator(tap_tun_hops=2)
        assert fvp.network_extra_ns() == pytest.approx(2 * fvp.HOP_LATENCY_NS)

    def test_negative_hops_rejected(self):
        with pytest.raises(TeeError):
            FvpSimulator(tap_tun_hops=-1)

    def test_cca_platform_uses_custom_fvp(self):
        fvp = FvpSimulator(slowdown=20.0)
        platform = CcaPlatform(fvp=fvp)
        assert platform.secure_profile().simulator_multiplier == 20.0


class TestSnpPlatformWiring:
    def test_platform_has_rmp_and_sp(self):
        platform = SevSnpPlatform()
        assert isinstance(platform.rmp, ReverseMapTable)
        assert isinstance(platform.amd_sp, AmdSecureProcessor)
