"""Tests for VM lifecycle and the execution engine."""

import pytest

from repro.errors import VmError
from repro.sim.ledger import CostCategory
from repro.tee import VmState, platform_by_name
from repro.tee.base import VmConfig


def booted_vm(platform_name="tdx", secure=True, seed=0):
    platform = platform_by_name(platform_name, seed=seed)
    vm = platform.create_vm(VmConfig(secure=secure))
    vm.boot()
    return vm


class TestVmConfig:
    def test_defaults(self):
        config = VmConfig()
        assert config.secure
        assert config.vcpus >= 1

    def test_rejects_zero_vcpus(self):
        with pytest.raises(VmError):
            VmConfig(vcpus=0)

    def test_rejects_tiny_memory(self):
        with pytest.raises(VmError):
            VmConfig(memory_mib=64)


class TestLifecycle:
    def test_created_then_booted(self):
        platform = platform_by_name("tdx")
        vm = platform.create_vm()
        assert vm.state is VmState.CREATED
        vm.boot()
        assert vm.state is VmState.BOOTED

    def test_double_boot_rejected(self):
        vm = booted_vm()
        with pytest.raises(VmError):
            vm.boot()

    def test_run_requires_boot(self):
        platform = platform_by_name("tdx")
        vm = platform.create_vm()
        with pytest.raises(VmError):
            vm.run(lambda k: None)

    def test_destroy_prevents_runs(self):
        vm = booted_vm()
        vm.destroy()
        assert vm.state is VmState.DESTROYED
        with pytest.raises(VmError):
            vm.run(lambda k: None)

    def test_double_destroy_rejected(self):
        vm = booted_vm()
        vm.destroy()
        with pytest.raises(VmError):
            vm.destroy()

    def test_secure_boot_slower_than_normal(self):
        """Launch measurement makes confidential boots slower."""
        platform = platform_by_name("tdx")
        secure = platform.create_vm(VmConfig(secure=True))
        normal = platform.create_vm(VmConfig(secure=False))
        assert secure.boot() > normal.boot()

    def test_bigger_secure_vm_boots_slower(self):
        platform = platform_by_name("tdx")
        small = platform.create_vm(VmConfig(secure=True, memory_mib=1024))
        large = platform.create_vm(VmConfig(secure=True, memory_mib=8192))
        assert large.boot() > small.boot()

    def test_vm_ids_unique_per_platform(self):
        platform = platform_by_name("tdx")
        assert platform.create_vm().vm_id != platform.create_vm().vm_id


class TestRunResults:
    def test_output_passed_through(self):
        vm = booted_vm()
        result = vm.run(lambda k: {"answer": 42}, name="probe")
        assert result.output == {"answer": 42}
        assert result.workload == "probe"
        assert result.platform == "tdx"
        assert result.secure

    def test_elapsed_positive_for_real_work(self):
        vm = booted_vm()
        result = vm.run(lambda k: k.pipe_ping_pong(5))
        assert result.elapsed_ns > 0
        assert result.elapsed_ms == pytest.approx(result.elapsed_ns / 1e6)

    def test_counters_delta_isolated_per_run(self):
        vm = booted_vm()
        first = vm.run(lambda k: k.pipe_ping_pong(5))
        second = vm.run(lambda k: k.pipe_ping_pong(5))
        assert first.counters.context_switches == 10
        assert second.counters.context_switches == 10
        assert vm.counters.context_switches == 20

    def test_ledger_breakdown_present(self):
        vm = booted_vm()
        result = vm.run(lambda k: k.sys_brk(1 << 20))
        assert result.ledger.get(CostCategory.MEM_ALLOC) > 0

    def test_to_dict_is_json_shaped(self):
        import json

        vm = booted_vm()
        result = vm.run(lambda k: "ok", name="probe")
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["workload"] == "probe"
        assert "perf" in payload
        assert "cost_breakdown" in payload

    def test_run_trials_count_and_independence(self):
        vm = booted_vm()
        results = vm.run_trials(lambda k: k.pipe_ping_pong(10), trials=10)
        assert len(results) == 10
        assert [r.trial for r in results] == list(range(10))
        times = {r.elapsed_ns for r in results}
        assert len(times) > 1   # noise makes trials differ

    def test_run_trials_rejects_zero(self):
        vm = booted_vm()
        with pytest.raises(VmError):
            vm.run_trials(lambda k: None, trials=0)

    def test_secure_flag_false_on_normal_vm(self):
        vm = booted_vm(secure=False)
        result = vm.run(lambda k: None)
        assert not result.secure


class TestSecureVsNormal:
    def test_secure_slower_on_transition_heavy_work(self):
        secure = booted_vm("tdx", secure=True, seed=1)
        normal = booted_vm("tdx", secure=False, seed=1)
        s = secure.run(lambda k: k.pipe_ping_pong(50), name="pp")
        n = normal.run(lambda k: k.pipe_ping_pong(50), name="pp")
        assert s.elapsed_ns > n.elapsed_ns
        assert s.counters.vm_transitions > 0
        assert n.counters.vm_transitions == 0

    def test_cca_normal_vm_still_simulated_slow(self):
        """Both CCA VM kinds sit inside FVP: slow in absolute terms."""
        cca_normal = booted_vm("cca", secure=False, seed=1)
        bare_normal = booted_vm("novm", secure=False, seed=1)
        c = cca_normal.run(lambda k: k.pipe_ping_pong(20), name="pp")
        b = bare_normal.run(lambda k: k.pipe_ping_pong(20), name="pp")
        assert c.elapsed_ns > b.elapsed_ns * 3
