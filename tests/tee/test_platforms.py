"""Tests for platform construction and the registry."""

import pytest

from repro.errors import NoSuchPlatformError, TeeUnsupportedError
from repro.guestos.context import CostProfile
from repro.tee import (
    CcaPlatform,
    NormalVmPlatform,
    SevSnpPlatform,
    TdxPlatform,
    available_platforms,
    platform_by_name,
)
from repro.tee.registry import register_platform, unregister_platform


class TestRegistry:
    def test_all_paper_platforms_available(self):
        names = available_platforms()
        for expected in ("tdx", "sev-snp", "cca", "novm"):
            assert expected in names

    def test_platform_by_name_builds_right_type(self):
        assert isinstance(platform_by_name("tdx"), TdxPlatform)
        assert isinstance(platform_by_name("sev-snp"), SevSnpPlatform)
        assert isinstance(platform_by_name("cca"), CcaPlatform)
        assert isinstance(platform_by_name("novm"), NormalVmPlatform)

    def test_unknown_platform_raises(self):
        with pytest.raises(NoSuchPlatformError):
            platform_by_name("sgx-classic")

    def test_register_and_unregister_custom_platform(self):
        class Custom(NormalVmPlatform):
            name = "custom"

        register_platform("custom", lambda seed: Custom(seed=seed))
        try:
            assert isinstance(platform_by_name("custom"), Custom)
        finally:
            unregister_platform("custom")
        with pytest.raises(NoSuchPlatformError):
            platform_by_name("custom")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_platform("tdx", lambda seed: TdxPlatform(seed=seed))

    def test_unregister_builtin_rejected(self):
        with pytest.raises(ValueError):
            unregister_platform("tdx")


class TestPlatformInfo:
    def test_tdx_info(self):
        info = TdxPlatform().info()
        assert info.supports_attestation
        assert info.supports_perf_counters
        assert not info.is_simulated
        assert info.vendor == "intel"

    def test_sev_info(self):
        info = SevSnpPlatform().info()
        assert info.supports_attestation
        assert info.vendor == "amd"

    def test_cca_info_matches_paper_constraints(self):
        info = CcaPlatform().info()
        assert info.is_simulated
        assert not info.supports_attestation   # FVP lacks hardware support
        assert not info.supports_perf_counters  # perf unusable in realms

    def test_novm_info(self):
        info = NormalVmPlatform().info()
        assert not info.supports_attestation


class TestProfiles:
    def test_every_secure_profile_encrypts_memory(self):
        for name in ("tdx", "sev-snp", "cca"):
            profile = platform_by_name(name).secure_profile()
            assert profile.mem_encrypted, name
            assert profile.mem_integrity, name

    def test_tdx_cpu_beats_sev_cpu(self):
        """Paper: TDX faster with CPU/memory intensive workloads."""
        tdx = TdxPlatform().secure_profile()
        sev = SevSnpPlatform().secure_profile()
        assert tdx.cpu_multiplier < sev.cpu_multiplier
        assert tdx.mem_alloc_multiplier < sev.mem_alloc_multiplier

    def test_sev_io_beats_tdx_io(self):
        """Paper: SEV-SNP faster with I/O tasks (TDX bounce buffers)."""
        tdx = TdxPlatform().secure_profile()
        sev = SevSnpPlatform().secure_profile()
        assert sev.io_bounce_per_byte_ns < tdx.io_bounce_per_byte_ns
        assert sev.io_write_multiplier < tdx.io_write_multiplier

    def test_cca_has_largest_overheads_and_noise(self):
        cca = CcaPlatform().secure_profile()
        for other in (TdxPlatform(), SevSnpPlatform()):
            profile = other.secure_profile()
            assert cca.cpu_multiplier > profile.cpu_multiplier
            assert cca.noise_sigma > profile.noise_sigma

    def test_cca_normal_vm_also_inside_simulator(self):
        cca = CcaPlatform()
        assert cca.normal_profile().simulator_multiplier == pytest.approx(
            cca.secure_profile().simulator_multiplier
        )

    def test_hardware_tees_have_no_simulator_layer(self):
        for name in ("tdx", "sev-snp"):
            assert platform_by_name(name).secure_profile().simulator_multiplier == 1.0

    def test_novm_profiles_are_passthrough(self):
        profile = NormalVmPlatform().secure_profile()
        assert profile.cpu_multiplier == 1.0
        assert profile.halt_transition_ns == 0.0

    def test_regular_syscalls_do_not_exit_on_hw_tees(self):
        """Syscalls stay in-guest on TDX/SNP; only halts and I/O exit."""
        for name in ("tdx", "sev-snp"):
            profile = platform_by_name(name).secure_profile()
            assert profile.syscall_transition_ns == 0.0
            assert profile.halt_transition_ns > 0.0
            assert profile.io_transition_ns > 0.0


class TestAttestationDevice:
    def test_cca_attestation_unsupported(self):
        with pytest.raises(TeeUnsupportedError):
            CcaPlatform().attestation_device()

    def test_base_platform_attestation_unsupported(self):
        with pytest.raises(TeeUnsupportedError):
            NormalVmPlatform().attestation_device()


class TestDeterminism:
    def test_same_seed_same_run_times(self):
        def run_once():
            platform = platform_by_name("tdx", seed=7)
            vm = platform.create_vm()
            vm.boot()
            return vm.run(lambda k: k.pipe_ping_pong(20), name="pp").elapsed_ns

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_with(seed):
            platform = platform_by_name("tdx", seed=seed)
            vm = platform.create_vm()
            vm.boot()
            return vm.run(lambda k: k.pipe_ping_pong(20), name="pp").elapsed_ns

        assert run_with(1) != run_with(2)


def test_profile_defaults_are_native():
    profile = CostProfile()
    assert profile.cpu_multiplier == 1.0
    assert not profile.mem_encrypted
    assert profile.simulator_multiplier == 1.0
