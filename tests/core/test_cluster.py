"""Unit tests for the cluster resilience layer's components.

Each class covers one module of :mod:`repro.core.cluster` in
isolation — fleet construction, node lifecycle, placement policy,
health probing, the brownout ladder, zone collateral, and the traffic
generator.  End-to-end gateway sweeps live in
``test_cluster_gateway.py``.
"""

import pytest

from repro.core.cluster import (
    DEFAULT_ZONES,
    BrownoutLevel,
    ClusterNode,
    HealthMonitor,
    NodeState,
    OverloadController,
    PlacementScheduler,
    TenantMix,
    TrafficGenerator,
    TrafficSpec,
    ZoneCollateral,
    build_fleet,
)
from repro.core.cluster.collateral import (
    CDN_TIER_NS,
    HOST_TIER_NS,
    ORIGIN_TIER_NS,
)
from repro.errors import GatewayError


class TestFleet:
    def test_deterministic_and_prefix_stable(self):
        eight = build_fleet(8, seed=3)
        twelve = build_fleet(12, seed=3)
        # adding hosts never changes the ones already built
        assert twelve[:8] == eight

    def test_zones_round_robin(self):
        fleet = build_fleet(6)
        per_zone = {zone: 0 for zone in DEFAULT_ZONES}
        for profile in fleet:
            per_zone[profile.zone] += 1
        assert set(per_zone.values()) == {2}

    def test_heterogeneous_beyond_three_hosts(self):
        fleet = build_fleet(4)
        assert len({p.generation for p in fleet}) == 3
        assert len({p.platform for p in fleet}) == 3
        assert all(0.85 <= p.speed <= 1.20 for p in fleet)

    def test_seed_changes_speeds_not_shapes(self):
        a, b = build_fleet(4, seed=0), build_fleet(4, seed=1)
        assert [p.cores for p in a] == [p.cores for p in b]
        assert [p.speed for p in a] != [p.speed for p in b]

    def test_validation(self):
        with pytest.raises(GatewayError):
            build_fleet(0)
        with pytest.raises(GatewayError):
            build_fleet(1, zones=())


class TestNode:
    def node(self):
        return ClusterNode(build_fleet(1)[0])

    def test_acquire_cold_then_warm_after_release(self):
        node = self.node()
        assert node.acquire("f", 512, secure=True) is True      # cold
        node.release("f", 512, secure=True)                     # stashes
        assert node.acquire("f", 512, secure=True) is False     # warm
        assert node.cold_boots == 1 and node.warm_starts == 1

    def test_release_without_stash_keeps_pool_empty(self):
        node = self.node()
        node.acquire("f", 512, secure=False)
        node.release("f", 512, secure=False, stash=False)
        assert node.warm_total == 0

    def test_can_fit_bounds_cores_and_memory(self):
        node = self.node()
        for _ in range(node.profile.cores):
            assert node.can_fit(1)
            node.acquire("f", 1, secure=False)
        assert not node.can_fit(1)                   # cores exhausted
        fresh = self.node()
        assert not fresh.can_fit(fresh.profile.memory_mib + 1)

    def test_warm_cap_bounds_pool(self):
        node = self.node()
        node.warm_cap = 2
        assert node.prewarm("a") and node.prewarm("b")
        assert not node.prewarm("c")

    def test_alive_at_and_slowdown_windows(self):
        node = self.node()
        assert node.alive_at(1e12)
        node.crashed_at_ns = 100.0
        assert node.alive_at(99.0) and not node.alive_at(100.0)
        node.degraded_window = (10.0, 20.0)
        assert node.slowdown_at(15.0, 3.0) == 3.0
        assert node.slowdown_at(20.0, 3.0) == 1.0    # end-exclusive


class TestPlacement:
    def nodes(self, count=6):
        return [ClusterNode(p) for p in build_fleet(count)]

    def test_platform_affinity_preferred(self):
        nodes = self.nodes()
        scheduler = PlacementScheduler(nodes)
        node = scheduler.place("sev-snp", secure=False, memory_mib=256)
        assert node.profile.platform == "sev-snp"
        assert scheduler.affinity_misses == 0

    def test_affinity_relaxes_and_counts_miss(self):
        nodes = self.nodes()
        for node in nodes:
            if node.profile.platform == "cca":
                node.state = NodeState.DEAD
        scheduler = PlacementScheduler(nodes)
        node = scheduler.place("cca", secure=False, memory_mib=256)
        assert node is not None and node.profile.platform != "cca"
        assert scheduler.affinity_misses == 1

    def test_best_fit_picks_least_leftover(self):
        nodes = self.nodes()
        scheduler = PlacementScheduler(nodes)
        # insecure path: pure best-fit, so the smallest-memory host
        # that fits (m1: 16 GiB) wins over the larger generations
        node = scheduler.place(None, secure=False, memory_mib=256)
        assert node.profile.generation == "m1"

    def test_zone_spread_for_secure(self):
        nodes = self.nodes()
        scheduler = PlacementScheduler(nodes)
        for node in nodes:
            if node.profile.zone == "zone-a":
                node.secure_active = 5
        node = scheduler.place(None, secure=True, memory_mib=256)
        assert node.profile.zone != "zone-a"

    def test_only_healthy_nodes_are_candidates(self):
        nodes = self.nodes(2)
        nodes[0].state = NodeState.SUSPECT
        nodes[1].state = NodeState.DEAD
        assert PlacementScheduler(nodes).place(
            None, secure=False, memory_mib=1) is None


class TestHealthMonitor:
    def fleet(self, count=3):
        return [ClusterNode(p) for p in build_fleet(count)]

    def monitor(self, nodes, **kwargs):
        return HealthMonitor(nodes, probe_interval_ns=100.0,
                             probe_timeout_ns=10.0, **kwargs)

    def test_crashed_host_walks_suspect_then_dead(self):
        nodes = self.fleet(1)
        events = []
        monitor = self.monitor(
            nodes,
            on_suspect=lambda n, t: events.append(("suspect", t)),
            on_dead=lambda n, t: events.append(("dead", t)))
        nodes[0].crashed_at_ns = 0.0
        for round_index in range(4):
            monitor.evaluate_round(sent_ns=100.0 * (round_index + 1))
        assert nodes[0].state is NodeState.DEAD
        # transitions land probe_timeout after the send
        assert events == [("suspect", 210.0), ("dead", 410.0)]
        assert monitor.suspected == 1 and monitor.died == 1

    def test_partition_heal_revives_even_dead(self):
        nodes = self.fleet(1)
        monitor = self.monitor(nodes)
        monitor.partitions[nodes[0].profile.zone] = (0.0, 450.0)
        for round_index in range(4):
            monitor.evaluate_round(sent_ns=100.0 * (round_index + 1))
        assert nodes[0].state is NodeState.DEAD
        monitor.evaluate_round(sent_ns=500.0)   # window healed
        assert nodes[0].state is NodeState.HEALTHY
        assert monitor.recovered == 1

    def test_one_answered_probe_resets_the_counter(self):
        nodes = self.fleet(1)
        monitor = self.monitor(nodes)
        monitor.partitions[nodes[0].profile.zone] = (0.0, 150.0)
        monitor.evaluate_round(sent_ns=100.0)   # missed
        assert nodes[0].missed_probes == 1
        monitor.evaluate_round(sent_ns=200.0)   # answered
        assert nodes[0].missed_probes == 0
        assert nodes[0].state is NodeState.HEALTHY

    def test_validation(self):
        with pytest.raises(GatewayError):
            HealthMonitor(self.fleet(1), probe_interval_ns=0.0)
        with pytest.raises(GatewayError):
            HealthMonitor(self.fleet(1), suspect_after=3, dead_after=3)


class TestBrownoutLadder:
    def test_classify_walks_the_ladder(self):
        controller = OverloadController(queue_cap=10)
        assert controller.classify(0) is BrownoutLevel.NORMAL
        assert controller.classify(4) is BrownoutLevel.NORMAL
        assert controller.classify(5) is BrownoutLevel.DROP_TELEMETRY
        assert controller.classify(8) is BrownoutLevel.QUEUE
        assert controller.classify(10) is BrownoutLevel.SHED

    def test_observe_tracks_transitions_and_time(self):
        controller = OverloadController(queue_cap=10)
        controller.observe(0, 0.0)
        controller.observe(10, 100.0)
        controller.observe(0, 250.0)
        controller.finish(400.0)
        assert controller.transitions[BrownoutLevel.SHED] == 1
        assert controller.time_at_level_ns[BrownoutLevel.SHED] == 150.0
        assert controller.time_at_level_ns[BrownoutLevel.NORMAL] == 250.0

    def test_retry_after_hint_scales_with_backlog(self):
        controller = OverloadController(queue_cap=10,
                                        drain_ns_per_request=1000.0)
        # drains to the QUEUE threshold (8): backlog of 2 → 2 drains
        assert controller.retry_after_ns(10) == 2000.0
        assert controller.retry_after_ns(8) == 1000.0   # floor of 1

    def test_validation(self):
        with pytest.raises(GatewayError):
            OverloadController(queue_cap=0)
        with pytest.raises(GatewayError):
            OverloadController(queue_cap=10, telemetry_at=0.9, queue_at=0.5)


class TestZoneCollateral:
    def test_tiers_warm_on_the_way_through(self):
        nodes = [ClusterNode(p) for p in build_fleet(2)]
        collateral = ZoneCollateral(DEFAULT_ZONES)
        # cold everywhere: origin, warming CDN + host
        assert collateral.fetch_ns(nodes[0], "tdx", 0.0) == ORIGIN_TIER_NS
        # same node again: host tier
        assert collateral.fetch_ns(nodes[0], "tdx", 0.0) == HOST_TIER_NS
        assert collateral.hits == {"host": 1, "cdn": 0, "origin": 1,
                                   "stale": 0, "outage_failures": 0,
                                   "local": 0}

    def test_cdn_tier_for_zone_sibling(self):
        fleet = build_fleet(6)
        same_zone = [p for p in fleet if p.zone == fleet[0].zone]
        a, b = ClusterNode(same_zone[0]), ClusterNode(same_zone[1])
        collateral = ZoneCollateral(DEFAULT_ZONES)
        collateral.fetch_ns(a, "tdx", 0.0)                       # origin
        assert collateral.fetch_ns(b, "tdx", 0.0) == CDN_TIER_NS

    def test_outage_serves_stale_when_cdn_warm(self):
        node = ClusterNode(build_fleet(1)[0])
        sibling = ClusterNode(build_fleet(1)[0])
        collateral = ZoneCollateral(DEFAULT_ZONES)
        collateral.fetch_ns(node, "tdx", 0.0)                    # warm CDN
        collateral.outages[node.profile.zone] = (10.0, 100.0)
        assert collateral.fetch_ns(sibling, "tdx", 50.0) == CDN_TIER_NS
        assert collateral.hits["stale"] == 1

    def test_outage_with_cold_cdn_fails_the_boot(self):
        node = ClusterNode(build_fleet(1)[0])
        collateral = ZoneCollateral(DEFAULT_ZONES)
        collateral.outages[node.profile.zone] = (0.0, 100.0)
        assert collateral.fetch_ns(node, "tdx", 50.0) is None
        assert collateral.hits["outage_failures"] == 1

    def test_cca_has_nothing_to_fetch(self):
        node = ClusterNode(build_fleet(1)[0])
        collateral = ZoneCollateral(DEFAULT_ZONES)
        assert collateral.fetch_ns(node, "cca", 0.0) == 0.0
        assert collateral.hits["local"] == 1


class TestTraffic:
    def mix(self):
        return TenantMix(("tdx", "sev-snp", "cca"))

    def test_mix_covers_the_25_functions(self):
        mix = self.mix()
        assert len(mix.names) == 25
        assert mix.draw(0.0) == 0
        assert mix.draw(0.999999) == len(mix.names) - 1

    def test_zipf_head_dominates(self):
        mix = self.mix()
        generator = TrafficGenerator(TrafficSpec(requests=1000), mix, seed=1)
        counts = [0] * len(mix.names)
        for _ in range(1000):
            index, _ = generator.next_tenant()
            counts[index] += 1
        assert counts[0] > counts[-1]

    def test_trace_is_seed_deterministic(self):
        spec = TrafficSpec(requests=100)
        trace_a, trace_b = [], []
        for trace in (trace_a, trace_b):
            generator = TrafficGenerator(spec, self.mix(), seed=5)
            now = 0.0
            for _ in range(100):
                now += generator.next_gap_ns(now)
                trace.append((now, generator.next_tenant()))
        assert trace_a == trace_b

    def test_burst_and_diurnal_modulate_rate(self):
        mix = self.mix()
        burst = TrafficGenerator(TrafficSpec(
            process="burst", rate_rps=100.0, burst_factor=6.0,
            burst_every_s=20.0, burst_len_s=4.0), mix, seed=0)
        assert burst.rate_at(1e9) == 600.0          # inside the window
        assert burst.rate_at(10e9) == 100.0         # outside
        diurnal = TrafficGenerator(TrafficSpec(
            process="diurnal", rate_rps=100.0, diurnal_period_s=120.0,
            diurnal_swing=0.8), mix, seed=0)
        assert diurnal.rate_at(30e9) == pytest.approx(180.0)   # peak
        assert diurnal.rate_at(90e9) == pytest.approx(20.0)    # trough

    def test_spec_validation(self):
        with pytest.raises(GatewayError):
            TrafficSpec(process="flood")
        with pytest.raises(GatewayError):
            TrafficSpec(requests=0)
        with pytest.raises(GatewayError):
            TrafficSpec(secure_fraction=1.5)

    def test_horizon_matches_rate(self):
        assert TrafficSpec(requests=2000,
                           rate_rps=100.0).horizon_ns == 2e10
