"""Tests for the dispatch transport model and the result archive."""

import pytest

from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.dispatch import DispatchModel
from repro.core.gateway import Gateway, InvocationRequest
from repro.core.resultstore import ResultStore, compare_runs
from repro.errors import GatewayError
from repro.tee.registry import platform_by_name


class TestDispatchModel:
    def test_round_trip_positive(self):
        model = DispatchModel()
        assert model.round_trip_ns(platform_by_name("tdx")) > 0

    def test_cca_pays_tap_tun_chain(self):
        """§III-B: host<->FVP networking crosses extra hops."""
        model = DispatchModel()
        tdx = model.round_trip_ns(platform_by_name("tdx"))
        cca = model.round_trip_ns(platform_by_name("cca"))
        assert cca > tdx + 500_000   # the 2x2 tap/tun hops

    def test_bigger_payload_costs_more(self):
        model = DispatchModel()
        platform = platform_by_name("tdx")
        small = model.round_trip_ns(platform, request_bytes=1024,
                                    response_bytes=1024)
        large = model.round_trip_ns(platform, request_bytes=1 << 20,
                                    response_bytes=1 << 20)
        assert large > small

    def test_negative_payload_rejected(self):
        with pytest.raises(GatewayError):
            DispatchModel().round_trip_ns(platform_by_name("tdx"),
                                          request_bytes=-1)

    def test_gateway_attaches_transport(self):
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="x", base_port=9100),
        ], default_trials=1)
        gateway = Gateway(config)
        gateway.upload("factors")
        record = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx",
        ))[0]
        assert record.transport_ns > 0
        assert record.to_dict()["transport_ns"] == record.transport_ns

    def test_transport_excluded_from_elapsed(self):
        """The figures report execution time, not dispatch time."""
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="x", base_port=9100),
        ], default_trials=1)
        gateway = Gateway(config)
        gateway.upload("ack")
        record = gateway.invoke(InvocationRequest(
            function="ack", language="go", platform="tdx",
            args={"m": 2, "n": 2},
        ))[0]
        # ack(2,2) is microseconds of work; transport is ~ms
        assert record.transport_ns > record.elapsed_ns


def _records(gateway, trials=2):
    gateway.upload("factors")
    secure = gateway.invoke(InvocationRequest(
        function="factors", language="lua", platform="tdx",
        secure=True, trials=trials,
    ))
    normal = gateway.invoke(InvocationRequest(
        function="factors", language="lua", platform="tdx",
        secure=False, trials=trials,
    ))
    return secure + normal


@pytest.fixture
def gateway():
    config = GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="x", base_port=9100),
    ], default_trials=2)
    return Gateway(config)


class TestResultStore:
    def test_save_load_round_trip(self, gateway, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        records = _records(gateway)
        store.save("baseline", seed=0, records=records)
        runs = store.load()
        assert len(runs) == 1
        assert runs[0].label == "baseline"
        assert len(runs[0].records) == len(records)
        assert runs[0].records[0].function == "factors"

    def test_load_missing_file_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "nope.jsonl").load() == []

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(GatewayError):
            ResultStore(tmp_path / "x.jsonl").save("x", 0, [])

    def test_multiple_runs_appended(self, gateway, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.save("a", seed=0, records=_records(gateway))
        store.save("b", seed=1, records=_records(gateway))
        runs = store.load()
        assert [run.label for run in runs] == ["a", "b"]

    def test_run_by_label(self, gateway, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.save("a", seed=0, records=_records(gateway))
        assert store.run("a").seed == 0
        with pytest.raises(GatewayError):
            store.run("ghost")

    def test_corrupt_line_skipped_with_warning(self, gateway, tmp_path):
        """One bad line costs one line, not the archive."""
        path = tmp_path / "runs.jsonl"
        store = ResultStore(path)
        store.save("good", seed=0, records=_records(gateway))
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
        store.save("after", seed=1, records=_records(gateway))
        with pytest.warns(UserWarning, match="bad JSON"):
            runs = store.load()
        assert [run.label for run in runs] == ["good", "after"]
        assert len(store.warnings) == 1

    def test_record_before_run_skipped_with_warning(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "record", "function": "f", "language": null,'
                        ' "platform": "tdx", "secure": true, "trial": 0,'
                        ' "elapsed_ns": 1.0, "output": null, "perf": {}}\n')
        store = ResultStore(path)
        with pytest.warns(UserWarning, match="record before any run"):
            assert store.load() == []

    def test_truncated_final_line_skipped(self, gateway, tmp_path):
        """A torn tail (crashed writer) loses only the torn record."""
        path = tmp_path / "runs.jsonl"
        store = ResultStore(path)
        store.save("baseline", seed=0, records=_records(gateway))
        whole = path.read_text(encoding="utf-8")
        path.write_text(whole[:-25], encoding="utf-8")   # tear the tail
        with pytest.warns(UserWarning, match="bad JSON"):
            runs = ResultStore(path).load()
        assert len(runs) == 1
        assert runs[0].label == "baseline"
        assert len(runs[0].records) == len(_records(gateway)) - 1

    def test_unknown_kind_skipped_with_warning(self, gateway, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = ResultStore(path)
        store.save("baseline", seed=0, records=_records(gateway))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "telemetry", "x": 1}\n')
        with pytest.warns(UserWarning, match="unknown kind"):
            runs = store.load()
        assert [run.label for run in runs] == ["baseline"]

    def test_key_ratios(self, gateway, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.save("a", seed=0, records=_records(gateway, trials=4))
        ratios = store.run("a").key_ratios()
        assert ("factors", "lua", "tdx") in ratios
        assert 0.7 < ratios[("factors", "lua", "tdx")] < 1.6

    def test_compare_runs_drift(self, gateway, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.save("before", seed=0, records=_records(gateway, trials=4))
        store.save("after", seed=0, records=_records(gateway, trials=4))
        drift = compare_runs(store.run("before"), store.run("after"))
        entry = drift[("factors", "lua", "tdx")]
        assert set(entry) == {"before", "after", "drift_percent"}

    def test_compare_disjoint_runs_rejected(self, gateway, tmp_path):
        from repro.core.resultstore import ArchivedRun

        a = ArchivedRun(label="a", seed=0, version="1",
                        records=_records(gateway))
        b = ArchivedRun(label="b", seed=0, version="1", records=[])
        with pytest.raises(GatewayError):
            compare_runs(a, b)
