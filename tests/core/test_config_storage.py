"""Tests for gateway configuration and the function store."""

import pytest

from repro.core.config import GatewayConfig, PlatformEntry, default_config
from repro.core.storage import FunctionStore
from repro.errors import GatewayError, NoSuchFunctionError
from repro.workloads.base import FaasWorkload, WorkloadTrait


class TestPlatformEntry:
    def test_ports_enumerate_vm_range(self):
        entry = PlatformEntry(platform="tdx", host="h", base_port=9100,
                              vm_count=3)
        assert entry.ports() == [9100, 9101, 9102]

    def test_port_bounds(self):
        with pytest.raises(GatewayError):
            PlatformEntry(platform="tdx", host="h", base_port=80)

    def test_vm_count_bound(self):
        with pytest.raises(GatewayError):
            PlatformEntry(platform="tdx", host="h", base_port=9100, vm_count=0)


class TestGatewayConfig:
    def test_default_config_covers_paper_testbed(self):
        config = default_config()
        assert config.platforms() == ["tdx", "sev-snp", "cca", "novm"]
        assert config.default_trials == 10   # the paper's trial count

    def test_entry_for(self):
        config = default_config()
        assert config.entry_for("cca").host == "arm-fvp"

    def test_entry_for_unknown(self):
        with pytest.raises(GatewayError):
            default_config().entry_for("sgx")

    def test_port_collision_rejected(self):
        with pytest.raises(GatewayError):
            GatewayConfig(entries=[
                PlatformEntry(platform="tdx", host="a", base_port=9100),
                PlatformEntry(platform="novm", host="b", base_port=9101),
            ])

    def test_json_round_trip(self):
        config = default_config(seed=7)
        restored = GatewayConfig.from_json(config.to_json())
        assert restored.platforms() == config.platforms()
        assert restored.entry_for("tdx").seed == 7
        assert restored.load_balancing == config.load_balancing

    def test_bad_json_rejected(self):
        with pytest.raises(GatewayError):
            GatewayConfig.from_json("{nope")

    def test_zero_trials_rejected(self):
        with pytest.raises(GatewayError):
            GatewayConfig(entries=[], default_trials=0)


class TestFunctionStore:
    def test_upload_builtin(self):
        store = FunctionStore()
        stored = store.upload_builtin("factors")
        assert stored.name == "factors"
        assert stored.supports("python")
        assert len(store) == 1

    def test_upload_restricted_languages(self):
        store = FunctionStore()
        store.upload_builtin("factors", languages=("lua",))
        assert store.get("factors").supports("lua")
        assert not store.get("factors").supports("go")

    def test_unknown_language_rejected(self):
        store = FunctionStore()
        with pytest.raises(GatewayError):
            store.upload_builtin("factors", languages=("cobol",))

    def test_reupload_merges_languages(self):
        store = FunctionStore()
        store.upload_builtin("factors", languages=("lua",))
        store.upload_builtin("factors", languages=("go",))
        stored = store.get("factors")
        assert stored.uploads == 2
        assert stored.supports("lua") and stored.supports("go")

    def test_get_missing(self):
        with pytest.raises(NoSuchFunctionError):
            FunctionStore().get("ghost")

    def test_require_language_enforces(self):
        store = FunctionStore()
        store.upload_builtin("factors", languages=("lua",))
        with pytest.raises(GatewayError):
            store.require_language("factors", "python")

    def test_upload_custom(self):
        store = FunctionStore()
        custom = FaasWorkload(
            name="noop", trait=WorkloadTrait.CPU, description="",
            fn=lambda session, args: None,
        )
        store.upload_custom(custom)
        assert store.names() == ["noop"]
