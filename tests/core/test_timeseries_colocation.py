"""Tests for continuous monitoring and multi-tenant co-location."""

import statistics

import pytest

from repro.core.host import Host
from repro.core.launcher import FunctionLauncher
from repro.core.timeseries import ContinuousMonitor, TimeSeries
from repro.errors import GatewayError, MonitorError, VmError
from repro.sim.ledger import CostCategory
from repro.tee.registry import platform_by_name
from repro.workloads.faas import workload_by_name


def booted_vm(platform="tdx", seed=6):
    vm = platform_by_name(platform, seed=seed).create_vm()
    vm.boot()
    return vm


class TestContinuousMonitor:
    def test_samples_accumulate_over_run(self):
        monitor = ContinuousMonitor(interval_ns=50_000.0)
        vm = booted_vm()
        body = FunctionLauncher.for_language("lua").launch(
            workload_by_name("iostress"), {"file_bytes": 65536, "files": 4}
        )
        vm.run(monitor.wrap(body), name="iostress")
        assert len(monitor.series) > 5

    def test_sample_times_monotone(self):
        monitor = ContinuousMonitor(interval_ns=20_000.0)
        vm = booted_vm()
        vm.run(monitor.wrap(lambda k: k.pipe_ping_pong(50)), name="pp")
        times = [sample.time_ns for sample in monitor.series.samples]
        assert times == sorted(times)

    def test_counters_cumulative(self):
        monitor = ContinuousMonitor(interval_ns=20_000.0)
        vm = booted_vm()
        vm.run(monitor.wrap(lambda k: k.pipe_ping_pong(80)), name="pp")
        transitions = [s.vm_transitions for s in monitor.series.samples]
        assert transitions == sorted(transitions)
        assert transitions[-1] > 0

    def test_deltas_and_peak(self):
        series = TimeSeries(interval_ns=1.0)
        monitor = ContinuousMonitor(interval_ns=30_000.0)
        vm = booted_vm()
        vm.run(monitor.wrap(lambda k: k.pipe_ping_pong(60)), name="pp")
        increments = monitor.series.deltas("vm_transitions")
        first = monitor.series.samples[0].vm_transitions
        last = monitor.series.samples[-1].vm_transitions
        assert sum(increments) == last - first
        assert 0 <= monitor.series.peak_interval("vm_transitions") < len(increments)

    def test_peak_needs_two_samples(self):
        series = TimeSeries(interval_ns=1.0)
        with pytest.raises(MonitorError):
            series.peak_interval("instructions")

    def test_category_share_bounded(self):
        monitor = ContinuousMonitor(interval_ns=50_000.0)
        vm = booted_vm()
        body = FunctionLauncher.for_language("lua").launch(
            workload_by_name("iostress"), {"file_bytes": 65536, "files": 2}
        )
        vm.run(monitor.wrap(body), name="iostress")
        shares = monitor.series.category_share(CostCategory.IO_WRITE)
        assert all(0.0 <= share <= 1.0 for share in shares)
        assert shares[-1] > 0.0

    def test_sparkline_renders(self):
        monitor = ContinuousMonitor(interval_ns=20_000.0)
        vm = booted_vm()
        vm.run(monitor.wrap(lambda k: k.pipe_ping_pong(100)), name="pp")
        line = monitor.series.sparkline("instructions", width=20)
        assert 0 < len(line) <= 20

    def test_bad_interval_rejected(self):
        with pytest.raises(MonitorError):
            ContinuousMonitor(interval_ns=0)

    def test_double_attach_rejected(self):
        from repro.guestos.context import ExecContext
        from repro.hw.machine import xeon_gold_5515
        from repro.sim.rng import SimRng

        ctx = ExecContext(machine=xeon_gold_5515(), rng=SimRng(1))
        ContinuousMonitor().attach(ctx)
        with pytest.raises(MonitorError):
            ContinuousMonitor().attach(ctx)

    def test_io_phase_visible_in_series(self):
        """A compute-then-io workload shows its phases."""
        monitor = ContinuousMonitor(interval_ns=100_000.0)

        def body(kernel):
            kernel.ctx.cpu_execute(3_000_000)      # compute phase
            kernel.sys_create("/f")
            kernel.sys_write("/f", b"x" * (1 << 20))   # io phase
            return None

        vm = booted_vm()
        vm.run(monitor.wrap(body), name="phased")
        io_share = monitor.series.category_share(CostCategory.IO_WRITE)
        assert io_share[0] == 0.0          # no io yet at the first sample
        assert io_share[-1] > 0.1          # io visible by the end


class TestColocation:
    def make_host(self, vms=4):
        host = Host(name="h", platform=platform_by_name("tdx", seed=6))
        for i in range(vms):
            host.provision_vm(9100 + i, secure=True)
        return host

    def test_factor_is_one_below_core_count(self):
        host = self.make_host()
        cores = host.platform.build_machine().spec.cores
        assert host.contention_factor(1) == 1.0
        assert host.contention_factor(cores) == 1.0

    def test_factor_grows_with_oversubscription(self):
        host = self.make_host()
        cores = host.platform.build_machine().spec.cores
        f2 = host.contention_factor(2 * cores)
        f4 = host.contention_factor(4 * cores)
        assert 1.0 < f2 < f4

    def test_zero_tenants_rejected(self):
        with pytest.raises(GatewayError):
            self.make_host().contention_factor(0)

    def test_vm_rejects_bad_contention(self):
        vm = booted_vm()
        with pytest.raises(VmError):
            vm.run(lambda k: None, contention=0.5)

    def test_route_colocated_prices_batch(self):
        host = self.make_host(vms=4)
        body = FunctionLauncher.for_language("lua").launch(
            workload_by_name("factors")
        )
        requests = [(9100 + i, body, "factors") for i in range(4)]
        results = host.route_colocated(requests)
        assert len(results) == 4
        assert host.requests_routed == 4

    def test_oversubscribed_batch_slower_per_request(self):
        """The §VI multi-tenant effect: oversubscription costs."""
        host = Host(name="h", platform=platform_by_name("tdx", seed=6))
        cores = host.platform.build_machine().spec.cores
        n = 2 * cores
        for i in range(n):
            host.provision_vm(9100 + i, secure=True)
        body = FunctionLauncher.for_language("lua").launch(
            workload_by_name("cpustress")
        )
        alone = host.route_colocated([(9100, body, "cpustress")])
        packed = host.route_colocated(
            [(9100 + i, body, "cpustress") for i in range(n)]
        )
        alone_time = alone[0].elapsed_ns
        packed_mean = statistics.fmean(r.elapsed_ns for r in packed)
        assert packed_mean > alone_time * 1.3
