"""Full coverage of the versioned REST surface and its error envelope.

Runs a real ``RestServer`` on an ephemeral port and exercises every
route twice — through the legacy unprefixed path and the ``/v1``
alias — plus the uniform error envelope on each failure class.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.client import ConfBenchClient
from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.gateway import Gateway
from repro.core.rest import RestServer


@pytest.fixture(scope="module")
def server():
    config = GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="xeon", base_port=9500),
        PlatformEntry(platform="novm", host="xeon", base_port=9600),
    ], default_trials=2)
    gateway = Gateway(config)
    gateway.upload("cpustress")
    with RestServer(gateway, port=0) as rest:
        yield rest


@pytest.fixture(scope="module")
def client(server):
    return ConfBenchClient(port=server.port)


def call(server, method, path, body=None, raw=None):
    """One HTTP round trip; returns (status, headers, parsed body)."""
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None)
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def assert_envelope(payload, code):
    assert set(payload) == {"error"}
    assert payload["error"]["code"] == code
    assert isinstance(payload["error"]["message"], str)
    assert payload["error"]["message"]


class TestRouteAliases:
    """Every resource answers identically on /x and /v1/x."""

    @pytest.mark.parametrize("path", ["/health", "/platforms", "/functions",
                                      "/metrics", "/stats"])
    def test_get_routes_legacy_equals_v1(self, server, path):
        legacy = call(server, "GET", path)
        versioned = call(server, "GET", f"/v1{path}")
        assert legacy[0] == versioned[0] == 200
        assert legacy[2] == versioned[2]

    def test_health_payload(self, server):
        assert call(server, "GET", "/v1/health")[2] == {"status": "ok"}

    def test_platforms_payload(self, server):
        names = {p["name"] for p in call(server, "GET", "/v1/platforms")[2]}
        assert names == {"tdx", "novm"}

    @pytest.mark.parametrize("prefix", ["", "/v1"])
    def test_upload_on_both_paths(self, server, prefix):
        status, _, payload = call(server, "POST", f"{prefix}/functions",
                                  body={"name": "factors"})
        assert status == 201
        assert payload == {"uploaded": "factors"}
        assert "factors" in call(server, "GET", f"{prefix}/functions")[2]

    @pytest.mark.parametrize("prefix", ["", "/v1"])
    def test_invoke_on_both_paths(self, server, prefix):
        status, _, records = call(server, "POST", f"{prefix}/invoke",
                                  body={"function": "cpustress",
                                        "language": "lua", "trials": 1})
        assert status == 200
        assert len(records) == 1
        assert records[0]["function"] == "cpustress"

    def test_invoke_without_trials_runs_config_default(self, server):
        _, _, records = call(server, "POST", "/v1/invoke",
                             body={"function": "cpustress",
                                   "language": "lua"})
        assert len(records) == 2    # default_trials in the fixture config


class TestErrorEnvelope:
    def test_unknown_path_is_404(self, server):
        status, _, payload = call(server, "GET", "/v1/nonsense")
        assert status == 404
        assert_envelope(payload, "not_found")

    def test_unversioned_unknown_path_is_404(self, server):
        status, _, payload = call(server, "GET", "/nonsense")
        assert status == 404
        assert_envelope(payload, "not_found")

    def test_wrong_method_is_405_with_allow(self, server):
        status, headers, payload = call(server, "POST", "/v1/health",
                                        body={})
        assert status == 405
        assert_envelope(payload, "method_not_allowed")
        assert headers["Allow"] == "GET"

    def test_delete_on_functions_lists_both_methods(self, server):
        status, headers, _ = call(server, "DELETE", "/v1/functions")
        assert status == 405
        assert headers["Allow"] == "GET, POST"

    def test_malformed_json_is_400(self, server):
        status, _, payload = call(server, "POST", "/v1/invoke",
                                  raw=b"{not json")
        assert status == 400
        assert_envelope(payload, "bad_request")

    def test_non_object_body_is_400(self, server):
        status, _, payload = call(server, "POST", "/v1/invoke",
                                  raw=b"[1, 2]")
        assert status == 400
        assert_envelope(payload, "bad_request")
        assert "JSON object" in payload["error"]["message"]

    def test_missing_function_is_400(self, server):
        status, _, payload = call(server, "POST", "/v1/invoke",
                                  body={"language": "lua"})
        assert status == 400
        assert_envelope(payload, "bad_request")

    def test_unknown_function_is_400(self, server):
        status, _, payload = call(server, "POST", "/v1/invoke",
                                  body={"function": "ghost",
                                        "language": "lua"})
        assert status == 400
        assert_envelope(payload, "bad_request")

    @pytest.mark.parametrize("trials", ["three", True, 2.5])
    def test_non_integer_trials_is_400(self, server, trials):
        status, _, payload = call(server, "POST", "/v1/invoke",
                                  body={"function": "cpustress",
                                        "language": "lua",
                                        "trials": trials})
        assert status == 400
        assert "'trials'" in payload["error"]["message"]

    def test_non_object_args_is_400(self, server):
        status, _, payload = call(server, "POST", "/v1/invoke",
                                  body={"function": "cpustress",
                                        "language": "lua",
                                        "args": [1, 2]})
        assert status == 400
        assert "'args'" in payload["error"]["message"]


class TestStrictV1Invoke:
    def test_unknown_field_rejected_on_v1(self, server):
        status, _, payload = call(server, "POST", "/v1/invoke",
                                  body={"function": "cpustress",
                                        "language": "lua", "trials": 1,
                                        "bogus": 1})
        assert status == 400
        assert "bogus" in payload["error"]["message"]

    def test_unknown_field_ignored_on_legacy(self, server):
        status, _, records = call(server, "POST", "/invoke",
                                  body={"function": "cpustress",
                                        "language": "lua", "trials": 1,
                                        "bogus": 1})
        assert status == 200
        assert len(records) == 1


class TestTelemetryRoutes:
    def test_metrics_reflects_invocations(self, server):
        before = call(server, "GET", "/v1/metrics")[2]
        call(server, "POST", "/v1/invoke",
             body={"function": "cpustress", "language": "lua", "trials": 2})
        after = call(server, "GET", "/v1/metrics")[2]
        assert set(after) == {"counters", "gauges", "histograms"}
        grown = (after["counters"]["run.tdx.secure.trials"]
                 - before["counters"].get("run.tdx.secure.trials", 0))
        assert grown == 2
        assert "run.tdx.secure.elapsed_ns" in after["histograms"]

    def test_stats_invariant_over_http(self, server):
        stats = call(server, "GET", "/v1/stats")[2]
        assert stats["trials_requested"] == (stats["trials_completed"]
                                             + stats["trials_degraded"]
                                             + stats["trials_shed"])


class TestClientV1:
    def test_client_round_trip(self, client):
        client.upload("fibonacci")
        records = client.invoke("fibonacci", "lua", args={"n": 10}, trials=1)
        assert records[0]["output"]["result"] == 55

    def test_client_metrics_and_stats(self, client):
        metrics = client.metrics()
        assert metrics["counters"]["run.tdx.secure.trials"] >= 1
        assert "trials_requested" in client.stats()

    def test_client_surfaces_envelope_detail(self, client):
        from repro.errors import GatewayError

        with pytest.raises(GatewayError, match=r"\[bad_request\]"):
            client.invoke("ghost", "lua")

    def test_error_detail_falls_back_on_bare_strings(self):
        detail = ConfBenchClient._error_detail(b'{"error": "plain text"}')
        assert detail == "plain text"
        assert ConfBenchClient._error_detail(b"not json") == ""
