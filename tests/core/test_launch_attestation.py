"""Launch attestation wired into the pools and the gateway.

With a :class:`~repro.attest.service.LaunchAttestor` attached to a
secure pool, each worker attests before its first dispatch; the
attestation latency lands in the serving result's STARTUP bucket
(``total_ns``, never ``elapsed_ns``), and a respawned worker resumes
its predecessor's session instead of re-paying the full flow.
"""

from repro.attest import LaunchAttestor
from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.gateway import Gateway, InvocationRequest
from repro.core.pool import TeePool
from repro.obs.metrics import MetricsRegistry
from repro.sim.ledger import CostCategory
from repro.tee.registry import platform_by_name


def boot_vm(platform):
    vm = platform.create_vm()
    vm.boot()
    return vm


def make_pool(workers=2, attestor=None, metrics=None, secure=True):
    platform = platform_by_name("tdx", seed=2)
    pool = TeePool(platform="tdx", secure=secure)
    for i in range(workers):
        vm = platform.create_vm()
        vm.boot()
        pool.add_worker(vm, 9100 + i)
    pool.attestor = attestor
    pool.metrics = metrics
    return pool


class TestPoolAdmission:
    def test_first_dispatch_attests_and_charges_startup(self):
        metrics = MetricsRegistry()
        pool = make_pool(attestor=LaunchAttestor("tdx", seed=1),
                         metrics=metrics)
        result = pool.run_resilient(lambda k: "ok", name="x", trial=0)
        assert result.output == "ok"
        assert pool.workers[0].attested
        # admission cost: STARTUP only, elapsed untouched
        assert result.ledger.get(CostCategory.STARTUP) > 0
        assert result.total_ns > result.elapsed_ns
        snap = metrics.snapshot()
        assert snap["counters"]["pool.tdx.secure.attested"] == 1

    def test_admission_happens_once_per_worker(self):
        # a plain run already charges STARTUP (runtime bootstrap), so
        # compare trial-by-trial against a no-attestor baseline: only
        # the first dispatch carries the admission surcharge
        baseline = make_pool(workers=1)
        base = [baseline.run_resilient(lambda k: 1, name="x", trial=t)
                for t in range(2)]
        pool = make_pool(workers=1, attestor=LaunchAttestor("tdx", seed=1))
        first = pool.run_resilient(lambda k: 1, name="x", trial=0)
        second = pool.run_resilient(lambda k: 1, name="x", trial=1)
        startup = CostCategory.STARTUP
        assert first.ledger.get(startup) > base[0].ledger.get(startup)
        assert second.ledger.get(startup) == base[1].ledger.get(startup)
        assert pool.attestor.service.stats["launches"] == 1

    def test_respawned_worker_resumes_session(self):
        metrics = MetricsRegistry()
        platform = platform_by_name("tdx", seed=2)
        pool = make_pool(workers=1, attestor=LaunchAttestor("tdx", seed=1),
                         metrics=metrics)
        pool.respawn = lambda worker: pool.add_worker(
            boot_vm(platform), worker.port)
        pool.run_resilient(lambda k: 1, name="x", trial=0)
        pool.workers[0].vm.destroy()
        result = pool.run_resilient(lambda k: 2, name="x", trial=1)
        assert result.output == 2
        # same port slot -> same measurement -> session resumption
        snap = metrics.snapshot()
        assert snap["counters"]["pool.tdx.secure.attested"] == 2
        assert snap["counters"]["pool.tdx.secure.attest_resumed"] == 1
        assert pool.attestor.service.stats["resumed"] == 1

    def test_no_attestor_leaves_runs_identical(self):
        plain = make_pool(workers=1).run_resilient(
            lambda k: 1, name="x", trial=0)
        pool = make_pool(workers=1)
        pool.attestor = None
        wired = pool.run_resilient(lambda k: 1, name="x", trial=0)
        assert not pool.workers[0].attested
        assert wired.total_ns == plain.total_ns
        assert (wired.ledger.get(CostCategory.STARTUP)
                == plain.ledger.get(CostCategory.STARTUP))

    def test_normal_pool_never_attests(self):
        pool = make_pool(workers=1, secure=False,
                         attestor=LaunchAttestor("tdx", seed=1))
        pool.run_resilient(lambda k: 1, name="x", trial=0)
        assert not pool.workers[0].attested
        assert pool.attestor.service.stats["launches"] == 0


class TestGatewayAttestation:
    def test_opt_in_builds_attestors_for_supported_platforms(self):
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="xeon", base_port=9100,
                          vm_count=2),
            PlatformEntry(platform="sev-snp", host="epyc", base_port=9200,
                          vm_count=2),
        ], default_trials=1)
        gateway = Gateway(config, attest_launches=True)
        assert set(gateway.attestors) == {"tdx", "sev-snp"}
        assert gateway.pools[("tdx", True)].attestor is not None
        assert gateway.pools[("tdx", False)].attestor is None

    def test_invocation_records_attestation_metrics(self):
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="xeon", base_port=9100,
                          vm_count=2),
        ], default_trials=1)
        gateway = Gateway(config, attest_launches=True)
        gateway.upload("factors")
        records = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx", trials=1))
        assert len(records) == 1
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["pool.tdx.secure.attested"] == 1
        assert counters["attest.service.tdx.launches"] == 1
        assert counters["attest.service.tdx.tier.origin"] == 1

    def test_default_gateway_unchanged(self):
        gateway = Gateway()
        assert gateway.attestors == {}
        assert all(pool.attestor is None for pool in gateway.pools.values())
