"""Tests for the gateway, pools, hosts, launchers, monitor, results."""

import pytest

from repro.core import (
    ConfBench,
    FunctionLauncher,
    Gateway,
    Host,
    InvocationRequest,
    LoadBalancingPolicy,
    PerfMonitor,
    TeePool,
)
from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.launcher import native_launcher
from repro.core.results import (
    InvocationRecord,
    five_number_summary,
    percentile,
    percentile_stack,
    summarize_ratio,
)
from repro.errors import (
    GatewayError,
    NoSuchFunctionError,
    PoolExhaustedError,
)
from repro.tee.registry import platform_by_name


def small_config(seed=0):
    return GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="xeon", base_port=9100, seed=seed),
        PlatformEntry(platform="novm", host="xeon", base_port=9400, seed=seed),
    ], default_trials=2)


class TestHost:
    def test_provision_and_route(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        host.provision_vm(9100, secure=True)
        result = host.route(9100, lambda k: "ok")
        assert result.output == "ok"
        assert host.requests_routed == 1

    def test_duplicate_port_rejected(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        host.provision_vm(9100, secure=True)
        with pytest.raises(GatewayError):
            host.provision_vm(9100, secure=False)

    def test_unknown_port(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        with pytest.raises(GatewayError):
            host.vm_for_port(9999)

    def test_secure_flag_respected(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        secure = host.provision_vm(9100, secure=True)
        normal = host.provision_vm(9101, secure=False)
        assert secure.secure and not normal.secure

    def test_decommission(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        host.provision_vm(9100, secure=True)
        host.decommission(9100)
        with pytest.raises(GatewayError):
            host.vm_for_port(9100)

    def test_vms_in_port_order(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        host.provision_vm(9101, secure=False)
        host.provision_vm(9100, secure=True)
        assert [vm.secure for vm in host.vms()] == [True, False]


class TestPool:
    def make_pool(self, policy, workers=3):
        platform = platform_by_name("novm")
        pool = TeePool(platform="novm", secure=False, policy=policy)
        for i in range(workers):
            vm = platform.create_vm()
            vm.config.secure = False
            vm.boot()
            pool.add_worker(vm, 9400 + i)
        return pool

    def test_empty_pool_raises(self):
        pool = TeePool(platform="tdx", secure=True)
        with pytest.raises(PoolExhaustedError):
            pool.pick()

    def test_round_robin_cycles(self):
        pool = self.make_pool(LoadBalancingPolicy.ROUND_ROBIN)
        picks = [pool.pick().port for _ in range(6)]
        assert picks == [9400, 9401, 9402, 9400, 9401, 9402]

    def test_least_loaded_balances(self):
        pool = self.make_pool(LoadBalancingPolicy.LEAST_LOADED)
        for _ in range(9):
            worker = pool.pick()
            pool.run_on(worker, lambda k: None, name="x", trial=0)
        served = [worker.served for worker in pool.workers]
        assert served == [3, 3, 3]

    def test_random_policy_uses_all_eventually(self):
        pool = self.make_pool(LoadBalancingPolicy.RANDOM)
        ports = {pool.pick().port for _ in range(50)}
        assert ports == {9400, 9401, 9402}

    def test_run_on_tracks_served(self):
        pool = self.make_pool(LoadBalancingPolicy.ROUND_ROBIN, workers=1)
        worker = pool.pick()
        pool.run_on(worker, lambda k: 1, name="x", trial=0)
        assert worker.served == 1
        assert worker.inflight == 0
        assert pool.total_served() == 1

    def test_policy_parse(self):
        assert LoadBalancingPolicy.parse("least-loaded") is \
            LoadBalancingPolicy.LEAST_LOADED
        with pytest.raises(ValueError):
            LoadBalancingPolicy.parse("chaotic")


class TestGateway:
    def test_invoke_returns_trial_records(self):
        gateway = Gateway(small_config())
        gateway.upload("factors")
        records = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx", trials=3,
        ))
        assert len(records) == 3
        assert [r.trial for r in records] == [0, 1, 2]
        assert all(r.platform == "tdx" and r.secure for r in records)
        assert records[0].output["result"][0] == 1

    def test_default_trials_from_config(self):
        gateway = Gateway(small_config())
        gateway.upload("factors")
        records = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx",
        ))
        assert len(records) == 2   # small_config sets 2

    def test_perf_piggybacked(self):
        gateway = Gateway(small_config())
        gateway.upload("factors")
        record = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx", trials=1,
        ))[0]
        assert record.perf["instructions"] > 0
        assert "cpu" in record.cost_breakdown

    def test_unuploaded_function_rejected(self):
        gateway = Gateway(small_config())
        with pytest.raises(NoSuchFunctionError):
            gateway.invoke(InvocationRequest(
                function="factors", language="lua",
            ))

    def test_language_required_for_faas(self):
        gateway = Gateway(small_config())
        gateway.upload("factors")
        with pytest.raises(GatewayError):
            gateway.invoke(InvocationRequest(function="factors"))

    def test_unconfigured_platform_rejected(self):
        gateway = Gateway(small_config())
        gateway.upload("factors")
        with pytest.raises(GatewayError):
            gateway.invoke(InvocationRequest(
                function="factors", language="lua", platform="cca",
            ))

    def test_normal_vm_dispatch(self):
        gateway = Gateway(small_config())
        gateway.upload("factors")
        record = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx",
            secure=False, trials=1,
        ))[0]
        assert not record.secure

    def test_invoke_native_runs_classic_workload(self):
        gateway = Gateway(small_config())
        records = gateway.invoke_native(
            "probe", lambda k: k.sys_getpid(), "tdx", True, 2,
        )
        assert len(records) == 2
        assert records[0].language is None
        assert records[0].output == 1

    def test_platform_listing(self):
        gateway = Gateway(small_config())
        listing = gateway.platforms()
        assert listing[0]["name"] == "tdx"
        assert listing[0]["supports_attestation"] is True


class TestLauncher:
    def test_launch_excludes_bootstrap_from_timing(self):
        from repro.workloads.faas import workload_by_name

        platform = platform_by_name("novm")
        vm = platform.create_vm()
        vm.boot()
        body = FunctionLauncher.for_language("ruby").launch(
            workload_by_name("factors"), {"n": 100}
        )
        result = vm.run(body, name="factors")
        # ruby bootstrap is ~60 ms; elapsed must exclude it entirely
        assert result.elapsed_ns < 50e6
        assert result.total_ns > 55e6
        assert result.output["language"] == "ruby"

    def test_native_launcher_passes_kernel(self):
        platform = platform_by_name("novm")
        vm = platform.create_vm()
        vm.boot()
        result = vm.run(native_launcher(lambda k, x: x * 2, 21))
        assert result.output == 42


class TestMonitor:
    def test_hardware_platform_reports_perf_stat(self):
        platform = platform_by_name("tdx")
        vm = platform.create_vm()
        vm.boot()
        run = vm.run(lambda k: k.sys_getpid())
        report = PerfMonitor(platform=platform).collect(run)
        assert report.source == "perf-stat"
        assert "instructions" in report.events

    def test_cca_falls_back_to_custom_script(self):
        platform = platform_by_name("cca")
        vm = platform.create_vm()
        vm.boot()
        run = vm.run(lambda k: k.pipe_ping_pong(3))
        report = PerfMonitor(platform=platform).collect(run)
        assert report.source == "custom-script"
        assert "instructions" not in report.events
        assert "context_switches" in report.events

    def test_custom_script_extension(self):
        platform = platform_by_name("cca")
        vm = platform.create_vm()
        vm.boot()
        monitor = PerfMonitor(platform=platform)
        monitor.register_script("half_time", lambda run: run.elapsed_ns / 2)
        run = vm.run(lambda k: k.sys_getpid())
        report = monitor.collect(run)
        assert report.extra["half_time"] == pytest.approx(run.elapsed_ns / 2)

    def test_duplicate_script_rejected(self):
        from repro.errors import MonitorError

        monitor = PerfMonitor(platform=platform_by_name("cca"))
        monitor.register_script("x", lambda run: 0.0)
        with pytest.raises(MonitorError):
            monitor.register_script("x", lambda run: 1.0)


class TestResults:
    def make_record(self, elapsed, secure=True, trial=0):
        return InvocationRecord(
            function="f", language="lua", platform="tdx", secure=secure,
            trial=trial, elapsed_ns=elapsed, output=None, perf={},
        )

    def test_summarize_ratio(self):
        secure = [self.make_record(200.0), self.make_record(220.0)]
        normal = [self.make_record(100.0, secure=False),
                  self.make_record(110.0, secure=False)]
        summary = summarize_ratio(secure, normal)
        assert summary.ratio == pytest.approx(2.0)
        assert summary.overhead_percent == pytest.approx(100.0)

    def test_summarize_requires_samples(self):
        with pytest.raises(GatewayError):
            summarize_ratio([], [self.make_record(1.0)])

    def test_percentile_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        with pytest.raises(GatewayError):
            percentile([1.0], 101)
        with pytest.raises(GatewayError):
            percentile([], 50)

    def test_percentile_stack_keys(self):
        stack = percentile_stack([1.0, 2.0, 3.0])
        assert set(stack) == {"min", "p25", "median", "p95", "max"}
        assert stack["min"] <= stack["median"] <= stack["max"]

    def test_five_number_summary(self):
        summary = five_number_summary(list(map(float, range(1, 101))))
        assert summary["q1"] == pytest.approx(25.75)
        assert summary["median"] == pytest.approx(50.5)
        assert summary["q3"] == pytest.approx(75.25)


class TestConfBenchFacade:
    def test_measure_overhead(self):
        bench = ConfBench(config=small_config(seed=3))
        bench.upload("cpustress")
        summary = bench.measure_overhead("cpustress", language="python",
                                         platform="tdx", trials=4)
        assert 0.8 < summary.ratio < 1.5
        assert len(summary.secure_times) == 4

    def test_classic_overhead(self):
        bench = ConfBench(config=small_config(seed=3))
        summary = bench.measure_classic_overhead(
            "pingpong", lambda k: k.pipe_ping_pong(30), platform="tdx",
            trials=4,
        )
        assert summary.ratio > 1.2   # transition-heavy => visible overhead

    def test_functions_listing(self):
        bench = ConfBench(config=small_config())
        bench.upload("factors")
        bench.upload("ack")
        assert bench.functions() == ["ack", "factors"]


class TestPoolResilience:
    def make_pool(self, workers=3):
        from repro.tee.registry import platform_by_name

        platform = platform_by_name("tdx", seed=2)
        pool = TeePool(platform="tdx", secure=True,
                       policy=LoadBalancingPolicy.ROUND_ROBIN)
        for i in range(workers):
            vm = platform.create_vm()
            vm.boot()
            pool.add_worker(vm, 9100 + i)
        return pool

    def test_failover_on_destroyed_vm(self):
        pool = self.make_pool()
        pool.workers[0].vm.destroy()   # the round-robin first pick
        result = pool.run_resilient(lambda k: "ok", name="x", trial=0)
        assert result.output == "ok"
        assert len(pool.workers) == 2   # dead worker evicted

    def test_all_dead_raises_exhausted(self):
        pool = self.make_pool(workers=2)
        for worker in list(pool.workers):
            worker.vm.destroy()
        with pytest.raises(PoolExhaustedError):
            pool.run_resilient(lambda k: None, name="x", trial=0)

    def test_gateway_survives_vm_failure(self):
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="xeon", base_port=9100,
                          vm_count=4),   # 2 secure + 2 normal workers
        ], default_trials=2)
        gateway = Gateway(config)
        gateway.upload("factors")
        # kill the secure TDX worker pool's first VM
        pool = gateway.pools[("tdx", True)]
        pool.workers[0].vm.destroy()
        records = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx", trials=2,
        ))
        assert len(records) == 2

    def test_evict_is_idempotent(self):
        pool = self.make_pool()
        worker = pool.workers[0]
        pool.evict(worker)
        pool.evict(worker)
        assert len(pool.workers) == 2


class TestPoolFailureAccounting:
    """The served/failed split and the cursor-under-eviction fixes."""

    def make_pool(self, workers=3):
        platform = platform_by_name("tdx", seed=2)
        pool = TeePool(platform="tdx", secure=True,
                       policy=LoadBalancingPolicy.ROUND_ROBIN)
        for i in range(workers):
            vm = platform.create_vm()
            vm.boot()
            pool.add_worker(vm, 9100 + i)
        return pool

    def test_failed_run_does_not_count_as_served(self):
        from repro.errors import VmError

        pool = self.make_pool(workers=1)
        worker = pool.workers[0]
        worker.vm.destroy()
        with pytest.raises(VmError):
            pool.run_on(worker, lambda k: None, name="x", trial=0)
        assert worker.served == 0
        assert worker.failed == 1
        assert worker.inflight == 0
        assert pool.total_failed() == 1

    def test_least_loaded_ignores_failed_attempts(self):
        # a worker whose runs keep dying must not look "experienced":
        # with served counting only successes, least-loaded keeps
        # treating it as idle rather than crediting its failures
        pool = self.make_pool(workers=2)
        pool.policy = LoadBalancingPolicy.LEAST_LOADED
        from repro.errors import VmError

        dead, healthy = pool.workers
        dead.vm.destroy()
        for _ in range(3):
            with pytest.raises(VmError):
                pool.run_on(dead, lambda k: None, name="x", trial=0)
        assert (dead.inflight, dead.served) == (0, 0)
        assert pool.pick() in (dead, healthy)  # both still tied at 0 served

    def test_evict_before_cursor_does_not_skip_worker(self):
        pool = self.make_pool(workers=3)
        first = pool.pick()
        assert first.port == 9100          # cursor now at index 1
        pool.evict(pool.workers[0])        # evict the already-served 9100
        # 9101 slid into index 0; the cursor must follow it
        assert pool.pick().port == 9101
        assert pool.pick().port == 9102

    def test_evict_at_cursor_keeps_rotation_fair(self):
        pool = self.make_pool(workers=3)
        pool.pick()                        # 9100; cursor -> 9101
        pool.evict(pool.workers[1])        # evict 9101 (the cursor target)
        # rotation continues with the worker that replaced it
        assert pool.pick().port == 9102
        assert pool.pick().port == 9100

    def test_cursor_stays_bounded(self):
        pool = self.make_pool(workers=3)
        for _ in range(50):
            pool.pick()
        assert 0 <= pool._cursor < len(pool.workers)
        pool.evict(pool.workers[2])
        pool.evict(pool.workers[1])
        assert 0 <= pool._cursor < len(pool.workers)
        assert pool.pick().port == 9100    # sole survivor still reachable


class TestRespawn:
    def test_host_respawn_vm_replaces_dead_vm(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        old = host.provision_vm(9100, secure=True)
        old.destroy()
        replacement = host.respawn_vm(9100)
        assert replacement is not old
        assert replacement.secure is True
        assert host.vm_for_port(9100) is replacement
        assert host.vms_respawned == 1
        assert host.route(9100, lambda k: "alive").output == "alive"

    def test_route_counts_only_validated_requests(self):
        host = Host(name="h", platform=platform_by_name("tdx"))
        host.provision_vm(9100, secure=True)
        with pytest.raises(GatewayError):
            host.route(9999, lambda k: None)
        assert host.requests_routed == 0
        host.route(9100, lambda k: None)
        assert host.requests_routed == 1

    def test_pool_respawn_keeps_worker_count(self):
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="xeon", base_port=9100,
                          vm_count=4),
        ], default_trials=2)
        gateway = Gateway(config)
        gateway.upload("factors")
        pool = gateway.pools[("tdx", True)]
        before = len(pool.workers)
        pool.workers[0].vm.destroy()
        records = gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx", trials=2,
        ))
        assert len(records) == 2
        assert len(pool.workers) == before   # evicted AND respawned
        assert gateway.hosts["tdx"].vms_respawned == 1


class TestGatewayFaults:
    def test_worker_faults_are_deterministic(self):
        import json

        def run():
            gateway = Gateway(faults="vm-crash=0.4,seed=9")
            gateway.upload("cpustress")
            records = gateway.invoke(InvocationRequest(
                function="cpustress", language="python", platform="tdx",
                trials=5,
            ))
            return json.dumps([r.to_dict() for r in records], sort_keys=True)

        assert run() == run()

    def test_faulted_trials_never_dropped(self):
        gateway = Gateway(faults="vm-crash=0.5,seed=4")
        gateway.upload("cpustress")
        records = gateway.invoke(InvocationRequest(
            function="cpustress", language="python", platform="tdx",
            trials=8,
        ))
        assert len(records) == 8
        assert [r.trial for r in records] == list(range(8))
        # every record is either a real run or explicitly degraded
        for record in records:
            assert record.degraded or record.output is not None

    def test_retried_invocations_surface_attempts(self):
        gateway = Gateway(faults="vm-crash=0.4,seed=9")
        gateway.upload("cpustress")
        records = gateway.invoke(InvocationRequest(
            function="cpustress", language="python", platform="tdx",
            trials=6,
        ))
        assert any(r.attempts > 1 for r in records)
        retried = next(r for r in records if r.attempts > 1 and not r.degraded)
        payload = retried.to_dict()
        assert payload["attempts"] == retried.attempts
        clean = next((r for r in records
                      if r.attempts == 1 and not r.faults_injected), None)
        if clean is not None:
            assert "attempts" not in clean.to_dict()

    def test_without_faults_exhaustion_still_raises(self):
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="xeon", base_port=9100,
                          vm_count=2),
        ], default_trials=1)
        gateway = Gateway(config)
        gateway.upload("factors")
        for worker in list(gateway.pools[("tdx", True)].workers):
            worker.vm.destroy()
        gateway.hosts["tdx"].port_map.clear()   # nothing to respawn either
        with pytest.raises(GatewayError):
            gateway.invoke(InvocationRequest(
                function="factors", language="lua", platform="tdx", trials=1,
            ))


class TestAdmissionControl:
    def make_gateway(self, max_pending=None, faults=None):
        gateway = Gateway(config=small_config(), max_pending=max_pending,
                          faults=faults)
        gateway.upload("factors")
        return gateway

    def invoke(self, gateway, trials):
        return gateway.invoke(InvocationRequest(
            function="factors", language="lua", platform="tdx",
            trials=trials,
        ))

    def test_bad_max_pending_rejected(self):
        with pytest.raises(GatewayError, match="max_pending"):
            Gateway(config=small_config(), max_pending=0)

    def test_overflow_trials_shed_not_dropped(self):
        gateway = self.make_gateway(max_pending=2)
        records = self.invoke(gateway, trials=4)
        assert len(records) == 4
        assert [r.shed for r in records] == [False, False, True, True]
        for record in records[2:]:
            assert record.attempts == 0   # nothing ran
            assert record.degraded
            assert record.output is None
        for record in records[:2]:
            assert record.output is not None

    def test_shed_flag_serialized_only_when_set(self):
        gateway = self.make_gateway(max_pending=1)
        records = self.invoke(gateway, trials=2)
        assert records[1].to_dict()["shed"] is True
        assert "shed" not in records[0].to_dict()

    def test_admitted_prefix_identical_to_unbounded(self):
        import json

        def dump(records):
            return json.dumps([r.to_dict() for r in records], sort_keys=True)

        unbounded = self.invoke(self.make_gateway(), trials=3)
        bounded = self.invoke(self.make_gateway(max_pending=2), trials=3)
        assert dump(unbounded[:2]) == dump(bounded[:2])

    def test_stats_invariant_holds(self):
        gateway = self.make_gateway(max_pending=2,
                                    faults="vm-crash=0.5,seed=4")
        self.invoke(gateway, trials=5)
        self.invoke(gateway, trials=1)
        stats = gateway.stats
        assert stats.invocations == 2
        assert stats.trials_requested == 6
        assert stats.trials_shed == 3
        assert stats.trials_requested == (stats.trials_completed
                                          + stats.trials_degraded
                                          + stats.trials_shed)
        payload = stats.to_dict()
        assert payload["trials_shed"] == 3
        assert payload["invocations"] == 2

    def test_unbounded_gateway_sheds_nothing(self):
        gateway = self.make_gateway()
        self.invoke(gateway, trials=3)
        assert gateway.stats.trials_shed == 0
        assert gateway.stats.trials_completed == 3

    def test_pool_counts_evictions_and_respawns(self):
        gateway = self.make_gateway()
        pool = gateway.pools[("tdx", True)]
        assert (pool.evictions, pool.respawns) == (0, 0)
        pool.workers[0].vm.destroy()
        self.invoke(gateway, trials=2)
        assert pool.evictions == 1
        assert pool.respawns == 1
