"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestPlatformsCommand:
    def test_lists_all_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("tdx", "sev-snp", "cca", "novm"):
            assert name in out

    def test_marks_simulated(self, capsys):
        main(["platforms"])
        out = capsys.readouterr().out
        assert "(simulated)" in out


class TestInvokeCommand:
    def test_invoke_prints_trials(self, capsys):
        code = main(["invoke", "-f", "factors", "-l", "lua",
                     "-t", "2", "--args", '{"n": 12}'])
        assert code == 0
        out = capsys.readouterr().out
        assert "trial 0" in out and "trial 1" in out
        assert "ms" in out

    def test_invoke_output_payload(self, capsys):
        main(["invoke", "-f", "factors", "-l", "lua", "-t", "1",
              "--args", '{"n": 12}'])
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["result"] == [1, 2, 3, 4, 6, 12]

    def test_invoke_normal_flag(self, capsys):
        assert main(["invoke", "-f", "ack", "-l", "go", "-t", "1",
                     "--normal", "--args", '{"m": 2, "n": 2}']) == 0

    def test_unknown_platform_is_error(self, capsys):
        code = main(["invoke", "-f", "factors", "-l", "lua",
                     "-p", "enclave9000", "-t", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCompareCommand:
    def test_compare_prints_ratio(self, capsys):
        assert main(["compare", "-f", "cpustress", "-l", "lua",
                     "-p", "tdx", "-t", "3"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "overhead" in out

    def test_seed_changes_numbers(self, capsys):
        main(["--seed", "1", "compare", "-f", "cpustress", "-l", "lua",
              "-t", "2"])
        first = capsys.readouterr().out
        main(["--seed", "2", "compare", "-f", "cpustress", "-l", "lua",
              "-t", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_same_seed_is_deterministic(self, capsys):
        main(["--seed", "5", "compare", "-f", "factors", "-l", "go",
              "-t", "2"])
        first = capsys.readouterr().out
        main(["--seed", "5", "compare", "-f", "factors", "-l", "go",
              "-t", "2"])
        second = capsys.readouterr().out
        assert first == second


class TestExperimentCommand:
    def test_fig5_quick(self, capsys):
        assert main(["experiment", "fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "attest" in out and "check" in out

    def test_dbms_quick(self, capsys):
        assert main(["experiment", "dbms", "--quick"]) == 0
        assert "AVERAGE" in capsys.readouterr().out

    def test_fig4_quick(self, capsys):
        assert main(["experiment", "fig4", "--quick"]) == 0
        assert "UnixBench" in capsys.readouterr().out

    def test_fig6_quick(self, capsys):
        assert main(["experiment", "fig6", "--quick"]) == 0
        assert "cpustress" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestArgumentValidation:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invoke_requires_function(self):
        with pytest.raises(SystemExit):
            main(["invoke", "-l", "lua"])


class TestExperimentAll:
    def test_all_quick_reports_findings(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["experiment", "all", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "Fig. 8" in out and "DBMS" in out
        assert "NO" not in out.replace("NOT", "")   # every finding holds


class TestDiffCommand:
    def test_save_and_diff(self, tmp_path, capsys):
        archive = str(tmp_path / "runs.jsonl")
        assert main(["compare", "-f", "factors", "-l", "lua", "-t", "2",
                     "--save", archive, "--label", "before"]) == 0
        assert main(["--seed", "3", "compare", "-f", "factors", "-l", "lua",
                     "-t", "2", "--save", archive, "--label", "after"]) == 0
        capsys.readouterr()
        assert main(["diff", archive, "before", "after"]) == 0
        out = capsys.readouterr().out
        assert "factors/lua on tdx" in out
        assert "%" in out

    def test_diff_missing_label_is_error(self, tmp_path, capsys):
        archive = str(tmp_path / "runs.jsonl")
        main(["compare", "-f", "factors", "-l", "lua", "-t", "1",
              "--save", archive, "--label", "only"])
        capsys.readouterr()
        assert main(["diff", archive, "only", "ghost"]) == 1
        assert "error" in capsys.readouterr().err


class TestWorkloadsCommand:
    def test_lists_all_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("cpustress", "memstress", "iostress", "ack"):
            assert name in out
        assert "[cpu" in out and "[io" in out
