"""Tests for the unified trial-execution pipeline."""

import json

import pytest

from repro.core.resultstore import SpecResultCache
from repro.core.runner import (
    ParallelTrialExecutor,
    RunnerError,
    SerialTrialExecutor,
    TrialPlan,
    TrialRunner,
    TrialSpec,
    execute_trial,
)


def faas_spec(trial=0, seed=0, secure=True, platform="tdx",
              workload="cpustress", runtime="lua"):
    return TrialSpec.make(kind="faas", platform=platform, secure=secure,
                          workload=workload, runtime=runtime,
                          trial=trial, seed=seed)


def small_plan(platform, trials=2, seed=0):
    return TrialPlan.matrix(
        kind="faas", platforms=(platform,), workloads=("cpustress",),
        runtimes=("lua",), trials=trials, seed=seed,
    )


def dump(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


class TestTrialSpec:
    def test_content_hash_stable(self):
        assert faas_spec().content_hash() == faas_spec().content_hash()

    def test_content_hash_sensitive_to_fields(self):
        base = faas_spec()
        assert base.content_hash() != faas_spec(trial=1).content_hash()
        assert base.content_hash() != faas_spec(seed=1).content_hash()
        assert (base.content_hash()
                != faas_spec(secure=False).content_hash())

    def test_params_canonicalised(self):
        a = TrialSpec.make(kind="faas", platform="tdx", secure=True,
                           workload="w", trial=0, seed=0,
                           params={"b": 2, "a": 1})
        b = TrialSpec.make(kind="faas", platform="tdx", secure=True,
                           workload="w", trial=0, seed=0,
                           params={"a": 1, "b": 2})
        assert a.params_json == b.params_json
        assert a.content_hash() == b.content_hash()

    def test_negative_trial_rejected(self):
        with pytest.raises(RunnerError):
            faas_spec(trial=-1)

    def test_derived_seed_independent_of_trial_count(self):
        """Trial K's substream must not move when more trials exist."""
        two = small_plan("tdx", trials=2)
        five = small_plan("tdx", trials=5)
        seeds_two = {(s.trial, s.secure): s.derived_seed() for s in two}
        seeds_five = {(s.trial, s.secure): s.derived_seed() for s in five}
        for key, seed in seeds_two.items():
            assert seeds_five[key] == seed

    def test_derived_seeds_distinct_across_trials(self):
        seeds = {faas_spec(trial=t).derived_seed() for t in range(10)}
        assert len(seeds) == 10


class TestTrialPlan:
    def test_matrix_interleaves_secure_normal(self):
        plan = small_plan("tdx", trials=3)
        flags = [(s.trial, s.secure) for s in plan]
        assert flags == [(0, True), (0, False), (1, True), (1, False),
                         (2, True), (2, False)]

    def test_empty_plan_rejected(self):
        with pytest.raises(RunnerError):
            TrialPlan(specs=())

    def test_plan_hash_order_sensitive(self):
        a, b = faas_spec(trial=0), faas_spec(trial=1)
        assert (TrialPlan(specs=(a, b)).content_hash()
                != TrialPlan(specs=(b, a)).content_hash())


class TestDeterminism:
    @pytest.mark.parametrize("platform", ["tdx", "sev-snp"])
    def test_two_serial_runs_identical(self, platform):
        plan = small_plan(platform)
        assert dump(TrialRunner().run(plan)) == dump(TrialRunner().run(plan))

    @pytest.mark.parametrize("platform", ["tdx", "sev-snp"])
    def test_serial_vs_parallel_identical(self, platform):
        plan = small_plan(platform)
        serial = TrialRunner().run(plan)
        parallel = TrialRunner(jobs=2).run(plan)
        assert dump(serial) == dump(parallel)

    def test_result_independent_of_surrounding_trials(self):
        """A spec's result doesn't depend on what else ran."""
        alone = execute_trial(faas_spec(trial=1))
        plan = small_plan("tdx", trials=3)
        within = TrialRunner().run(plan)
        spec_index = next(i for i, s in enumerate(plan)
                          if s.trial == 1 and s.secure)
        assert within[spec_index].to_dict() == alone.to_dict()


class TestTracing:
    def test_every_result_has_spans(self):
        for result in TrialRunner().run(small_plan("tdx", trials=1)):
            names = [s.name for s in result.trace.roots()]
            assert names == ["boot", "launch", "execute"]

    def test_root_ledger_deltas_sum_to_run_total(self):
        for result in TrialRunner().run(small_plan("tdx", trials=1)):
            assert (result.trace.ledger_total_ns()
                    == pytest.approx(result.ledger.total(), rel=1e-9))


class TestCache:
    def test_cache_hits_skip_execution(self, tmp_path):
        cache = SpecResultCache(tmp_path / "cache.jsonl")
        plan = small_plan("tdx")
        first = TrialRunner(cache=cache).run(plan)
        assert cache.misses == len(plan)

        cache2 = SpecResultCache(tmp_path / "cache.jsonl")

        class Exploding:
            jobs = 1

            def map(self, fn, specs):
                raise AssertionError("cache should have satisfied all specs")

        second = TrialRunner(executor=Exploding(), cache=cache2).run(plan)
        assert cache2.hits == len(plan)
        assert dump(first) == dump(second)

    def test_cache_keyed_by_spec(self, tmp_path):
        cache = SpecResultCache(tmp_path / "cache.jsonl")
        TrialRunner(cache=cache).run(small_plan("tdx", seed=0))
        runner = TrialRunner(cache=cache)
        runner.run(small_plan("tdx", seed=1))
        assert cache.hits == 0


class TestExecutors:
    def test_parallel_rejects_bad_jobs(self):
        with pytest.raises(RunnerError):
            ParallelTrialExecutor(jobs=0)

    def test_parallel_falls_back_serially_for_one_spec(self):
        # jobs > 1 but a single spec: no pool spin-up needed.
        plan = small_plan("tdx", trials=1)
        spec = plan.specs[0]
        result = ParallelTrialExecutor(jobs=4).map(execute_trial, [spec])
        assert result[0].to_dict() == execute_trial(spec).to_dict()

    def test_serial_executor_preserves_order(self):
        plan = small_plan("tdx", trials=2)
        results = SerialTrialExecutor().map(execute_trial, list(plan))
        assert [(r.trial, r.secure) for r in results] == [
            (s.trial, s.secure) for s in plan]


class TestRunnerApi:
    def test_run_cells_groups_by_cell(self):
        plan = small_plan("tdx", trials=2)
        cells = TrialRunner().run_cells(plan)
        assert set(cells) == {("tdx", "cpustress", "lua", True),
                              ("tdx", "cpustress", "lua", False)}
        for results in cells.values():
            assert [r.trial for r in results] == [0, 1]

    def test_run_trials_serial_in_process(self):
        seen = []
        out = TrialRunner(jobs=4).run_trials(3, lambda t: seen.append(t) or t)
        assert out == [0, 1, 2]
        assert seen == [0, 1, 2]

    def test_run_trials_rejects_zero(self):
        with pytest.raises(RunnerError):
            TrialRunner().run_trials(0, lambda t: t)

    def test_unknown_kind_raises(self):
        spec = TrialSpec.make(kind="nope", platform="tdx", secure=True,
                              workload="w", trial=0, seed=0)
        with pytest.raises(RunnerError, match="unknown trial kind"):
            execute_trial(spec)

    def test_history_records_every_run(self):
        runner = TrialRunner()
        plan = small_plan("tdx", trials=1)
        results = runner.run(plan)
        assert runner.history == [(plan, results)]


FAULT_SPEC = ("vm-crash=0.3,slow-trial=0.2,attest-transient=0.2,"
              "pcs-timeout=0.2,seed=11")


class TestFaultInjection:
    def test_zero_rate_plan_is_byte_identical_to_no_faults(self):
        plan = small_plan("tdx", trials=3, seed=4)
        baseline = dump(TrialRunner().run(plan))
        zero = dump(TrialRunner(faults="vm-crash=0").run(plan))
        assert zero == baseline

    def test_serial_and_parallel_bit_identical_under_faults(self):
        plan = small_plan("tdx", trials=4, seed=3)
        serial = TrialRunner(faults=FAULT_SPEC).run(plan)
        parallel = TrialRunner(jobs=4, faults=FAULT_SPEC).run(plan)
        assert dump(serial) == dump(parallel)
        # the fault rates are high enough that something actually fired
        assert any(r.faults_injected for r in serial)

    def test_trial_k_faults_stable_when_trial_count_changes(self):
        short = small_plan("tdx", trials=3, seed=3)
        long = small_plan("tdx", trials=6, seed=3)
        short_results = TrialRunner(faults=FAULT_SPEC).run(short)
        long_results = TrialRunner(faults=FAULT_SPEC).run(long)
        assert dump(short_results) == dump(long_results[:len(short_results)])

    def test_equivalent_fault_spellings_canonicalise(self):
        plan = small_plan("tdx", trials=1)
        a = plan.with_faults("vm-crash=0.1,seed=2")
        b = plan.with_faults(" seed=2 , vm-crash=0.10 ")
        assert a.content_hash() == b.content_hash()

    def test_faulted_specs_hash_differently_but_cleanly(self):
        plan = small_plan("tdx", trials=1)
        faulted = plan.with_faults("vm-crash=0.1")
        assert plan.content_hash() != faulted.content_hash()
        # the unfaulted hash is untouched (old caches stay addressable)
        assert plan.content_hash() == small_plan("tdx", trials=1).content_hash()

    def test_crashed_trials_retry_and_charge_startup(self):
        from repro.sim.ledger import CostCategory

        plan = small_plan("tdx", trials=6, seed=3)
        results = TrialRunner(faults="vm-crash=0.4,seed=7").run(plan)
        retried = [r for r in results if r.attempts > 1 and not r.degraded]
        assert retried, "expected at least one retried trial at rate 0.4"
        for result in retried:
            # waste + backoff land in STARTUP: total_ns grows, the
            # paper metric elapsed_ns does not include them
            breakdown = dict(result.ledger)
            assert breakdown[CostCategory.STARTUP] > 0
            assert result.total_ns > result.elapsed_ns
            names = [span.name for span in result.trace.spans]
            assert "failure" in names and "retry" in names

    def test_exhausted_trials_degrade_never_drop(self):
        plan = small_plan("tdx", trials=8, seed=1)
        results = TrialRunner(faults="vm-crash=1").run(plan)
        assert len(results) == len(plan.specs)
        assert all(r.degraded for r in results)
        assert all(r.output is None for r in results)
        assert all(r.attempts == 3 for r in results)
        # degraded results round-trip through serialisation
        for result in results:
            payload = result.to_dict()
            assert payload["degraded"] is True

    def test_trace_invariant_holds_under_faults(self):
        plan = small_plan("tdx", trials=4, seed=3)
        for result in TrialRunner(faults=FAULT_SPEC).run(plan):
            assert result.trace.ledger_total_ns() == pytest.approx(
                result.ledger.total())

    def test_run_result_round_trips_fault_metadata(self):
        from repro.tee.vm import RunResult

        plan = small_plan("tdx", trials=6, seed=3)
        results = TrialRunner(faults=FAULT_SPEC).run(plan)
        for result in results:
            clone = RunResult.from_dict(result.to_dict())
            assert clone.attempts == result.attempts
            assert clone.faults_injected == result.faults_injected
            assert clone.degraded == result.degraded

    def test_cache_reuses_faulted_results(self, tmp_path):
        cache_file = tmp_path / "cache.jsonl"
        plan = small_plan("tdx", trials=3, seed=3)
        first = TrialRunner(cache=SpecResultCache(cache_file),
                            faults=FAULT_SPEC).run(plan)
        warm_cache = SpecResultCache(cache_file)
        second = TrialRunner(cache=warm_cache, faults=FAULT_SPEC).run(plan)
        assert dump(first) == dump(second)
        assert warm_cache.hits == len(plan.specs)
