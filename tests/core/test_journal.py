"""Tests for the durable trial journal and sweep resume."""

import json

import pytest

from repro.core.journal import JOURNAL_VERSION, TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.errors import GatewayError


def small_plan(trials=2, seed=0, platform="tdx"):
    return TrialPlan.matrix(
        kind="faas", platforms=(platform,), workloads=("cpustress",),
        runtimes=("lua",), trials=trials, seed=seed,
    )


def dump(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


FAULT_SPEC = ("vm-crash=0.3,slow-trial=0.2,attest-transient=0.2,"
              "pcs-timeout=0.2,seed=11")


class TestJournalBasics:
    def test_records_every_trial(self, tmp_path):
        journal = TrialJournal(tmp_path / "sweep.jsonl")
        plan = small_plan(trials=2)
        TrialRunner(journal=journal).run(plan)
        assert journal.recorded == len(plan.specs)
        assert len(journal) == len(plan.specs)
        journal.close()

    def test_header_line_written_first(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with TrialJournal(path) as journal:
            TrialRunner(journal=journal).run(small_plan(trials=1))
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "journal", "version": JOURNAL_VERSION}

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(GatewayError, match="directory does not exist"):
            TrialJournal(tmp_path / "ghost" / "sweep.jsonl")

    def test_directory_path_rejected(self, tmp_path):
        with pytest.raises(GatewayError, match="is a directory"):
            TrialJournal(tmp_path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"kind": "journal", "version": 999}\n')
        with pytest.raises(GatewayError, match="unsupported journal version"):
            TrialJournal(path)

    def test_put_dedupes_by_hash(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        plan = small_plan(trials=1)
        with TrialJournal(path) as journal:
            results = TrialRunner(journal=journal).run(plan)
            for spec, result in zip(plan.specs, results):
                journal.put(spec, result)   # second offer: no-op
            assert journal.recorded == len(plan.specs)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + len(plan.specs)   # header + one per trial


class TestReplayIdentity:
    def test_resumed_serial_run_bit_identical(self, tmp_path):
        plan = small_plan(trials=3)
        baseline = TrialRunner().run(plan)
        with TrialJournal(tmp_path / "j.jsonl") as journal:
            first = TrialRunner(journal=journal).run(plan)
        with TrialJournal(tmp_path / "j.jsonl") as journal:
            replayed = TrialRunner(journal=journal).run(plan)
            assert journal.replayed == len(plan.specs)
            assert journal.recorded == 0
        assert dump(baseline) == dump(first) == dump(replayed)

    def test_resume_midway_executes_only_missing_tail(self, tmp_path):
        """A journal holding a prefix replays it and runs the rest."""
        path = tmp_path / "j.jsonl"
        plan = small_plan(trials=4)
        baseline = TrialRunner().run(plan)
        half = TrialPlan(specs=plan.specs[:4])
        with TrialJournal(path) as journal:
            TrialRunner(journal=journal).run(half)
        with TrialJournal(path) as journal:
            resumed = TrialRunner(journal=journal).run(plan)
            assert journal.replayed == 4
            assert journal.recorded == len(plan.specs) - 4
        assert dump(baseline) == dump(resumed)

    def test_resumed_parallel_run_bit_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        plan = small_plan(trials=4)
        baseline = TrialRunner().run(plan)
        half = TrialPlan(specs=plan.specs[:3])
        with TrialJournal(path) as journal:
            TrialRunner(journal=journal).run(half)
        with TrialJournal(path) as journal:
            resumed = TrialRunner(jobs=4, journal=journal).run(plan)
        assert dump(baseline) == dump(resumed)

    def test_resume_under_faults_bit_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        plan = small_plan(trials=4, seed=3)
        baseline = TrialRunner(faults=FAULT_SPEC).run(plan)
        assert any(r.faults_injected for r in baseline)
        half = TrialPlan(specs=plan.specs[:4])
        with TrialJournal(path) as journal:
            TrialRunner(journal=journal, faults=FAULT_SPEC).run(half)
        with TrialJournal(path) as journal:
            resumed = TrialRunner(journal=journal,
                                  faults=FAULT_SPEC).run(plan)
        assert dump(baseline) == dump(resumed)

    def test_journal_preferred_over_cache(self, tmp_path):
        """Lookup order: journal first, then the spec-result cache."""
        from repro.core.resultstore import SpecResultCache

        plan = small_plan(trials=1)
        cache = SpecResultCache(tmp_path / "cache.jsonl")
        TrialRunner(cache=cache).run(plan)
        with TrialJournal(tmp_path / "j.jsonl") as journal:
            TrialRunner(journal=journal).run(plan)
        cache2 = SpecResultCache(tmp_path / "cache.jsonl")
        with TrialJournal(tmp_path / "j.jsonl") as journal:
            TrialRunner(journal=journal, cache=cache2).run(plan)
            assert journal.replayed == len(plan.specs)
            assert cache2.hits == 0


class TestCrashRecovery:
    def _journaled(self, tmp_path, trials=2):
        path = tmp_path / "j.jsonl"
        plan = small_plan(trials=trials)
        with TrialJournal(path) as journal:
            TrialRunner(journal=journal).run(plan)
        return path, plan

    def test_torn_final_line_truncated_not_fatal(self, tmp_path):
        path, plan = self._journaled(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-30])   # tear the last append mid-line
        with pytest.warns(UserWarning, match="torn final line"):
            journal = TrialJournal(path)
        assert len(journal) == len(plan.specs) - 1
        # the file itself was repaired: reopening is clean
        journal.close()
        clean = TrialJournal(path)
        assert clean.warnings == []
        assert len(clean) == len(plan.specs) - 1
        clean.close()

    def test_torn_line_with_newline_truncated(self, tmp_path):
        """A flushed newline after a half-written JSON doc is torn too."""
        path, plan = self._journaled(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-30] + b"\n")
        with pytest.warns(UserWarning, match="torn final line"):
            journal = TrialJournal(path)
        assert len(journal) == len(plan.specs) - 1
        journal.close()

    def test_corrupt_middle_line_skipped_with_warning(self, tmp_path):
        path, plan = self._journaled(tmp_path)
        lines = path.read_text().splitlines()
        lines.insert(2, "{corrupt")   # after header + first trial
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(UserWarning, match="corrupt journal line"):
            journal = TrialJournal(path)
        assert len(journal) == len(plan.specs)
        assert any("skipped" in note for note in journal.warnings)
        journal.close()

    def test_recovered_journal_still_resumes_identically(self, tmp_path):
        path, plan = self._journaled(tmp_path, trials=3)
        baseline = TrialRunner().run(plan)
        raw = path.read_bytes()
        path.write_bytes(raw[:-25])
        with pytest.warns(UserWarning):
            journal = TrialJournal(path)
        with journal:
            resumed = TrialRunner(journal=journal).run(plan)
            # the torn trial re-executed, the rest replayed
            assert journal.recorded == 1
            assert journal.replayed == len(plan.specs) - 1
        assert dump(baseline) == dump(resumed)

    def test_appends_after_recovery_land_on_clean_boundary(self, tmp_path):
        path, plan = self._journaled(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-30])
        with pytest.warns(UserWarning):
            journal = TrialJournal(path)
        with journal:
            TrialRunner(journal=journal).run(plan)
        for line in path.read_text().splitlines():
            json.loads(line)   # every line is whole again
