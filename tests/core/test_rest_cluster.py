"""The ``/v1/cluster/*`` and ``/v1/kbs/release`` REST surface.

Runs a real server on an ephemeral port and exercises the new routes
against the uniform envelope: 200 on the happy paths, 404 before any
sweep, 400 on strict-field violations, 405 on wrong methods, 403 with
``release_denied`` + the broker's typed ``reason`` on refused key
release, and 429 when a second sweep arrives mid-run.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.client import ConfBenchClient
from repro.core.cluster.control import ClusterControl
from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.gateway import Gateway
from repro.core.rest import RestServer
from repro.errors import GatewayError, OverloadedError


@pytest.fixture(scope="module")
def server():
    config = GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="xeon", base_port=9700),
    ], default_trials=1)
    with RestServer(Gateway(config), port=0) as rest:
        yield rest


@pytest.fixture(scope="module")
def client(server):
    return ConfBenchClient(port=server.port)


def call(server, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class TestClusterRoutes:
    def test_report_404_before_any_sweep(self, server):
        status, _headers, payload = call(server, "GET",
                                         "/v1/cluster/report")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_run_then_report(self, server, client):
        report = client.cluster_run(hosts=2, requests=300,
                                    rate_rps=1_500.0)
        assert report["requests"] == 300
        assert report["served"] > 0
        assert client.cluster_report() == report

    def test_supply_policy_rides_the_sweep(self, server, client):
        report = client.cluster_run(hosts=2, requests=300,
                                    rate_rps=1_500.0, strategy="lazy")
        assert report["supply"]["lazy_boots"] > 0
        assert report["supply"]["chunk_faults"] > 0

    def test_unknown_field_is_strict_400(self, server):
        status, _headers, payload = call(server, "POST",
                                         "/v1/cluster/run",
                                         {"bogus": 1})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "bogus" in payload["error"]["message"]

    def test_bad_strategy_is_400(self, server):
        status, _headers, payload = call(server, "POST",
                                         "/v1/cluster/run",
                                         {"strategy": "psychic"})
        assert status == 400
        assert "psychic" in payload["error"]["message"]

    def test_wrong_method_is_405_with_allow(self, server):
        status, headers, payload = call(server, "GET", "/v1/cluster/run")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert payload["error"]["code"] == "method_not_allowed"

    def test_concurrent_sweep_is_shed_429(self):
        control = ClusterControl()
        with control._run_lock:
            with pytest.raises(OverloadedError) as excinfo:
                control.run({"hosts": 2, "requests": 200})
            assert excinfo.value.retry_after_ns > 0.0
        assert control.shed == 1
        # once the running sweep drains, the retry succeeds
        assert control.run({"hosts": 2, "requests": 200})["served"] > 0

    def test_429_envelope_carries_retry_after(self, server):
        gateway = server.gateway
        control = gateway.cluster()
        with control._run_lock:
            status, headers, payload = call(
                server, "POST", "/v1/cluster/run",
                {"hosts": 2, "requests": 200})
        assert status == 429
        assert payload["error"]["code"] == "overloaded"
        assert payload["error"]["retry_after_ns"] > 0
        assert int(headers["Retry-After"]) >= 1


class TestKbsRoute:
    def test_release_and_resume(self, server, client):
        first = client.kbs_release("vm-1")
        assert first["released"]
        assert not first["resumed"]
        second = client.kbs_release("vm-1")
        assert second["resumed"]
        assert second["tier"] == "session"
        assert second["released"] == first["released"]

    def test_denied_attestation_is_403_release_denied(self, server):
        status, _headers, payload = call(
            server, "POST", "/v1/kbs/release",
            {"vm_id": "vm-evil", "tamper_evidence": True})
        assert status == 403
        assert payload["error"]["code"] == "release_denied"
        assert payload["error"]["reason"] == "attestation"

    def test_unknown_key_is_403_with_reason(self, server):
        status, _headers, payload = call(
            server, "POST", "/v1/kbs/release",
            {"vm_id": "vm-1", "key_ids": ["ghost"]})
        assert status == 403
        assert payload["error"]["reason"] == "unknown_key"

    def test_client_surfaces_denial_as_gateway_error(self, server, client):
        with pytest.raises(GatewayError, match="release_denied"):
            client.kbs_release("vm-2", tamper_evidence=True)

    def test_missing_vm_id_is_400(self, server):
        status, _headers, payload = call(server, "POST",
                                         "/v1/kbs/release", {})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_unsupported_platform_is_400(self, server):
        status, _headers, payload = call(
            server, "POST", "/v1/kbs/release",
            {"vm_id": "vm-1", "platform": "novm"})
        assert status == 400
        assert "novm" in payload["error"]["message"]


class TestFacade:
    def test_confbench_cluster_accessor(self):
        from repro.core.api import ConfBench

        bench = ConfBench(seed=3)
        control = bench.cluster()
        assert control is bench.cluster()  # one lazy instance
        report = control.run({"hosts": 2, "requests": 200})
        assert control.report() == report
