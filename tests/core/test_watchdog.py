"""Tests for trial budgets and the parallel-executor watchdog.

The chaos bodies below register themselves as trial kinds and then
kill or hang their own worker process; the tests always drive them
through :class:`ParallelTrialExecutor` with an explicit ``fork``
context (so the in-test registrations are inherited) and at least two
specs (so the executor does not take its serial fast path inside the
pytest process).
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core.runner import (
    ParallelTrialExecutor,
    RunnerError,
    TrialPlan,
    TrialRunner,
    TrialSpec,
    body_factory,
    execute_trial,
)
from repro.errors import TrialBudgetError
from repro.sim.ledger import CostCategory
from repro.sim.faults import FaultKind

FORK = multiprocessing.get_context("fork")


def faas_spec(trial=0, seed=0, budget_ns=0.0):
    return TrialSpec.make(kind="faas", platform="tdx", secure=True,
                          workload="cpustress", runtime="lua",
                          trial=trial, seed=seed, budget_ns=budget_ns)


def small_plan(trials=2, seed=0):
    return TrialPlan.matrix(
        kind="faas", platforms=("tdx",), workloads=("cpustress",),
        runtimes=("lua",), trials=trials, seed=seed,
    )


def dump(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


@body_factory("chaos-kill")
def _chaos_kill_body(spec):
    """SIGKILL the worker on first execution, run clean afterwards.

    ``sentinel`` (a path in the spec params) marks "already died once";
    ``mode=always`` kills unconditionally — the poison pill no respawn
    can save.
    """
    sentinel = spec.params["sentinel"]
    mode = spec.params.get("mode", "once")

    def body(kernel):
        if mode == "always" or not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return {"survived": True}

    return body


@body_factory("chaos-hang")
def _chaos_hang_body(spec):
    """Hang the worker (wall clock) on first execution."""
    sentinel = spec.params["sentinel"]

    def body(kernel):
        if not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            time.sleep(600)   # far beyond any test timeout: only the
                              # watchdog's pool kill gets us out
        return {"survived": True}

    return body


@body_factory("chaos-faas")
def _chaos_faas_body(spec):
    """Deterministic seeded work that SIGKILLs its worker once mid-sweep.

    Unlike ``chaos-kill`` this body produces a *non-trivial* result —
    seeded draws, a fault-plan coin flip, a ledger charge — so the
    resume tests below can assert bit-identity of real payloads, not
    just survival.  ``kill_trial`` picks which trial murders its
    worker (guarded by ``sentinel`` so the respawned attempt runs
    clean and converges on the uninterrupted result).
    """
    sentinel = spec.params["sentinel"]
    kill_trial = spec.params.get("kill_trial", -1)

    def body(kernel):
        ctx = kernel.ctx
        # the factory is memoized without the trial index, so the body
        # recovers it from the trial's rng stream label (".../{trial}")
        trial = int(ctx.rng.label.rsplit("/", 1)[1])
        if trial == kill_trial and not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        draws = [ctx.rng.child(f"work/{i}").uniform(0.0, 1.0)
                 for i in range(4)]
        slow = bool(ctx.faults is not None
                    and ctx.faults.triggers(FaultKind.PCS_TIMEOUT, "/chaos"))
        ctx.charge(CostCategory.CPU,
                   5_000_000.0 * (2.0 if slow else 1.0) * (1.0 + sum(draws)))
        return {"draws": draws, "slow": slow}

    return body


def chaos_spec(kind, tmp_path, trial=0, **params):
    params = {"sentinel": str(tmp_path / f"sentinel-{trial}"), **params}
    return TrialSpec.make(kind=kind, platform="tdx", secure=True,
                          workload="chaos", trial=trial, seed=0,
                          params=params)


class TestTrialBudget:
    def test_negative_budget_rejected(self):
        with pytest.raises(RunnerError):
            faas_spec(budget_ns=-1.0)

    def test_zero_budget_does_not_change_hash(self):
        assert (faas_spec(budget_ns=0.0).content_hash()
                == faas_spec().content_hash())

    def test_budget_changes_hash(self):
        assert (faas_spec(budget_ns=1e9).content_hash()
                != faas_spec().content_hash())

    def test_generous_budget_result_identical(self):
        plain = execute_trial(faas_spec())
        budgeted = execute_trial(faas_spec(budget_ns=plain.total_ns * 10))
        assert budgeted.to_dict() == plain.to_dict()

    def test_tiny_budget_degrades_without_faults(self):
        result = execute_trial(faas_spec(budget_ns=1.0))
        assert result.degraded
        assert result.output is None
        # the watchdog fires at the deadline: the doomed attempt burned
        # exactly the budget, charged as startup waste
        assert result.total_ns == pytest.approx(1.0)
        names = [span.name for span in result.trace.spans]
        assert "failure" in names

    def test_budget_exhaustion_retries_under_faults(self):
        # an *active* fault plan (nonzero rate) selects the retry path;
        # the budget bust then counts as a retryable failure per attempt
        from dataclasses import replace

        from repro.sim.faults import FaultPlan

        spec = replace(
            faas_spec(budget_ns=1.0),
            faults=FaultPlan.parse("vm-crash=0.001,seed=1").to_spec(),
        )
        result = execute_trial(spec)
        assert result.degraded
        assert result.attempts == 3   # every attempt re-busts the budget

    def test_runner_budget_applies_to_whole_plan(self):
        results = TrialRunner(budget_ns=1.0).run(small_plan(trials=2))
        assert all(r.degraded for r in results)

    def test_budgeted_serial_vs_parallel_identical(self):
        plan = small_plan(trials=2)
        serial = TrialRunner(budget_ns=1.0).run(plan)
        parallel = TrialRunner(jobs=2, budget_ns=1.0).run(plan)
        assert dump(serial) == dump(parallel)

    def test_budget_error_carries_waste(self):
        error = TrialBudgetError("over", wasted_ns=42.0)
        assert error.wasted_ns == 42.0


class TestWorkerDeathRespawn:
    def test_dead_worker_respawned_and_work_completes(self, tmp_path):
        specs = [chaos_spec("chaos-kill", tmp_path, trial=0),
                 chaos_spec("chaos-kill", tmp_path, trial=1)]
        executor = ParallelTrialExecutor(jobs=2, mp_context=FORK)
        results = executor.map(execute_trial, specs)
        assert len(results) == 2
        assert [r.output for r in results] == [{"survived": True}] * 2
        # both workers really did die once
        assert all(os.path.exists(s.params["sentinel"]) for s in specs)

    def test_poison_spec_surfaces_pending_trial_names(self, tmp_path):
        specs = [chaos_spec("chaos-kill", tmp_path, trial=0, mode="always"),
                 chaos_spec("chaos-kill", tmp_path, trial=1)]
        executor = ParallelTrialExecutor(jobs=2, mp_context=FORK,
                                         max_respawns=1)
        with pytest.raises(RunnerError, match=r"pending trials: chaos#0"):
            executor.map(execute_trial, specs)

    def test_results_survive_from_journal_after_respawn(self, tmp_path):
        """The journal re-derives completed work across a pool respawn."""
        from repro.core.journal import TrialJournal

        plan = TrialPlan(specs=(
            chaos_spec("chaos-kill", tmp_path, trial=0),
            chaos_spec("chaos-kill", tmp_path, trial=1),
        ))
        with TrialJournal(tmp_path / "j.jsonl") as journal:
            runner = TrialRunner(journal=journal)
            runner.executor = ParallelTrialExecutor(jobs=2, mp_context=FORK)
            results = runner.run(plan)
            assert journal.recorded == 2
        assert all(r.output == {"survived": True} for r in results)


class TestResumeUnderFaults:
    """``--resume`` journal replay across a pool-watchdog respawn.

    The sweep runs under an *active* :class:`FaultPlan` (nonzero
    rates, so the retry path is selected) while one trial SIGKILLs its
    worker mid-sweep.  The watchdog respawns the pool, the journal
    preserves the completed prefix, and both the recovered sweep and a
    later journal-only resume must be bit-identical to an
    uninterrupted run.
    """

    FAULTS = "vm-crash=0.3,pcs-timeout=0.5,seed=7"

    def faulted_plan(self, tmp_path, trials=4, kill_trial=2):
        shared = str(tmp_path / "sentinel-shared")
        specs = tuple(
            chaos_spec("chaos-faas", tmp_path, trial=t,
                       kill_trial=kill_trial, sentinel=shared)
            for t in range(trials)
        )
        # params feed the content hash, so the sentinel path must be
        # identical across runs for the journal to recognize the specs
        return TrialPlan(specs=specs).with_faults(self.FAULTS)

    def test_resumed_sweep_bit_identical_to_uninterrupted(self, tmp_path):
        from repro.core.journal import TrialJournal

        plan = self.faulted_plan(tmp_path)
        sentinel = plan.specs[0].params["sentinel"]

        # uninterrupted baseline: pre-arm the sentinel so nothing dies
        with open(sentinel, "w"):
            pass
        baseline = dump(TrialRunner().run(plan))
        os.unlink(sentinel)

        # interrupted run: trial 2 SIGKILLs its worker mid-sweep; the
        # watchdog respawns the pool and the sweep completes
        with TrialJournal(tmp_path / "sweep.jsonl") as journal:
            runner = TrialRunner(journal=journal)
            runner.executor = ParallelTrialExecutor(jobs=2, mp_context=FORK)
            recovered = dump(runner.run(plan))
            assert journal.recorded == len(plan.specs)
        assert os.path.exists(sentinel)   # the worker really died once
        assert recovered == baseline

        # resume: a fresh runner against the same journal replays all
        # trials without executing anything (sentinel stays un-rearmed,
        # so any re-execution of trial 2 would kill its worker again)
        os.unlink(sentinel)
        with TrialJournal(tmp_path / "sweep.jsonl") as journal:
            resumed = dump(TrialRunner(journal=journal).run(plan))
            assert journal.replayed == len(plan.specs)
            assert journal.recorded == 0
        assert not os.path.exists(sentinel)   # proof: nothing re-ran
        assert resumed == baseline

    def test_faults_actually_active_in_resumed_results(self, tmp_path):
        # guard against the fault plan silently not applying: the
        # sweep's results must carry injected-fault records
        plan = self.faulted_plan(tmp_path, kill_trial=-1)
        results = TrialRunner().run(plan)
        assert any(r.faults_injected for r in results)
        assert any(r.output["slow"] for r in results)


class TestHeartbeatWatchdog:
    def test_bad_heartbeat_rejected(self):
        with pytest.raises(RunnerError):
            ParallelTrialExecutor(jobs=2, heartbeat_s=0.0)

    def test_bad_max_respawns_rejected(self):
        with pytest.raises(RunnerError):
            ParallelTrialExecutor(jobs=2, max_respawns=-1)

    def test_hung_worker_killed_and_work_retried(self, tmp_path):
        specs = [chaos_spec("chaos-hang", tmp_path, trial=0),
                 chaos_spec("chaos-hang", tmp_path, trial=1)]
        executor = ParallelTrialExecutor(jobs=2, mp_context=FORK,
                                         heartbeat_s=1.0)
        results = executor.map(execute_trial, specs)
        assert [r.output for r in results] == [{"survived": True}] * 2

    def test_permanently_stalled_pool_gives_up_loudly(self, tmp_path):
        # with max_respawns=0 the very first missed heartbeat is fatal:
        # the executor reports the stall instead of respawning
        specs = [chaos_spec("chaos-hang", tmp_path, trial=0),
                 chaos_spec("chaos-hang", tmp_path, trial=1)]
        executor = ParallelTrialExecutor(jobs=2, mp_context=FORK,
                                         heartbeat_s=0.5, max_respawns=0)
        with pytest.raises(RunnerError, match="no worker heartbeat"):
            executor.map(execute_trial, specs)
