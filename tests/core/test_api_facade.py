"""The redesigned ConfBench facade: uniform signatures + telemetry."""

import warnings

import pytest

from repro.core import gateway as gateway_module
from repro.core.api import ConfBench
from repro.core.config import GatewayConfig, PlatformEntry
from repro.errors import GatewayError


def small_config(default_trials=2):
    return GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="xeon", base_port=9700),
        PlatformEntry(platform="novm", host="xeon", base_port=9800),
    ], default_trials=default_trials)


@pytest.fixture
def bench():
    bench = ConfBench(config=small_config())
    bench.upload("cpustress")
    return bench


@pytest.fixture(autouse=True)
def reset_warn_once():
    gateway_module._WARNED.clear()
    yield
    gateway_module._WARNED.clear()


class TestUniformTrialsSemantics:
    def test_invoke_trials_none_runs_config_default(self, bench):
        records = bench.invoke("cpustress", "lua")
        assert len(records) == 2

    def test_invoke_explicit_trials(self, bench):
        assert len(bench.invoke("cpustress", "lua", trials=3)) == 3

    def test_run_classic_trials_none_runs_config_default(self, bench):
        records = bench.run_classic("probe", lambda kernel: kernel.sys_getpid())
        assert len(records) == 2

    def test_invalid_trials_rejected(self, bench):
        with pytest.raises(GatewayError, match="trials must be >= 1"):
            bench.invoke("cpustress", "lua", trials=0)

    def test_measure_overhead_keywords(self, bench):
        summary = bench.measure_overhead("cpustress", "lua", trials=1)
        assert summary.ratio > 0


class TestLegacyPositionalShim:
    def test_positional_platform_warns_once(self, bench):
        with pytest.warns(DeprecationWarning, match="positional platform"):
            records = bench.invoke("cpustress", "lua", "tdx", False,
                                   None, 1)
        assert records[0].secure is False
        # the second identical call is silent (warn-once)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bench.invoke("cpustress", "lua", "tdx", False, None, 1)

    def test_keyword_calls_do_not_warn(self, bench):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bench.invoke("cpustress", "lua", platform="tdx", trials=1)

    def test_too_many_positionals_is_type_error(self, bench):
        with pytest.raises(TypeError, match="at most 4"):
            bench.invoke("cpustress", "lua", "tdx", True, None, 1, "extra")

    def test_positional_keyword_conflict_is_type_error(self, bench):
        with pytest.raises(TypeError, match="multiple values"), \
                warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            bench.invoke("cpustress", "lua", "tdx", platform="sev-snp")

    def test_invoke_native_shim_delegates(self, bench):
        with pytest.warns(DeprecationWarning, match="invoke_native"):
            records = bench.gateway.invoke_native(
                "probe", lambda kernel: kernel.sys_getpid(), "tdx", True, 2)
        assert len(records) == 2


class TestFacadeTelemetry:
    def test_metrics_snapshot_after_invocations(self, bench):
        bench.invoke("cpustress", "lua", trials=2)
        snapshot = bench.metrics()
        assert snapshot["counters"]["run.tdx.secure.trials"] == 2
        assert snapshot == bench.gateway.metrics.snapshot()

    def test_trace_covers_every_run(self, bench):
        bench.invoke("cpustress", "lua", trials=2)
        bench.invoke("cpustress", "lua", secure=False, trials=1)
        exporter = bench.trace()
        assert len(exporter) == 3
        labels = [record.label for record in exporter.records]
        assert "cpustress@tdx/secure#0" in labels
        assert "cpustress@tdx/normal#0" in labels

    def test_profile_total_matches_run_ledgers(self, bench):
        bench.invoke("cpustress", "lua", trials=2)
        profile = bench.profile()
        assert profile.trials == 2
        assert profile.total_ns == pytest.approx(
            sum(run.ledger.total() for run in bench.gateway.run_log))

    def test_classic_runs_feed_telemetry_too(self, bench):
        bench.run_classic("probe", lambda kernel: kernel.sys_getpid(),
                          trials=1)
        assert bench.profile().trials == 1
        assert bench.metrics()["counters"]["run.tdx.secure.trials"] == 1
