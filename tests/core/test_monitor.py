"""PerfMonitor collection, including the missing-counter regression."""

from types import SimpleNamespace

import pytest

from repro.core.monitor import (
    HARDWARE_EVENTS,
    SOFTWARE_EVENTS,
    PerfMonitor,
)
from repro.errors import MonitorError


def fake_platform(supports_counters):
    info = SimpleNamespace(supports_perf_counters=supports_counters)
    return SimpleNamespace(info=lambda: info)


def fake_result(counters, elapsed_ns=1000.0):
    return SimpleNamespace(
        counters=SimpleNamespace(as_dict=lambda: dict(counters)),
        elapsed_ns=elapsed_ns,
    )


class TestCollect:
    def test_hardware_platform_reports_perf_stat(self):
        monitor = PerfMonitor(platform=fake_platform(True))
        counters = {key: index for index, key
                    in enumerate(HARDWARE_EVENTS, start=1)}
        report = monitor.collect(fake_result(counters))
        assert report.source == "perf-stat"
        assert report.events == counters
        assert report.wallclock_ns == 1000.0

    def test_software_platform_reports_custom_script(self):
        monitor = PerfMonitor(platform=fake_platform(False))
        report = monitor.collect(
            fake_result({"context_switches": 3, "page_faults": 2,
                         "instructions": 10**6}))
        assert report.source == "custom-script"
        assert set(report.events) == set(SOFTWARE_EVENTS)

    def test_missing_counter_defaults_to_zero(self):
        """Regression: a counter source lacking an event (older cache,
        degraded run, synthetic result) must not raise KeyError."""
        monitor = PerfMonitor(platform=fake_platform(True))
        report = monitor.collect(fake_result({"instructions": 42}))
        assert report.events["instructions"] == 42
        assert report.events["bounce_buffer_bytes"] == 0
        assert set(report.events) == set(HARDWARE_EVENTS)

    def test_missing_counter_defaults_to_zero_software_path(self):
        monitor = PerfMonitor(platform=fake_platform(False))
        report = monitor.collect(fake_result({}))
        assert report.events == {key: 0 for key in SOFTWARE_EVENTS}


class TestCustomScripts:
    def test_scripts_feed_extra(self):
        monitor = PerfMonitor(platform=fake_platform(True))
        monitor.register_script("double", lambda r: r.elapsed_ns * 2)
        report = monitor.collect(fake_result({}, elapsed_ns=5.0))
        assert report.extra == {"double": 10.0}

    def test_duplicate_script_rejected(self):
        monitor = PerfMonitor(platform=fake_platform(True))
        monitor.register_script("x", lambda r: 0.0)
        with pytest.raises(MonitorError, match="already registered"):
            monitor.register_script("x", lambda r: 0.0)
