"""End-to-end sweeps through the :class:`ClusterGateway`.

The contract under test is the one the resilience layer exists for:
**conservation** (every request finalizes exactly once — served,
degraded, or shed-with-record — under any fault geometry) and
**determinism** (a sweep is a pure function of (profiles, traffic,
seed, plan)).
"""

import pytest

from repro.core.cluster import ClusterGateway, TrafficSpec, build_fleet
from repro.core.runner import TrialPlan, TrialRunner, TrialSpec
from repro.errors import GatewayError
from repro.obs.metrics import MetricsRegistry
from repro.sim.faults import FaultContext, FaultPlan

AGGRESSIVE = "host-crash=0.9,zone-partition=0.8,degraded-host=0.8,collateral-outage=0.8,seed=3"


def sweep(requests=4000, rate_rps=2000.0, hosts=6, seed=0, faults=None,
          process="poisson", **gateway_kwargs):
    gateway = ClusterGateway(build_fleet(hosts), seed=seed,
                             faults=faults, **gateway_kwargs)
    report = gateway.run(TrafficSpec(process=process, requests=requests,
                                     rate_rps=rate_rps))
    return gateway, report


class TestConservation:
    def test_calm_sweep_conserves_and_serves(self):
        _, report = sweep(requests=2000, rate_rps=800.0)
        assert report.conserved
        assert report.requests == 2000
        assert report.served > 0.9 * report.requests

    @pytest.mark.parametrize("process", ["poisson", "diurnal", "burst"])
    def test_faulted_sweep_conserves(self, process):
        _, report = sweep(faults=FaultPlan.parse(AGGRESSIVE),
                          process=process)
        assert report.conserved
        assert report.faults_injected       # geometry actually landed

    def test_single_host_crash_flushes_everything(self):
        # the whole "fleet" dies mid-sweep: every request still ends
        # in a bucket (the probe machine flushes the queue as degraded)
        _, report = sweep(hosts=1, requests=1000, rate_rps=500.0,
                          faults=FaultPlan.parse("host-crash=1.0,seed=2"))
        assert report.conserved
        assert report.degraded > 0

    def test_overload_sheds_with_records(self):
        _, report = sweep(hosts=2, requests=3000, rate_rps=6000.0,
                          queue_cap=50)
        assert report.conserved
        assert report.shed > 0
        assert report.shed_records          # bounded sample, never empty
        for rid, hint in report.shed_records:
            assert hint > 0.0


class TestDeterminism:
    def test_same_seed_identical_report(self):
        _, a = sweep(faults=FaultPlan.parse(AGGRESSIVE))
        _, b = sweep(faults=FaultPlan.parse(AGGRESSIVE))
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_the_sweep(self):
        _, a = sweep(seed=0)
        _, b = sweep(seed=1)
        assert a.to_dict() != b.to_dict()

    def test_report_dict_is_sorted_and_json_safe(self):
        import json
        _, report = sweep(requests=500, rate_rps=500.0)
        payload = report.to_dict()
        assert list(payload) == sorted(payload)
        json.dumps(payload)     # no exotic types


class TestResilienceMachinery:
    def test_crash_detected_and_hedge_rescues_in_flight_work(self):
        # moderate crash pressure with spare capacity: the suspect
        # transition hedges the hung requests before dead-detection
        _, report = sweep(hosts=8, requests=12_000, rate_rps=600.0,
                          faults=FaultPlan.parse("host-crash=0.5,seed=3"))
        assert report.conserved
        assert report.health["died"] > 0
        assert report.health["probes_missed"] > 0
        assert report.hedges > 0

    def test_dead_detection_fails_over_unhedged_work(self):
        # same geometry at a rate where hedges cannot all land: the
        # DEAD transition re-places what is still stuck on the corpse
        _, report = sweep(hosts=8, requests=12_000, rate_rps=1000.0,
                          faults=FaultPlan.parse("host-crash=0.5,seed=3"))
        assert report.conserved
        assert report.failovers > 0

    def test_partition_delays_delivery_then_recovers(self):
        _, report = sweep(hosts=6, requests=8_000, rate_rps=1000.0,
                          faults=FaultPlan.parse(
                              "zone-partition=1.0,seed=5"))
        assert report.conserved
        assert report.partition_delayed > 0
        assert report.health["recovered"] > 0

    def test_retry_budget_bounds_spending(self):
        gateway, report = sweep(faults=FaultPlan.parse(AGGRESSIVE),
                                retry_floor=5, retry_ratio=0.0)
        assert report.retries_spent <= 5

    def test_warm_pool_amortizes_cold_boots(self):
        # at a rate the fleet absorbs comfortably, pools stay stocked
        # and warm starts dominate (higher rates churn 25 functions
        # through bounded pools and the warm share drops — by design)
        _, report = sweep(requests=4000, rate_rps=400.0)
        assert report.warm_starts > 2 * report.cold_boots

    def test_brownout_drops_telemetry_before_shedding(self):
        _, report = sweep(hosts=2, requests=4000, rate_rps=4000.0,
                          queue_cap=100)
        assert report.telemetry_dropped > 0
        transitions = report.brownout["transitions_drop_telemetry"]
        assert transitions > 0

    def test_fault_context_shares_injected_log(self):
        plan = FaultPlan.parse(AGGRESSIVE)
        context = FaultContext(plan, "trial-0")
        gateway = ClusterGateway(build_fleet(6), seed=0, faults=context)
        report = gateway.run(TrafficSpec(requests=1000, rate_rps=1000.0))
        assert context.injected == report.faults_injected
        assert all("@" in entry for entry in context.injected)


class TestGatewayLifecycle:
    def test_run_is_one_shot(self):
        gateway, _ = sweep(requests=100, rate_rps=1000.0)
        with pytest.raises(GatewayError):
            gateway.run(TrafficSpec(requests=100))

    def test_needs_at_least_one_host(self):
        with pytest.raises(GatewayError):
            ClusterGateway(())

    def test_emit_folds_into_metrics(self):
        _, report = sweep(requests=500, rate_rps=500.0)
        registry = MetricsRegistry()
        report.emit(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cluster.requests"] == 500
        assert any(key.startswith("cluster.utilization.")
                   for key in snapshot["gauges"])


class TestClusterTrialBody:
    """The ``kind="cluster"`` body: ctx-derived seed and faults."""

    def spec(self, trial=0, requests=1500):
        return TrialSpec.make(
            kind="cluster", platform="tdx", secure=True,
            workload="poisson", trial=trial, seed=0,
            params={"hosts": 4, "requests": requests,
                    "rate_rps": 1000.0})

    def test_body_runs_and_conserves(self):
        results = TrialRunner().run(TrialPlan(specs=(self.spec(),)))
        output = results[0].output
        assert output["conserved"] is True
        assert output["requests"] == 1500

    def test_trials_decorrelated_but_reproducible(self):
        plan = TrialPlan(specs=(self.spec(0), self.spec(1)))
        first = TrialRunner().run(plan)
        second = TrialRunner().run(plan)
        assert first[0].to_dict() == second[0].to_dict()
        assert first[0].output != first[1].output

    def test_plan_faults_flow_into_the_sweep(self):
        plan = TrialPlan(specs=(self.spec(),)).with_faults(
            "host-crash=1.0,seed=4")
        results = TrialRunner().run(plan)
        assert results[0].output["conserved"] is True
        assert any(entry.startswith("host-crash@")
                   for entry in results[0].faults_injected)

    def test_serial_vs_parallel_bit_identical(self):
        import json
        plan = TrialPlan(specs=(self.spec(0), self.spec(1))).with_faults(
            "host-crash=0.5,zone-partition=0.5,seed=6")
        serial = TrialRunner().run(plan)
        parallel = TrialRunner(jobs=2).run(plan)
        assert (json.dumps([r.to_dict() for r in serial], sort_keys=True)
                == json.dumps([r.to_dict() for r in parallel],
                              sort_keys=True))
