"""Gateway shed → HTTP 429 with a deterministic retry hint.

Covers the brownout contract at the REST edge: a gateway whose
cross-invocation backlog is at capacity refuses the newcomer with
:class:`~repro.errors.OverloadedError`, the REST layer maps it to a
429 envelope carrying ``retry_after_ns`` plus a ``Retry-After``
header, and the client honors the hint (bounded wait + retry) before
surfacing the error.  Single-invocation semantics are unchanged:
per-trial index shedding still applies, and an idle gateway never
429s.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.client import ConfBenchClient
from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.gateway import SHED_RETRY_NS_PER_TRIAL, Gateway, \
    InvocationRequest
from repro.core.rest import RestServer
from repro.errors import OverloadedError


def make_gateway(max_pending=None) -> Gateway:
    config = GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="xeon", base_port=9700),
    ], default_trials=2)
    gateway = Gateway(config, max_pending=max_pending)
    gateway.upload("cpustress")
    return gateway


def invoke_request(trials=1) -> InvocationRequest:
    return InvocationRequest(function="cpustress", language="python",
                             platform="tdx", trials=trials)


class TestAdmission:
    def test_idle_gateway_never_refuses(self):
        gateway = make_gateway(max_pending=2)
        records = gateway.invoke(invoke_request(trials=5))
        # per-trial shedding by index is untouched: trials 2..4 shed
        assert [r.shed for r in records] == [False, False, True, True, True]
        assert gateway.stats.invocations_rejected == 0

    def test_full_backlog_refuses_with_hint(self):
        gateway = make_gateway(max_pending=2)
        gateway._backlog_trials = 2   # a concurrent invocation's trials
        with pytest.raises(OverloadedError) as info:
            gateway.invoke(invoke_request(trials=3))
        # excess = backlog + trials - max_pending = 3
        assert info.value.retry_after_ns == 3 * SHED_RETRY_NS_PER_TRIAL
        assert gateway.stats.invocations_rejected == 1
        snapshot = gateway.metrics.snapshot()
        assert snapshot["counters"]["gateway.invocations_rejected"] == 1

    def test_hint_is_deterministic(self):
        hints = []
        for _ in range(2):
            gateway = make_gateway(max_pending=4)
            gateway._backlog_trials = 4
            with pytest.raises(OverloadedError) as info:
                gateway.invoke(invoke_request(trials=2))
            hints.append(info.value.retry_after_ns)
        assert hints[0] == hints[1] == 2 * SHED_RETRY_NS_PER_TRIAL

    def test_backlog_drains_after_invocation(self):
        gateway = make_gateway(max_pending=8)
        gateway.invoke(invoke_request(trials=2))
        assert gateway._backlog_trials == 0

    def test_unbounded_gateway_skips_accounting(self):
        gateway = make_gateway()
        gateway.invoke(invoke_request(trials=2))
        assert gateway._backlog_trials == 0
        assert gateway.stats.invocations_rejected == 0


class TestRest429:
    @pytest.fixture()
    def server(self):
        with RestServer(make_gateway(max_pending=2), port=0) as rest:
            yield rest

    @staticmethod
    def call(server, body):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/invoke",
            data=json.dumps(body).encode(), method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, dict(response.headers), \
                    json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())

    def test_full_backlog_maps_to_429(self, server):
        server.gateway._backlog_trials = 2
        status, headers, payload = self.call(
            server, {"function": "cpustress", "language": "python",
                     "trials": 1})
        assert status == 429
        error = payload["error"]
        assert error["code"] == "overloaded"
        assert error["retry_after_ns"] == 1 * SHED_RETRY_NS_PER_TRIAL
        # the header mirrors the hint in whole (ceil) seconds, min 1
        assert headers["Retry-After"] == "1"

    def test_drained_backlog_serves_again(self, server):
        server.gateway._backlog_trials = 2
        assert self.call(server, {"function": "cpustress",
                                  "language": "python", "trials": 1})[0] == 429
        server.gateway._backlog_trials = 0
        status, _, records = self.call(
            server, {"function": "cpustress", "language": "python",
                     "trials": 1})
        assert status == 200
        assert len(records) == 1


class TestClientHonorsHint:
    """The client waits out retry_after_ns (capped) and retries."""

    class RecoveringGateway(Gateway):
        """Refuses the first ``refusals`` invokes, then serves."""

        def __init__(self, *args, refusals=1, **kwargs):
            super().__init__(*args, **kwargs)
            self.refusals = refusals
            self.invoke_calls = 0

        def invoke(self, request):
            self.invoke_calls += 1
            if self.invoke_calls <= self.refusals:
                raise OverloadedError(
                    "backlog at capacity",
                    retry_after_ns=20_000_000.0)   # 20 ms
            return super().invoke(request)

    def serve(self, refusals):
        config = GatewayConfig(entries=[
            PlatformEntry(platform="tdx", host="xeon", base_port=9700),
        ], default_trials=1)
        gateway = self.RecoveringGateway(config, refusals=refusals)
        gateway.upload("cpustress")
        return RestServer(gateway, port=0)

    def test_client_retries_through_one_429(self):
        with self.serve(refusals=1) as rest:
            client = ConfBenchClient(port=rest.port, overload_retries=2,
                                     max_retry_wait_s=0.05)
            records = client.invoke("cpustress", "python", trials=1)
            assert len(records) == 1
            assert rest.gateway.invoke_calls == 2

    def test_client_surfaces_exhausted_retries(self):
        with self.serve(refusals=10) as rest:
            client = ConfBenchClient(port=rest.port, overload_retries=1,
                                     max_retry_wait_s=0.01)
            with pytest.raises(OverloadedError) as info:
                client.invoke("cpustress", "python", trials=1)
            assert info.value.retry_after_ns == 20_000_000.0
            assert rest.gateway.invoke_calls == 2   # original + 1 retry

    def test_zero_retries_fails_fast(self):
        with self.serve(refusals=10) as rest:
            client = ConfBenchClient(port=rest.port, overload_retries=0)
            with pytest.raises(OverloadedError):
                client.invoke("cpustress", "python", trials=1)
            assert rest.gateway.invoke_calls == 1
