"""Tests for the structured span trace."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.ledger import CostCategory, CostLedger
from repro.sim.trace import Span, Trace


class FakeCtx:
    """The minimal surface Trace.span brackets: a clock and a ledger."""

    def __init__(self):
        self.clock = VirtualClock()
        self.ledger = CostLedger()

    def charge(self, category, nanos):
        self.clock.advance(nanos)
        self.ledger.charge(category, nanos)


class TestSpan:
    def test_duration(self):
        span = Span(name="x", start_ns=10.0, end_ns=35.0)
        assert span.duration_ns == 25.0

    def test_ledger_ns_sums_breakdown(self):
        span = Span(name="x", start_ns=0.0, end_ns=1.0,
                    breakdown={"cpu": 3.0, "io": 4.0})
        assert span.ledger_ns == 7.0

    def test_to_dict_shape(self):
        span = Span(name="x", start_ns=1.0, end_ns=4.0,
                    breakdown={"cpu": 3.0}, parent="execute")
        payload = span.to_dict()
        assert payload["name"] == "x"
        assert payload["parent"] == "execute"
        assert payload["duration_ns"] == 3.0
        assert payload["breakdown"] == {"cpu": 3.0}


class TestTrace:
    def test_span_brackets_clock_and_ledger(self):
        ctx = FakeCtx()
        trace = Trace()
        ctx.charge(CostCategory.CPU, 5.0)
        with trace.span("work", ctx):
            ctx.charge(CostCategory.CPU, 10.0)
            ctx.charge(CostCategory.IO_READ, 2.0)
        span = trace.find("work")
        assert span.start_ns == 5.0
        assert span.end_ns == 17.0
        assert span.breakdown == {"cpu": 10.0, "io_read": 2.0}
        assert span.ledger_ns == 12.0

    def test_nested_spans_get_parent(self):
        ctx = FakeCtx()
        trace = Trace()
        with trace.span("outer", ctx):
            ctx.charge(CostCategory.CPU, 1.0)
            with trace.span("inner", ctx):
                ctx.charge(CostCategory.CPU, 2.0)
        assert trace.find("inner").parent == "outer"
        assert trace.find("outer").parent is None
        assert [s.name for s in trace.roots()] == ["outer"]
        assert [s.name for s in trace.children("outer")] == ["inner"]

    def test_ledger_total_counts_only_roots(self):
        ctx = FakeCtx()
        trace = Trace()
        with trace.span("outer", ctx):
            with trace.span("inner", ctx):
                ctx.charge(CostCategory.CPU, 7.0)
            ctx.charge(CostCategory.IO_READ, 3.0)
        # inner's charges are inside outer; counting both would double.
        assert trace.ledger_total_ns() == 10.0

    def test_record_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            Trace().record("boot", 10.0, 5.0)

    def test_find_missing_raises(self):
        with pytest.raises(SimulationError):
            Trace().find("nope")

    def test_record_and_roundtrip(self):
        trace = Trace()
        trace.record("boot", 0.0, 9.0, breakdown={"cpu": 9.0})
        rebuilt = Trace()
        for span in trace.to_list():
            rebuilt.record(span["name"], span["start_ns"], span["end_ns"],
                           breakdown=span["breakdown"],
                           parent=span["parent"])
        assert rebuilt.to_list() == trace.to_list()

    def test_iteration_and_len(self):
        trace = Trace()
        trace.record("a", 0.0, 1.0)
        trace.record("b", 1.0, 2.0)
        assert len(trace) == 2
        assert [s.name for s in trace] == ["a", "b"]
