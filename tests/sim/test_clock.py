"""Tests for the virtual clock."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import (
    VirtualClock,
    ms_to_ns,
    ns_to_ms,
    ns_to_seconds,
    seconds_to_ns,
    us_to_ns,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_custom_time(self):
        assert VirtualClock(500.0).now() == 500.0

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now() == 350.0

    def test_advance_returns_new_time(self):
        clock = VirtualClock(10)
        assert clock.advance(5) == 15.0

    def test_advance_zero_is_allowed(self):
        clock = VirtualClock(7)
        clock.advance(0)
        assert clock.now() == 7.0

    def test_advance_rejects_negative(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-1)

    def test_advance_rejects_nan(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(float("nan"))

    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(1000)
        assert clock.now() == 1000.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(1000)
        clock.advance_to(500)
        assert clock.now() == 1000.0

    def test_now_seconds(self):
        clock = VirtualClock()
        clock.advance(2_500_000_000)
        assert clock.now_seconds() == pytest.approx(2.5)

    def test_repr_mentions_time(self):
        assert "123" in repr(VirtualClock(123))


class TestConversions:
    def test_ns_to_ms(self):
        assert ns_to_ms(2_000_000) == 2.0

    def test_ns_to_seconds(self):
        assert ns_to_seconds(1_500_000_000) == 1.5

    def test_seconds_to_ns(self):
        assert seconds_to_ns(0.25) == 250_000_000

    def test_ms_to_ns(self):
        assert ms_to_ns(3) == 3_000_000

    def test_us_to_ns(self):
        assert us_to_ns(4) == 4_000

    def test_round_trip(self):
        assert ns_to_seconds(seconds_to_ns(1.23)) == pytest.approx(1.23)
