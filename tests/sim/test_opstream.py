"""The batched op-stream kernel: OpBatch, CostVector, accumulate."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.ledger import CostCategory, CostLedger
from repro.sim.opstream import (
    CATEGORIES,
    BatchLedger,
    CostVector,
    Op,
    OpBatch,
    accumulate,
)


class TestOpBatch:
    def test_coalesces_consecutive_identical_sequences(self):
        batch = OpBatch()
        op = Op("cpu", (100, 10, 0))
        batch.add(op)
        batch.add(op, 4)
        batch.add_seq((op,), 2)
        assert len(batch) == 1
        assert batch.entries == [((op,), 7)]
        assert batch.op_count() == 7

    def test_distinct_sequences_stay_ordered(self):
        batch = OpBatch()
        a, b = Op("cpu", (1, 0, 0)), Op("mem_alloc", (64,))
        batch.add(a)
        batch.add(b)
        batch.add(a)
        assert [ops for ops, _ in batch.entries] == [(a,), (b,), (a,)]

    def test_zero_count_and_empty_sequence_are_noops(self):
        batch = OpBatch()
        batch.add(Op("cpu", (1, 0, 0)), 0)
        batch.add_seq((), 5)
        assert not batch
        assert len(batch) == 0

    def test_negative_count_raises(self):
        with pytest.raises(SimulationError):
            OpBatch().add(Op("cpu", (1, 0, 0)), -1)


class TestCostVector:
    def test_add_and_get(self):
        vector = CostVector()
        vector.add(CostCategory.CPU, 5.0)
        vector.add(CostCategory.CPU, 2.5)
        assert vector.get(CostCategory.CPU) == 7.5
        assert vector.get(CostCategory.IO_READ) == 0.0

    def test_add_scaled_is_elementwise(self):
        first, second = CostVector(), CostVector()
        second.add(CostCategory.CPU, 3.0)
        second.add(CostCategory.IO_READ, 1.0)
        first.add_scaled(second, 4.0)
        assert first.get(CostCategory.CPU) == 12.0
        assert first.get(CostCategory.IO_READ) == 4.0

    def test_negative_add_raises(self):
        with pytest.raises(SimulationError):
            CostVector().add(CostCategory.CPU, -1.0)

    def test_as_mapping_skips_zero_slots(self):
        vector = CostVector()
        vector.add(CostCategory.SYSCALL, 9.0)
        assert vector.as_mapping() == {CostCategory.SYSCALL: 9.0}

    def test_total_covers_all_slots(self):
        vector = CostVector()
        vector.add(CostCategory.CPU, 1.0)
        vector.add(CostCategory.IO_READ, 2.0)
        assert vector.total() == pytest.approx(3.0)

    def test_fallback_list_backend_matches(self, monkeypatch):
        import repro.sim.opstream as opstream

        monkeypatch.setattr(opstream, "_np", None)
        vector = CostVector()
        assert isinstance(vector._values, list)
        vector.add(CostCategory.CPU, 5.0)
        other = CostVector()
        other.add(CostCategory.CPU, 1.5)
        vector.add_scaled(other, 2.0)
        assert vector.get(CostCategory.CPU) == 8.0
        assert len(vector._values) == len(CATEGORIES)


class TestAccumulate:
    def run_per_op(self, program, sim_mult, run_noise, sigma, rng):
        """Reference implementation: one charge at a time."""
        totals: dict[CostCategory, float] = {}
        order: list[CostCategory] = []
        now = 0.0
        for pattern, count in program:
            for _ in range(count):
                for category, raw in pattern:
                    scaled = raw * sim_mult * run_noise
                    if sigma > 0:
                        scaled *= math.exp(rng.gauss(0.0, sigma))
                    if category not in totals:
                        totals[category] = 0.0
                        order.append(category)
                    totals[category] += scaled
                    now += scaled
        return [(category, totals[category]) for category in order], now

    def test_matches_per_op_reference_bit_for_bit(self):
        program = [
            (((CostCategory.CPU, 120.0), (CostCategory.MEM_ACCESS, 30.0)), 500),
            (((CostCategory.SYSCALL, 410.0),), 1000),
            (((CostCategory.CPU, 7.5),), 250),
        ]
        expected_items, expected_now = self.run_per_op(
            program, 1.7, 1.003, 0.02, random.Random(99))
        items, now, total = accumulate(
            program, 1.7, 1.003, 0.02, random.Random(99),
            lambda category: 0.0, 0.0)
        assert items == expected_items      # exact float equality
        assert now == expected_now
        assert total == pytest.approx(now)

    def test_sigma_zero_draws_nothing(self):
        rng = random.Random(5)
        before = rng.getstate()
        items, now, total = accumulate(
            [(((CostCategory.CPU, 10.0),), 3)], 2.0, 1.0, 0.0, rng,
            lambda category: 0.0, 100.0)
        assert rng.getstate() == before
        assert items == [(CostCategory.CPU, 60.0)]
        assert now == 160.0

    def test_sigma_zero_folds_not_multiplies(self):
        # repeated addition must not be reassociated into base * count
        base = 0.1 * 3.0 * 1.0
        folded = 0.0
        for _ in range(7):
            folded += base
        items, _, _ = accumulate(
            [(((CostCategory.CPU, 0.1),), 7)], 3.0, 1.0, 0.0,
            random.Random(0), lambda category: 0.0, 0.0)
        assert items[0][1] == folded
        assert items[0][1] != base * 7 or folded == base * 7

    def test_seeds_from_initial_ledger_values(self):
        items, now, _ = accumulate(
            [(((CostCategory.CPU, 1.0),), 2)], 1.0, 1.0, 0.0,
            random.Random(0), lambda category: 1000.0, 50.0)
        assert items == [(CostCategory.CPU, 1002.0)]
        assert now == 52.0

    def test_gauss_pair_cache_interleaves_with_method_calls(self):
        # Box-Muller yields pairs; a batch consuming an odd number of
        # draws must leave the cached second half for the next caller
        program = [(((CostCategory.CPU, 10.0),), 3)]
        reference = random.Random(42)
        expected = [reference.gauss(0.0, 1.0) for _ in range(4)]

        rng = random.Random(42)
        accumulate([(((CostCategory.CPU, 10.0),), 3)], 1.0, 1.0, 1.0,
                   rng, lambda category: 0.0, 0.0)
        # three draws consumed; the fourth must continue the stream
        assert rng.gauss(0.0, 1.0) == expected[3]

    def test_negative_charge_raises(self):
        with pytest.raises(SimulationError):
            accumulate([(((CostCategory.CPU, -1.0),), 1)], 1.0, 1.0, 0.0,
                       random.Random(0), lambda category: 0.0, 0.0)

    def test_nan_charge_raises(self):
        with pytest.raises(SimulationError):
            accumulate([(((CostCategory.CPU, float("nan")),), 1)],
                       1.0, 1.0, 0.0, random.Random(0),
                       lambda category: 0.0, 0.0)


class TestBatchLedger:
    def test_commits_to_ledger_and_clock(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 100.0)
        clock = VirtualClock()
        clock.advance(100.0)
        staged = BatchLedger(ledger, clock, sim_mult=2.0, run_noise=1.0,
                             sigma=0.0, rng=random.Random(1))
        total = staged.run([(((CostCategory.CPU, 5.0),), 4)])
        assert total == 40.0
        assert ledger.get(CostCategory.CPU) == 140.0
        assert clock.now() == 140.0

    def test_apply_batch_preserves_insertion_order(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.IO_READ, 1.0)
        staged = BatchLedger(ledger, VirtualClock(), 1.0, 1.0, 0.0,
                             random.Random(1))
        staged.run([
            (((CostCategory.CPU, 2.0), (CostCategory.IO_READ, 3.0)), 1),
        ])
        assert [category for category, _ in ledger] == [
            CostCategory.IO_READ, CostCategory.CPU]
