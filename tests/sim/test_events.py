"""Tests for the discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(100, lambda: fired.append("late"))
        loop.schedule(50, lambda: fired.append("early"))
        loop.run()
        assert fired == ["early", "late"]

    def test_ties_run_in_insertion_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10, lambda: fired.append("first"))
        loop.schedule(10, lambda: fired.append("second"))
        loop.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        loop.schedule(123, lambda: None)
        loop.run()
        assert loop.clock.now() == 123.0

    def test_schedule_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        loop = EventLoop(VirtualClock(100))
        fired = []
        loop.schedule_at(150, lambda: fired.append(True))
        loop.run()
        assert fired == [True]
        assert loop.clock.now() == 150.0

    def test_schedule_at_rejects_past(self):
        loop = EventLoop(VirtualClock(100))
        with pytest.raises(SimulationError):
            loop.schedule_at(50, lambda: None)

    def test_run_returns_event_count(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(i, lambda: None)
        assert loop.run() == 5


class TestCancellation:
    def test_cancelled_events_skip(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(10, lambda: fired.append("a"))
        loop.schedule(20, lambda: fired.append("b"))
        event.cancel()
        loop.run()
        assert fired == ["b"]

    def test_pending_ignores_cancelled(self):
        loop = EventLoop()
        event = loop.schedule(10, lambda: None)
        loop.schedule(20, lambda: None)
        event.cancel()
        assert loop.pending() == 1


class TestRunBounds:
    def test_run_until_stops_early(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10, lambda: fired.append("in"))
        loop.schedule(100, lambda: fired.append("out"))
        loop.run(until_ns=50)
        assert fired == ["in"]
        assert loop.clock.now() == 50.0
        assert loop.pending() == 1

    def test_self_rescheduling_hits_max_events(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(1, reschedule)

        loop.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_step_empty_returns_none(self):
        assert EventLoop().step() is None

    def test_chained_events_see_advanced_clock(self):
        loop = EventLoop()
        times = []

        def outer():
            times.append(loop.clock.now())
            loop.schedule(5, lambda: times.append(loop.clock.now()))

        loop.schedule(10, outer)
        loop.run()
        assert times == [10.0, 15.0]


class TestLeanEventQueue:
    def test_pops_in_time_then_insertion_order(self):
        from repro.sim.events import LeanEventQueue

        queue = LeanEventQueue()
        queue.push(100.0, 1, "late")
        queue.push(50.0, 2, "early")
        queue.push(100.0, 3, "late-second")
        popped = [queue.pop() for _ in range(3)]
        assert [(t, k, p) for t, _, k, p in popped] == [
            (50.0, 2, "early"),
            (100.0, 1, "late"),
            (100.0, 3, "late-second"),
        ]

    def test_payloads_never_compared(self):
        # ties break on the unique sequence number, so unorderable
        # payloads (plain objects) are safe at identical timestamps
        from repro.sim.events import LeanEventQueue

        queue = LeanEventQueue()
        queue.push(1.0, 0, object())
        queue.push(1.0, 0, object())
        queue.pop()
        queue.pop()

    def test_peek_len_and_truthiness(self):
        from repro.sim.events import LeanEventQueue

        queue = LeanEventQueue()
        assert queue.peek_time_ns() is None
        assert not queue and len(queue) == 0
        queue.push(7.0, 0, None)
        assert queue.peek_time_ns() == 7.0
        assert queue and len(queue) == 1
