"""Unit tests for the seeded fault-injection substrate."""

import pytest

from repro.errors import SimulationError
from repro.sim.faults import (
    CRASH_WASTE_SCALE_NS,
    BreakerState,
    CircuitBreaker,
    FailureLog,
    FaultContext,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.sim.trace import Trace


class TestFaultKind:
    def test_parse_round_trips_every_kind(self):
        for kind in FaultKind:
            assert FaultKind.parse(kind.value) is kind

    def test_parse_rejects_unknown(self):
        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultKind.parse("disk-melt")


class TestFaultPlan:
    def test_zero_rate_never_fires(self):
        plan = FaultPlan(rates={FaultKind.VM_CRASH: 0.0})
        assert not plan.active
        assert not any(
            plan.triggers(FaultKind.VM_CRASH, f"t{i}") for i in range(200)
        )

    def test_rate_one_always_fires(self):
        plan = FaultPlan(rates={FaultKind.VM_CRASH: 1.0})
        assert all(
            plan.triggers(FaultKind.VM_CRASH, f"t{i}") for i in range(50)
        )

    def test_triggers_is_pure_function_of_seed_kind_label(self):
        plan = FaultPlan(seed=7, rates={FaultKind.VM_CRASH: 0.5})
        first = [plan.triggers(FaultKind.VM_CRASH, f"t{i}") for i in range(100)]
        # asking again, in any order, reproduces the same decisions
        second = [
            plan.triggers(FaultKind.VM_CRASH, f"t{i}")
            for i in reversed(range(100))
        ]
        assert first == list(reversed(second))

    def test_kinds_draw_independent_substreams(self):
        plan = FaultPlan(seed=3, rates={FaultKind.VM_CRASH: 0.5,
                                        FaultKind.SLOW_TRIAL: 0.5})
        crash = [plan.triggers(FaultKind.VM_CRASH, f"t{i}") for i in range(64)]
        slow = [plan.triggers(FaultKind.SLOW_TRIAL, f"t{i}")
                for i in range(64)]
        assert crash != slow

    def test_empirical_rate_near_nominal(self):
        plan = FaultPlan(seed=1, rates={FaultKind.PCS_TIMEOUT: 0.3})
        hits = sum(
            plan.triggers(FaultKind.PCS_TIMEOUT, f"t{i}") for i in range(2000)
        )
        assert 0.25 < hits / 2000 < 0.35

    def test_validation(self):
        with pytest.raises(SimulationError, match="slow-factor"):
            FaultPlan(slow_factor=0.5)
        with pytest.raises(SimulationError, match="rate for vm-crash"):
            FaultPlan(rates={FaultKind.VM_CRASH: 1.5})
        with pytest.raises(SimulationError, match="keyed by FaultKind"):
            FaultPlan(rates={"vm-crash": 0.5})

    def test_crash_waste_is_bounded_and_deterministic(self):
        plan = FaultPlan(seed=5)
        waste = plan.crash_waste_ns("trial/x")
        assert 0.1 * CRASH_WASTE_SCALE_NS <= waste <= CRASH_WASTE_SCALE_NS
        assert waste == plan.crash_waste_ns("trial/x")
        assert waste != plan.crash_waste_ns("trial/y")


class TestSpecParsing:
    def test_parse_and_canonical_round_trip(self):
        plan = FaultPlan.parse("pcs-timeout=0.1, vm-crash=0.05 ,seed=9")
        assert plan.seed == 9
        assert plan.rate(FaultKind.VM_CRASH) == 0.05
        assert plan.rate(FaultKind.PCS_TIMEOUT) == 0.1
        canonical = plan.to_spec()
        assert canonical == "vm-crash=0.05,pcs-timeout=0.1,seed=9"
        assert FaultPlan.parse(canonical) == plan

    def test_parse_passthrough_and_slow_factor(self):
        plan = FaultPlan.parse("slow-trial=0.2,slow-factor=5")
        assert FaultPlan.parse(plan) is plan
        assert plan.slow_factor == 5.0
        assert "slow-factor=5" in plan.to_spec()

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(SimulationError, match="expected key=value"):
            FaultPlan.parse("vm-crash")
        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultPlan.parse("disk-melt=0.1")
        with pytest.raises(SimulationError, match="bad fault spec value"):
            FaultPlan.parse("vm-crash=lots")

    def test_empty_spec_is_inactive(self):
        plan = FaultPlan.parse("")
        assert not plan.active
        assert plan.to_spec() == ""


class TestFaultContext:
    def test_records_fired_injections(self):
        ctx = FaultContext(FaultPlan(rates={FaultKind.VM_CRASH: 1.0}), "s")
        assert ctx.triggers(FaultKind.VM_CRASH, "execute")
        assert not ctx.triggers(FaultKind.SLOW_TRIAL, "slow")
        assert ctx.injected == ["vm-crash@execute"]

    def test_scoped_child_shares_log_but_narrows_labels(self):
        plan = FaultPlan(seed=2, rates={FaultKind.PCS_TIMEOUT: 1.0})
        parent = FaultContext(plan, "request")
        child = parent.scoped("verify/a0")
        assert child.scope == "request/verify/a0"
        child.triggers(FaultKind.PCS_TIMEOUT, "/tcb")
        assert parent.injected == ["pcs-timeout@/tcb"]


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_ns=10.0, backoff_factor=3.0)
        assert policy.backoff_ns(0) == 10.0
        assert policy.backoff_ns(2) == 90.0

    def test_allows_bounds_attempts_and_deadline(self):
        policy = RetryPolicy(max_attempts=2, deadline_ns=100.0)
        assert policy.allows(0, 0.0)
        assert policy.allows(1, 99.0)
        assert not policy.allows(2, 0.0)
        assert not policy.allows(1, 100.0)

    def test_deadline_boundary_is_exclusive(self):
        # The deadline is a budget, not a timestamp: an attempt that
        # would start with the budget exactly exhausted is refused.
        # spent_ns == deadline_ns must behave like spent > deadline,
        # and the next representable float below must still pass.
        policy = RetryPolicy(max_attempts=10, deadline_ns=1_000_000.0)
        import math
        just_under = math.nextafter(1_000_000.0, 0.0)
        assert policy.allows(0, just_under)
        assert not policy.allows(0, 1_000_000.0)
        assert not policy.allows(0, math.nextafter(1_000_000.0, math.inf))

    def test_zero_deadline_refuses_even_first_retry_window(self):
        # Degenerate budget: with deadline_ns=0 nothing may start at
        # spent_ns=0.0 (0 >= 0), while deadline_ns=None is unbounded.
        assert not RetryPolicy(deadline_ns=0.0).allows(0, 0.0)
        assert RetryPolicy(deadline_ns=None).allows(0, 1e18)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_factor=0.5)


class TestFailureLog:
    def test_surcharge_sums_waste_and_backoff(self):
        log = FailureLog()
        log.add("VmCrashError", wasted_ns=100.0, backoff_ns=10.0)
        log.add("CollateralTimeoutError", backoff_ns=20.0)
        assert len(log) == 2
        assert log.surcharge_ns == 130.0

    def test_rejects_negative_accounting(self):
        with pytest.raises(SimulationError):
            FailureLog().add("x", wasted_ns=-1.0)

    def test_replay_emits_failure_and_retry_spans(self):
        log = FailureLog()
        log.add("VmCrashError", wasted_ns=100.0, backoff_ns=10.0)
        trace = Trace()
        cursor = log.replay(trace)
        assert cursor == 110.0
        names = [span.name for span in trace.spans]
        assert names == ["failure", "retry"]
        # spans are laid out sequentially and carry startup breakdowns
        assert trace.spans[0].end_ns == trace.spans[1].start_ns == 100.0
        assert trace.ledger_total_ns() == 110.0


class TestCircuitBreaker:
    def _tripped(self, **kwargs):
        """A breaker driven to OPEN by consecutive failures at t=0."""
        breaker = CircuitBreaker("dep", **kwargs)
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(0.0)
        return breaker

    def test_validation(self):
        with pytest.raises(SimulationError, match="failure threshold"):
            CircuitBreaker("dep", failure_threshold=0)
        with pytest.raises(SimulationError, match="cooldown"):
            CircuitBreaker("dep", cooldown_ns=0.0)
        with pytest.raises(SimulationError, match="jitter"):
            CircuitBreaker("dep", jitter=1.0)

    def test_closed_allows_and_success_resets_failures(self):
        breaker = CircuitBreaker("dep", failure_threshold=3)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        # the success reset the streak: still two short of the threshold
        assert breaker.state is BreakerState.CLOSED

    def test_opens_at_threshold_and_short_circuits(self):
        breaker = self._tripped(failure_threshold=3)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(1.0)
        assert not breaker.allow(2.0)
        assert breaker.shorted == 2

    def test_half_open_probe_after_cooldown(self):
        breaker = self._tripped(cooldown_ns=100.0, jitter=0.0)
        assert not breaker.allow(99.0)
        assert breaker.allow(100.0)          # the single probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(101.0)      # second caller refused

    def test_probe_success_closes(self):
        breaker = self._tripped(cooldown_ns=100.0, jitter=0.0)
        assert breaker.allow(100.0)
        breaker.record_success(100.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(101.0)

    def test_probe_failure_reopens(self):
        breaker = self._tripped(cooldown_ns=100.0, jitter=0.0)
        assert breaker.allow(100.0)
        breaker.record_failure(100.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(150.0)
        assert breaker.open_count == 2

    def test_cooldown_jitter_is_seeded_and_deterministic(self):
        draws = []
        for _ in range(2):
            breaker = self._tripped(seed=7, cooldown_ns=100.0, jitter=0.5)
            draws.append(breaker._cooldown_draw_ns)
        assert draws[0] == draws[1]
        assert 100.0 <= draws[0] < 150.0
        other = self._tripped(seed=8, cooldown_ns=100.0, jitter=0.5)
        assert other._cooldown_draw_ns != draws[0]

    def test_clock_regression_rearms_cooldown(self):
        # a fresh trial context restarts virtual time at 0; the breaker
        # must not treat the past-epoch trip as an elapsed cooldown
        breaker = self._tripped(cooldown_ns=100.0, jitter=0.0)
        breaker._opened_at_ns = 500.0
        assert not breaker.allow(10.0)       # re-armed from t=10
        assert not breaker.allow(109.0)
        assert breaker.allow(110.0)

    def test_transitions_marked_on_trace(self):
        trace = Trace()
        breaker = CircuitBreaker("pcs", cooldown_ns=100.0, jitter=0.0,
                                 failure_threshold=1, trace=trace)
        breaker.record_failure(0.0)
        breaker.allow(100.0)
        breaker.record_success(100.0)
        marks = [span.name for span in trace.spans]
        assert marks == ["breaker/pcs/open", "breaker/pcs/half-open",
                         "breaker/pcs/closed"]
        assert all(span.duration_ns == 0.0 for span in trace.spans)


class TestClusterFaultGeometry:
    """event_at_ns / window_ns: the cluster layer's timeline faults."""

    HORIZON = 1_000_000.0

    def plan(self, rate=1.0, seed=0):
        return FaultPlan(seed=seed, rates={FaultKind.HOST_CRASH: rate,
                                           FaultKind.ZONE_PARTITION: rate})

    def test_zero_rate_yields_no_geometry(self):
        plan = self.plan(rate=0.0)
        assert plan.event_at_ns(FaultKind.HOST_CRASH, "h0",
                                self.HORIZON) is None
        assert plan.window_ns(FaultKind.ZONE_PARTITION, "z0",
                              self.HORIZON) is None

    def test_event_lands_inside_the_middle_of_the_horizon(self):
        plan = self.plan()
        for label in ("host-00", "host-01", "host-02"):
            at = plan.event_at_ns(FaultKind.HOST_CRASH, label,
                                  self.HORIZON)
            assert 0.10 * self.HORIZON <= at <= 0.90 * self.HORIZON

    def test_window_bounded_by_scale_and_horizon(self):
        plan = self.plan()
        for label in ("zone-a", "zone-b", "zone-c"):
            start, end = plan.window_ns(FaultKind.ZONE_PARTITION, label,
                                        self.HORIZON)
            assert 0.05 * self.HORIZON <= start <= 0.70 * self.HORIZON
            assert start < end <= self.HORIZON
            assert (end - start
                    <= FaultPlan.WINDOW_SCALE * self.HORIZON + 1e-6)

    def test_geometry_is_pure_function_of_inputs(self):
        first = self.plan(seed=9).event_at_ns(
            FaultKind.HOST_CRASH, "h0", self.HORIZON)
        again = self.plan(seed=9).event_at_ns(
            FaultKind.HOST_CRASH, "h0", self.HORIZON)
        assert first == again
        other_label = self.plan(seed=9).event_at_ns(
            FaultKind.HOST_CRASH, "h1", self.HORIZON)
        assert first != other_label

    def test_position_independent_of_trigger_stream(self):
        # the placement substream is separate from the Bernoulli one,
        # so a plan where the fault *happens* to fire at a low rate
        # puts it at the same spot as a rate-1.0 plan
        low = FaultPlan(seed=4, rates={FaultKind.HOST_CRASH: 0.9999})
        high = FaultPlan(seed=4, rates={FaultKind.HOST_CRASH: 1.0})
        assert (low.event_at_ns(FaultKind.HOST_CRASH, "hX", self.HORIZON)
                == high.event_at_ns(FaultKind.HOST_CRASH, "hX",
                                    self.HORIZON))

    def test_cluster_kinds_parse_from_spec_strings(self):
        plan = FaultPlan.parse("host-crash=0.3,zone-partition=0.2,"
                               "degraded-host=0.4,collateral-outage=0.1")
        assert plan.rate(FaultKind.HOST_CRASH) == 0.3
        assert plan.rate(FaultKind.ZONE_PARTITION) == 0.2
        assert plan.rate(FaultKind.DEGRADED_HOST) == 0.4
        assert plan.rate(FaultKind.COLLATERAL_OUTAGE) == 0.1
