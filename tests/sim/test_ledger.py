"""Tests for the cost ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.ledger import CostCategory, CostLedger


class TestCharge:
    def test_empty_ledger_total_is_zero(self):
        assert CostLedger().total() == 0.0

    def test_single_charge(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 42.0)
        assert ledger.get(CostCategory.CPU) == 42.0

    def test_charges_accumulate(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 10.0)
        ledger.charge(CostCategory.CPU, 5.0)
        assert ledger.get(CostCategory.CPU) == 15.0

    def test_get_unknown_category_is_zero(self):
        assert CostLedger().get(CostCategory.IO_READ) == 0.0

    def test_rejects_negative_charge(self):
        with pytest.raises(SimulationError):
            CostLedger().charge(CostCategory.CPU, -1.0)

    def test_rejects_nan_charge(self):
        with pytest.raises(SimulationError):
            CostLedger().charge(CostCategory.CPU, float("nan"))

    def test_total_spans_categories(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 10.0)
        ledger.charge(CostCategory.IO_READ, 20.0)
        assert ledger.total() == 30.0


class TestExclusion:
    def test_total_excluding_startup(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 100.0)
        ledger.charge(CostCategory.STARTUP, 1000.0)
        assert ledger.total_excluding(CostCategory.STARTUP) == 100.0

    def test_total_excluding_multiple(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 1.0)
        ledger.charge(CostCategory.STARTUP, 2.0)
        ledger.charge(CostCategory.NETWORK, 4.0)
        assert ledger.total_excluding(
            CostCategory.STARTUP, CostCategory.NETWORK
        ) == 1.0


class TestMergeAndCopy:
    def test_merge_adds_charges(self):
        a, b = CostLedger(), CostLedger()
        a.charge(CostCategory.CPU, 1.0)
        b.charge(CostCategory.CPU, 2.0)
        b.charge(CostCategory.SYSCALL, 3.0)
        a.merge(b)
        assert a.get(CostCategory.CPU) == 3.0
        assert a.get(CostCategory.SYSCALL) == 3.0

    def test_merge_leaves_source_unchanged(self):
        a, b = CostLedger(), CostLedger()
        b.charge(CostCategory.CPU, 2.0)
        a.merge(b)
        assert b.total() == 2.0

    def test_copy_is_independent(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 1.0)
        clone = ledger.copy()
        clone.charge(CostCategory.CPU, 1.0)
        assert ledger.get(CostCategory.CPU) == 1.0
        assert clone.get(CostCategory.CPU) == 2.0


class TestAnalysis:
    def test_fractions_sum_to_one(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 30.0)
        ledger.charge(CostCategory.IO_WRITE, 70.0)
        fractions = ledger.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[CostCategory.IO_WRITE] == pytest.approx(0.7)

    def test_fractions_empty(self):
        assert CostLedger().fractions() == {}

    def test_dominant(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 1.0)
        ledger.charge(CostCategory.BOUNCE_BUFFER, 10.0)
        assert ledger.dominant() is CostCategory.BOUNCE_BUFFER

    def test_dominant_empty(self):
        assert CostLedger().dominant() is None

    def test_iteration_and_len(self):
        ledger = CostLedger()
        ledger.charge(CostCategory.CPU, 1.0)
        ledger.charge(CostCategory.SYSCALL, 2.0)
        assert len(ledger) == 2
        assert dict(ledger)[CostCategory.SYSCALL] == 2.0


@given(
    charges=st.lists(
        st.tuples(
            st.sampled_from(list(CostCategory)),
            st.floats(min_value=0, max_value=1e12, allow_nan=False),
        ),
        max_size=50,
    )
)
def test_total_equals_sum_of_charges(charges):
    """Property: ledger total always equals the sum of charges made."""
    ledger = CostLedger()
    for category, nanos in charges:
        ledger.charge(category, nanos)
    assert ledger.total() == pytest.approx(sum(n for _, n in charges))


@given(
    charges=st.lists(
        st.tuples(
            st.sampled_from(list(CostCategory)),
            st.floats(min_value=0, max_value=1e12, allow_nan=False),
        ),
        max_size=30,
    )
)
def test_merge_preserves_total(charges):
    """Property: merging ledgers adds their totals."""
    a, b = CostLedger(), CostLedger()
    for i, (category, nanos) in enumerate(charges):
        (a if i % 2 else b).charge(category, nanos)
    expected = a.total() + b.total()
    a.merge(b)
    assert a.total() == pytest.approx(expected)
