"""Tests for the deterministic random streams."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SimRng, derive_seed


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = SimRng(42), SimRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a, b = SimRng(1), SimRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_labels_give_independent_streams(self):
        a = SimRng(42, "tdx")
        b = SimRng(42, "sev")
        assert a.random() != b.random()

    def test_child_streams_are_stable(self):
        parent = SimRng(7, "root")
        assert parent.child("x").random() == SimRng(7, "root").child("x").random()

    def test_child_does_not_consume_parent(self):
        a, b = SimRng(9), SimRng(9)
        a.child("side")
        assert a.random() == b.random()

    def test_derive_seed_is_stable(self):
        assert derive_seed(5, "x") == derive_seed(5, "x")
        assert derive_seed(5, "x") != derive_seed(5, "y")


class TestDistributions:
    def test_uniform_in_range(self):
        rng = SimRng(1)
        for _ in range(100):
            assert 2.0 <= rng.uniform(2.0, 3.0) < 3.0

    def test_randint_inclusive(self):
        rng = SimRng(1)
        values = {rng.randint(0, 2) for _ in range(200)}
        assert values == {0, 1, 2}

    def test_lognormal_sigma_zero_is_one(self):
        assert SimRng(1).lognormal_factor(0.0) == 1.0

    def test_lognormal_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            SimRng(1).lognormal_factor(-0.1)

    def test_lognormal_median_near_one(self):
        rng = SimRng(3)
        samples = [rng.lognormal_factor(0.1) for _ in range(2000)]
        assert statistics.median(samples) == pytest.approx(1.0, abs=0.03)

    def test_lognormal_is_positive(self):
        rng = SimRng(4)
        assert all(rng.lognormal_factor(0.5) > 0 for _ in range(100))

    def test_exponential_mean(self):
        rng = SimRng(5)
        samples = [rng.exponential(10.0) for _ in range(5000)]
        assert statistics.fmean(samples) == pytest.approx(10.0, rel=0.1)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            SimRng(1).exponential(0)

    def test_bernoulli_bounds(self):
        rng = SimRng(6)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SimRng(1).bernoulli(1.5)

    def test_bytes_length(self):
        rng = SimRng(7)
        assert len(rng.bytes(16)) == 16
        assert rng.bytes(0) == b""

    def test_shuffle_permutes(self):
        rng = SimRng(8)
        data = list(range(20))
        shuffled = data[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == data


@given(seed=st.integers(min_value=0, max_value=2**32), label=st.text(max_size=20))
def test_derive_seed_in_64_bit_range(seed, label):
    """Property: derived seeds are valid non-negative 64-bit ints."""
    value = derive_seed(seed, label)
    assert 0 <= value < 2**64


@given(sigma=st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
def test_lognormal_factor_positive(sigma):
    """Property: lognormal factors are always strictly positive."""
    assert SimRng(11).lognormal_factor(sigma) > 0


def test_lognormal_larger_sigma_more_spread():
    tight = SimRng(12, "tight")
    wide = SimRng(12, "wide")
    tight_samples = [tight.lognormal_factor(0.01) for _ in range(500)]
    wide_samples = [wide.lognormal_factor(0.5) for _ in range(500)]
    spread = lambda xs: statistics.pstdev([math.log(x) for x in xs])  # noqa: E731
    assert spread(wide_samples) > spread(tight_samples) * 5
