"""Hot classes must stay slotted.

Per-instance ``__dict__`` costs memory and attribute-lookup time on
classes instantiated thousands of times per sweep (spans, contexts,
sessions, batch recorders).  A stray class-level change (dropping
``slots=True``, adding a non-slotted dataclass field) silently
reintroduces dicts; this micro-test pins the invariant.
"""

from __future__ import annotations

import pytest

from repro.guestos.context import ExecContext
from repro.guestos.kernel import KernelBatch, KernelOps
from repro.runtimes.base import RuntimeSession, SessionBatch
from repro.sim.ledger import CostLedger
from repro.sim.opstream import BatchLedger, CostVector, OpBatch
from repro.sim.trace import Span, Trace

SLOTTED = [
    Span, Trace, ExecContext, RuntimeSession,
    OpBatch, CostVector, BatchLedger,
    KernelOps, KernelBatch, SessionBatch,
    CostLedger,
]


@pytest.mark.parametrize("cls", SLOTTED, ids=lambda cls: cls.__name__)
def test_hot_class_has_no_instance_dict(cls):
    # a slotted class (and slotted bases all the way up) never lists
    # __dict__ as a descriptor member
    assert not any("__dict__" in getattr(klass, "__dict__", ())
                   for klass in cls.__mro__ if klass is not object), (
        f"{cls.__name__} grew a __dict__; keep it slotted — it is "
        "instantiated on the simulation hot path")


def test_span_rejects_unknown_attributes():
    span = Span(name="x", start_ns=0.0, end_ns=1.0)
    with pytest.raises(AttributeError):
        span.wild_attribute = 1
