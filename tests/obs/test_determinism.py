"""Serial vs parallel byte-identity for every telemetry export.

The acceptance contract for the telemetry subsystem: running the same
plan with ``--jobs N`` must produce metrics snapshots, Chrome traces
and profiles byte-identical to a serial run.  These tests pin the
invariant the CI determinism job checks end-to-end.
"""

import pytest

from repro.core.runner import TrialPlan, TrialRunner
from repro.obs.export import TraceExporter
from repro.obs.profile import Profile


def small_plan(trials=2, seed=7):
    return TrialPlan.matrix(
        kind="faas", platforms=("tdx",), workloads=("cpustress",),
        runtimes=("lua",), trials=trials, seed=seed,
    )


def exports(runner):
    exporter = TraceExporter.from_history(runner.history)
    profile = Profile.from_history(runner.history)
    return (runner.metrics.to_json(), exporter.to_chrome_json(),
            exporter.to_jsonl(), profile.to_json())


@pytest.fixture(scope="module")
def serial_exports():
    runner = TrialRunner()
    runner.run(small_plan())
    return exports(runner)


class TestSerialParallelByteIdentity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_all_exports_byte_identical(self, jobs, serial_exports):
        parallel = TrialRunner(jobs=jobs)
        parallel.run(small_plan())
        assert exports(parallel) == serial_exports

    def test_metrics_snapshot_has_run_streams(self, serial_exports):
        import json

        snapshot = json.loads(serial_exports[0])
        counters = snapshot["counters"]
        assert counters["runner.plans"] == 1
        assert counters["runner.trials"] == 4      # 2 trials x 2 sides
        assert counters["run.tdx.secure.trials"] == 2
        assert counters["run.tdx.normal.trials"] == 2
        assert "run.tdx.secure.elapsed_ns" in snapshot["histograms"]

    def test_repeat_run_doubles_counters(self):
        runner = TrialRunner()
        runner.run(small_plan())
        once = runner.metrics.snapshot()["counters"]["runner.trials"]
        runner.run(small_plan())
        assert (runner.metrics.snapshot()["counters"]["runner.trials"]
                == 2 * once)


class TestProfileLedgerInvariant:
    def test_attribution_total_matches_run_ledgers(self):
        runner = TrialRunner()
        results = runner.run(small_plan())
        profile = Profile.from_history(runner.history)
        assert profile.total_ns == pytest.approx(
            sum(r.ledger.total() for r in results))
        assert sum(profile.categories.values()) == pytest.approx(
            profile.total_ns)
        assert sum(profile.stacks.values()) == pytest.approx(
            profile.total_ns)
