"""Tests for the deterministic metrics registry."""

import json
import math

import pytest

from repro.errors import ConfBenchError
from repro.obs.metrics import (
    BUCKET_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_fractional_amounts_allowed(self):
        counter = Counter("c")
        counter.inc(0.5)
        counter.inc(0.25)
        assert counter.value == pytest.approx(0.75)

    def test_negative_amount_rejected(self):
        counter = Counter("c")
        with pytest.raises(ConfBenchError, match="cannot add"):
            counter.inc(-1)
        assert counter.value == 0

    def test_nan_amount_rejected(self):
        with pytest.raises(ConfBenchError):
            Counter("c").inc(float("nan"))


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1.0
        assert isinstance(gauge.value, float)


class TestHistogram:
    def test_bounds_are_log_scale_and_sorted(self):
        finite = BUCKET_BOUNDS_NS[:-1]
        assert finite[0] == 1.0
        assert BUCKET_BOUNDS_NS[-1] == math.inf
        assert list(finite) == sorted(finite)
        # three buckets per decade: bound[k+3] is one decade up
        assert finite[3] == pytest.approx(10.0)
        assert finite[6] == pytest.approx(100.0)

    def test_observe_updates_count_and_sum(self):
        histogram = Histogram("h")
        histogram.observe(10)
        histogram.observe(20)
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(30.0)

    def test_le_bucketing_on_exact_bound(self):
        """A sample equal to a bound lands in that bound's bucket."""
        histogram = Histogram("h")
        histogram.observe(10.0)
        assert histogram.to_dict()["buckets"] == {"10": 1}

    def test_bucket_between_bounds(self):
        histogram = Histogram("h")
        histogram.observe(1.5)     # 1 < 1.5 <= 10**(1/3) ~ 2.15443
        (label,), (count,) = zip(*histogram.to_dict()["buckets"].items())
        assert label == "2.15443"
        assert count == 1

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram("h")
        histogram.observe(1e13)    # beyond the last finite decade
        assert histogram.to_dict()["buckets"] == {"+inf": 1}

    def test_zero_lands_in_first_bucket(self):
        histogram = Histogram("h")
        histogram.observe(0)
        assert histogram.to_dict()["buckets"] == {"1": 1}

    def test_negative_sample_rejected(self):
        with pytest.raises(ConfBenchError, match="cannot observe"):
            Histogram("h").observe(-1)

    def test_to_dict_skips_empty_buckets(self):
        histogram = Histogram("h")
        histogram.observe(5)
        histogram.observe(5)
        payload = histogram.to_dict()
        assert payload["count"] == 2
        assert list(payload["buckets"].values()) == [2]


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_sink_protocol(self):
        registry = MetricsRegistry()
        registry.count("hits")
        registry.count("hits", 2)
        registry.set_gauge("depth", 7)
        registry.observe("lat", 123.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_names_sorted(self):
        registry = MetricsRegistry()
        registry.count("zebra")
        registry.count("alpha")
        assert list(registry.snapshot()["counters"]) == ["alpha", "zebra"]

    def test_to_json_independent_of_creation_order(self):
        """Same metrics, different registration order → same bytes."""
        first, second = MetricsRegistry(), MetricsRegistry()
        first.count("b", 2)
        first.observe("h", 10)
        first.count("a", 1)
        second.count("a", 1)
        second.count("b", 2)
        second.observe("h", 10)
        assert first.to_json() == second.to_json()

    def test_to_json_is_canonical(self):
        registry = MetricsRegistry()
        registry.count("a")
        text = registry.to_json()
        assert text.endswith("\n")
        assert ": " not in text      # fixed separators, no pretty-print
        assert json.loads(text)["counters"] == {"a": 1}

    def test_len_counts_all_kinds(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.set_gauge("b", 1)
        registry.observe("c", 1)
        assert len(registry) == 3
        assert "counters=1" in repr(registry)

    def test_render_text_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.count("runs", 4)
        registry.set_gauge("depth", 2)
        registry.observe("lat", 50)
        text = registry.render_text()
        assert "counter   runs = 4" in text
        assert "gauge     depth = 2" in text
        assert "histogram lat: count=1" in text
