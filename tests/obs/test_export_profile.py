"""Tests for trace export and the virtual-time profiler."""

import json
from dataclasses import dataclass, field

import pytest

from repro.obs.export import TraceExporter, run_label
from repro.obs.profile import Profile, fold_stacks
from repro.sim.trace import Trace


@dataclass
class FakeRun:
    """The duck-typed slice of RunResult the exporters consume."""

    workload: str = "cpustress"
    platform: str = "tdx"
    secure: bool = True
    trial: int = 0
    trace: Trace = field(default_factory=Trace)


def nested_trace():
    """boot | execute{kernel} — roots partition [0, 300]."""
    trace = Trace()
    trace.record("boot", 0, 100, {"startup": 100.0})
    trace.record("execute", 100, 300, {"cpu": 150.0, "mem_access": 50.0})
    trace.record("kernel", 120, 200, {"cpu": 60.0}, parent="execute")
    return trace


class TestRunLabel:
    def test_label_shape(self):
        run = FakeRun(workload="factors", platform="cca",
                      secure=True, trial=3)
        assert run_label(run) == "factors@cca/secure#3"

    def test_normal_side(self):
        assert run_label(FakeRun(secure=False)).endswith("/normal#0")


class TestTraceExporter:
    def test_from_runs_pid_tid_assignment(self):
        exporter = TraceExporter.from_runs([FakeRun(), FakeRun(trial=1)])
        assert [(r.pid, r.tid) for r in exporter.records] == [(0, 1), (0, 2)]
        assert len(exporter) == 2

    def test_from_history_pid_per_plan(self):
        history = [(None, [FakeRun()]), (None, [FakeRun(), FakeRun(trial=1)])]
        exporter = TraceExporter.from_history(history)
        assert [(r.pid, r.tid) for r in exporter.records] == \
            [(0, 1), (1, 1), (1, 2)]

    def test_chrome_events_metadata_and_spans(self):
        exporter = TraceExporter.from_runs([FakeRun(trace=nested_trace())])
        events = exporter.chrome_events()
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1
        assert meta[0]["args"]["name"] == "cpustress@tdx/secure#0"
        assert len(spans) == 3
        execute = next(e for e in spans if e["name"] == "execute")
        # virtual ns → trace-event µs
        assert execute["ts"] == pytest.approx(0.1)
        assert execute["dur"] == pytest.approx(0.2)
        assert execute["args"]["ledger_ns"] == pytest.approx(200.0)
        kernel = next(e for e in spans if e["name"] == "kernel")
        assert kernel["args"]["parent"] == "execute"

    def test_to_chrome_json_shape(self):
        exporter = TraceExporter.from_runs([FakeRun(trace=nested_trace())])
        payload = json.loads(exporter.to_chrome_json())
        assert payload["displayTimeUnit"] == "ns"
        assert len(payload["traceEvents"]) == 4

    def test_jsonl_one_line_per_span(self):
        exporter = TraceExporter.from_runs([FakeRun(trace=nested_trace())])
        lines = exporter.to_jsonl().splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["trial"] == "cpustress@tdx/secure#0"
        assert first["name"] == "boot"

    def test_write_files(self, tmp_path):
        exporter = TraceExporter.from_runs([FakeRun(trace=nested_trace())])
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "spans.jsonl"
        assert exporter.write_chrome(chrome) == 4
        assert exporter.write_jsonl(jsonl) == 3
        assert chrome.read_text() == exporter.to_chrome_json()
        assert jsonl.read_text() == exporter.to_jsonl()


class TestFoldStacks:
    def test_self_time_subtracts_children(self):
        stacks = fold_stacks(nested_trace())
        assert stacks == {
            "boot": pytest.approx(100.0),
            "execute": pytest.approx(140.0),
            "execute;kernel": pytest.approx(60.0),
        }

    def test_stacks_sum_to_ledger_total(self):
        trace = nested_trace()
        assert sum(fold_stacks(trace).values()) == \
            pytest.approx(trace.ledger_total_ns())

    def test_duplicate_parent_names_resolve_to_enclosing_instance(self):
        """A repeated span name ('retry') must not steal children."""
        trace = Trace()
        trace.record("retry", 0, 100, {"cpu": 10.0})
        trace.record("retry", 200, 300, {"cpu": 10.0})
        trace.record("attempt", 210, 290, {"cpu": 5.0}, parent="retry")
        stacks = fold_stacks(trace)
        # the attempt nests under the second retry, whose self time
        # therefore drops to 5; the first retry keeps its full 10
        assert stacks["retry;attempt"] == pytest.approx(5.0)
        assert stacks["retry"] == pytest.approx(15.0)

    def test_tightest_enclosing_parent_wins(self):
        trace = Trace()
        trace.record("phase", 0, 1000, {"cpu": 100.0})
        trace.record("phase", 100, 500, {"cpu": 40.0}, parent="phase")
        trace.record("op", 200, 300, {"cpu": 10.0}, parent="phase")
        stacks = fold_stacks(trace)
        assert stacks["phase;phase;op"] == pytest.approx(10.0)

    def test_unresolvable_parent_falls_back(self):
        trace = Trace()
        trace.record("root", 0, 100, {"cpu": 10.0})
        trace.record("orphan", 500, 600, {"cpu": 5.0}, parent="ghost")
        stacks = fold_stacks(trace)
        assert stacks["orphan"] == pytest.approx(5.0)


class TestProfile:
    def test_attribution_total_equals_ledger_total(self):
        trace = nested_trace()
        profile = Profile.from_runs([FakeRun(trace=trace)])
        assert profile.total_ns == pytest.approx(trace.ledger_total_ns())
        # category sums over ROOT spans only — the kernel child's cpu
        # is already inside execute's window
        assert profile.categories == {
            "startup": pytest.approx(100.0),
            "cpu": pytest.approx(150.0),
            "mem_access": pytest.approx(50.0),
        }
        assert sum(profile.categories.values()) == \
            pytest.approx(profile.total_ns)

    def test_stacks_telescope_to_total(self):
        profile = Profile.from_runs(
            [FakeRun(trace=nested_trace()), FakeRun(trace=nested_trace())])
        assert profile.trials == 2
        assert sum(profile.stacks.values()) == pytest.approx(profile.total_ns)

    def test_from_history_folds_every_plan(self):
        history = [(None, [FakeRun(trace=nested_trace())]),
                   (None, [FakeRun(trace=nested_trace())])]
        assert Profile.from_history(history).trials == 2

    def test_render_table_has_total_row(self):
        profile = Profile.from_runs([FakeRun(trace=nested_trace())])
        table = profile.render_table()
        assert "TOTAL" in table
        assert "100.0%" in table

    def test_render_collapsed_sorted_and_skips_zero(self):
        profile = Profile.from_runs([FakeRun(trace=nested_trace())])
        profile.stacks["zero"] = 0.0
        lines = profile.render_collapsed().splitlines()
        assert lines == sorted(lines)
        assert not any(line.startswith("zero") for line in lines)

    def test_to_json_round_trip(self):
        profile = Profile.from_runs([FakeRun(trace=nested_trace())])
        payload = json.loads(profile.to_json())
        assert payload["trials"] == 1
        assert payload["total_ns"] == pytest.approx(300.0)
        assert list(payload["categories"]) == sorted(payload["categories"])
