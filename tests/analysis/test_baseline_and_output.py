"""Baseline round-trips, JSON output schema, and CLI exit codes."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, run_lint
from repro.analysis.core import AnalysisError, Finding, Severity
from repro.cli import main

VIOLATION = """
    import time

    def body(kernel):
        return time.time()
"""

VIOLATION_PLUS_ONE = """
    import time

    def body(kernel):
        return time.time()

    def other(kernel):
        return time.monotonic()
"""


def find(tree):
    return run_lint([tree]).findings


class TestBaseline:
    def test_round_trip(self, make_tree, tmp_path):
        findings = find(make_tree({"workloads/w.py": VIOLATION}))
        assert findings
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.fingerprints == baseline.fingerprints
        new, old = loaded.split(findings)
        assert new == [] and old == findings

    def test_new_findings_not_masked(self, make_tree, tmp_path):
        tree = make_tree({"workloads/w.py": VIOLATION})
        baseline = Baseline.from_findings(find(tree))
        tree2 = make_tree({"workloads/w.py": VIOLATION_PLUS_ONE})
        new, old = baseline.split(find(tree2))
        assert [f.symbol for f in new] == ["other"]
        assert [f.symbol for f in old] == ["body"]

    def test_fingerprint_survives_line_shift(self):
        a = Finding(rule="r", severity=Severity.ERROR, path="x/y.py",
                    line=10, col=0, message="m", symbol="f",
                    module="repro.x.y")
        b = Finding(rule="r", severity=Severity.ERROR, path="other/y.py",
                    line=99, col=4, message="m", symbol="f",
                    module="repro.x.y")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint(0) != a.fingerprint(1)

    def test_v2_records_pass_schema(self, make_tree, tmp_path):
        from repro.analysis import PASS_SCHEMA
        from repro.analysis.baseline import BASELINE_VERSION

        findings = find(make_tree({"workloads/w.py": VIOLATION}))
        baseline = Baseline.from_findings(findings, passes=PASS_SCHEMA)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION == 2
        assert payload["passes"] == PASS_SCHEMA
        loaded = Baseline.load(path)
        assert loaded.passes == PASS_SCHEMA
        assert loaded.fingerprints == baseline.fingerprints

    def test_v1_baseline_still_loads(self, make_tree, tmp_path):
        """Pre-passes-map baselines (version 1) stay readable."""
        findings = find(make_tree({"workloads/w.py": VIOLATION}))
        entries = [{"fingerprint": f.fingerprint(0), "rule": f.rule}
                   for f in findings]
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": entries}))
        loaded = Baseline.load(path)
        assert loaded.passes == {}
        new, old = loaded.split(findings)
        assert new == [] and old == findings

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)


class TestNewRuleFingerprintStability:
    """Line churn above a finding must not rotate its fingerprint —
    otherwise baselines for the taint/lock families go stale on every
    unrelated edit."""

    CRYPTO_STUB = """
        def derived_keypair(parent, label, bits=1024):
            return object()
    """
    LEAK = """
        import warnings

        from repro.attest.crypto import derived_keypair


        def leak(rng):
            pair = derived_keypair(rng, "x")
            warnings.warn(f"d={pair.d}")
    """
    RACE = """
        import threading


        class Racy:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def racy(self):
                self.count = 0
    """
    CHURN = "\n# one\n# two\n# three\n"

    def _fingerprints(self, make_tree, files):
        found = find(make_tree(files))
        assert found
        return {(f.rule, f.fingerprint(0)) for f in found}

    def test_taint_fingerprint_survives_line_churn(self, make_tree):
        base = {"attest/crypto.py": self.CRYPTO_STUB}
        before = self._fingerprints(make_tree, {
            **base, "leaky.py": self.LEAK})
        after = self._fingerprints(make_tree, {
            **base, "leaky.py": self.CHURN + textwrap.dedent(self.LEAK)})
        assert before == after

    def test_lock_fingerprint_survives_line_churn(self, make_tree):
        before = self._fingerprints(make_tree, {"racy.py": self.RACE})
        after = self._fingerprints(
            make_tree, {"racy.py": self.CHURN + textwrap.dedent(self.RACE)})
        assert before == after


class TestJsonOutput:
    def test_schema(self, make_tree):
        report = run_lint([make_tree({"workloads/w.py": VIOLATION})])
        payload = json.loads(report.render_json())
        assert set(payload) == {"version", "checked_modules", "findings",
                                "grandfathered", "exit_code"}
        assert payload["exit_code"] == 1
        assert payload["checked_modules"] >= 1
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "severity", "path", "line", "col",
                                "message", "symbol", "module"}
        assert finding["rule"] == "determinism/wallclock"
        assert finding["severity"] == "error"
        assert finding["line"] > 0

    def test_text_format(self, make_tree):
        report = run_lint([make_tree({"workloads/w.py": VIOLATION})])
        text = report.render_text()
        assert "determinism/wallclock" in text
        assert "1 finding(s)" in text
        # path:line:col prefix
        assert ".py:" in text.splitlines()[0]


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, make_tree, capsys):
        tree = make_tree({"workloads/w.py": "x = 1\n"})
        assert main(["lint", str(tree)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, make_tree, capsys):
        tree = make_tree({"workloads/w.py": VIOLATION})
        assert main(["lint", str(tree)]) == 1
        assert "determinism/wallclock" in capsys.readouterr().out

    def test_json_flag(self, make_tree, capsys):
        tree = make_tree({"workloads/w.py": VIOLATION})
        assert main(["lint", str(tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]

    def test_bad_path_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "/no/such/path"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_rules_is_usage_error(self, make_tree, capsys):
        tree = make_tree({"workloads/w.py": "x = 1\n"})
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tree), "--rules", "spelling"])
        assert excinfo.value.code == 2

    def test_missing_baseline_is_usage_error(self, make_tree, capsys):
        tree = make_tree({"workloads/w.py": "x = 1\n"})
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tree), "--baseline", "/no/such/baseline.json"])
        assert excinfo.value.code == 2

    def test_rules_subset_runs_only_selected_pass(self, make_tree):
        tree = make_tree({"workloads/w.py": VIOLATION})
        assert main(["lint", str(tree), "--rules", "layering"]) == 0
        assert main(["lint", str(tree), "--rules", "determinism"]) == 1

    def test_write_then_use_baseline(self, make_tree, tmp_path, capsys):
        tree = make_tree({"workloads/w.py": VIOLATION})
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(tree),
                     "--write-baseline", str(baseline)]) == 0
        assert baseline.is_file()
        capsys.readouterr()
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_experiment_bad_trace_out_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "fig5", "--quick",
                  "--trace-out", "/no/such/dir/trace.json"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_experiment_bad_cache_dir_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "fig5", "--quick",
                  "--cache", "/no/such/dir/cache.jsonl"])
        assert excinfo.value.code == 2


class TestSeededViolationOnRealTreeCopy:
    def test_seeded_wallclock_in_workloads_fails(self, tmp_path, capsys):
        """The acceptance scenario: copy the real tree, seed a
        ``time.time()`` into a workload, and the lint (with the
        committed baseline) must go red."""
        import shutil

        repo = Path(__file__).resolve().parents[2]
        tree = tmp_path / "repro"
        shutil.copytree(repo / "src" / "repro", tree)
        target = tree / "workloads" / "faas" / "compute.py"
        source = target.read_text()
        marker = "from __future__ import annotations"
        target.write_text(source.replace(
            marker,
            marker + "\nimport time\n_T0 = time.time()", 1))
        baseline = repo / "lint-baseline.json"
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 1
        assert "determinism/wallclock" in capsys.readouterr().out
