"""Confidential-taint pass: sources, sinks, sanitizers, field taint.

The deliberately leaky fixture below exercises one flow per sink
family; the acceptance contract is that it yields at least five
distinct findings whose messages carry the full source -> sink path,
in text, JSON, and SARIF renderings alike.
"""

from __future__ import annotations

import json

from repro.analysis import run_lint
from repro.analysis.core import load_project
from repro.analysis.taint import ConfidentialTaintRule

#: A stub of the real crypto module so ``qual:`` source matchers
#: resolve inside the synthetic tree (never analyzed: trusted module).
CRYPTO_STUB = """
def generate_keypair(rng, bits=1024):
    return object()


def derived_keypair(parent, label, bits=1024):
    return object()
"""

#: One deliberate leak per sink family (plus clean control flows).
LEAKY = """
import warnings

from repro.attest.crypto import derived_keypair


def log_private_exponent(rng):
    pair = derived_keypair(rng, "leak")
    warnings.warn(f"debug: d={pair.d}")                  # 1: log sink


def print_whole_pair(rng):
    pair = derived_keypair(rng, "leak")
    print(pair)                                          # 2: stdout sink


def raise_with_key(rng):
    pair = derived_keypair(rng, "leak")
    raise ValueError(f"bad pair {pair}")                 # 3: exception sink


def journal_guest_payload(fs, store):
    payload = fs.read_file("/etc/secret")
    store.put({"raw": payload})                          # 4: journal sink


def relay_measurement(tee, sock):
    digest = tee.measurement_for("guest-0")
    sock.sendall(digest)                                 # 5: relay sink


def telemetry_guest_bytes(fs, metrics):
    data = fs.read_all()
    metrics.count(f"saw {data}")                         # 6: telemetry sink
"""


def _taint_findings(make_tree, files):
    root = make_tree({"attest/crypto.py": CRYPTO_STUB, **files})
    project = load_project([root])
    return list(ConfidentialTaintRule().check_project(project))


def test_leaky_fixture_yields_five_distinct_findings(make_tree):
    findings = _taint_findings(make_tree, {"leaky.py": LEAKY})
    distinct = {(f.rule, f.symbol) for f in findings}
    assert len(distinct) >= 5, [f.render() for f in findings]
    rules = {f.rule for f in findings}
    assert {"taint/log", "taint/exception", "taint/journal",
            "taint/relay", "taint/telemetry"} <= rules


def test_findings_carry_source_to_sink_paths(make_tree):
    findings = _taint_findings(make_tree, {"leaky.py": LEAKY})
    by_symbol = {f.symbol: f for f in findings}
    log = by_symbol["log_private_exponent"]
    assert "repro.attest.crypto.derived_keypair()" in log.message
    assert "warning text (warnings.warn)" in log.message
    journal = by_symbol["journal_guest_payload"]
    assert "read_file()" in journal.message
    assert "journal" in journal.rule
    relay = by_symbol["relay_measurement"]
    assert "measurement_for()" in relay.message


def test_paths_survive_all_three_renderings(make_tree):
    root = make_tree({"attest/crypto.py": CRYPTO_STUB, "leaky.py": LEAKY})
    report = run_lint([root], rules=[ConfidentialTaintRule()])
    assert len(report.findings) >= 5

    text = report.render_text()
    payload = json.loads(report.render_json())
    sarif = json.loads(report.render_sarif())
    sarif_texts = [r["message"]["text"]
                   for r in sarif["runs"][0]["results"]]
    for finding in report.findings:
        assert finding.message in text
        assert finding.message in [f["message"]
                                   for f in payload["findings"]]
        assert finding.message in sarif_texts


def test_sanitizer_cuts_the_flow(make_tree):
    findings = _taint_findings(make_tree, {"clean.py": """
        import warnings

        from repro.attest.crypto import derived_keypair


        def logs_fingerprint(rng):
            pair = derived_keypair(rng, "ok")
            warnings.warn(f"key {pair.public.fingerprint()}")


        def logs_signature(rng, body):
            pair = derived_keypair(rng, "ok")
            warnings.warn(f"sig {pair.sign(body)!r}")
    """})
    assert findings == []


def test_field_sensitivity_public_clean_d_tainted(make_tree):
    findings = _taint_findings(make_tree, {"fields.py": """
        import warnings

        from repro.attest.crypto import derived_keypair


        def logs_public(rng):
            pair = derived_keypair(rng, "ok")
            warnings.warn(f"pub {pair.public}")        # clean: no finding


        def logs_private(rng):
            pair = derived_keypair(rng, "bad")
            warnings.warn(f"d {pair.d}")               # finding
    """})
    assert [f.symbol for f in findings] == ["logs_private"]


def test_propagation_through_pipeline_helper(make_tree):
    findings = _taint_findings(make_tree, {
        "helpers.py": """
            import warnings


            def emit(value):
                warnings.warn(f"value={value}")


            def passthrough(value):
                return value
        """,
        "caller.py": """
            from repro.attest.crypto import derived_keypair
            from repro.helpers import emit, passthrough


            def leaks_through_two_hops(rng):
                pair = derived_keypair(rng, "leak")
                emit(passthrough(pair))
        """,
    })
    assert len(findings) == 1
    finding = findings[0]
    assert finding.symbol == "leaks_through_two_hops"
    assert "repro.helpers.emit" in finding.message


def test_class_field_repr_leak_detected(make_tree):
    findings = _taint_findings(make_tree, {"pair.py": """
        class RsaKeyPair:
            def __init__(self, public, d):
                self.public = public
                self.d = d

            def __repr__(self):
                return f"RsaKeyPair(d={self.d})"
    """})
    assert [f.rule for f in findings] == ["taint/repr"]


def test_public_key_journal_is_not_a_false_positive(make_tree):
    findings = _taint_findings(make_tree, {"pub.py": """
        from repro.attest.crypto import derived_keypair


        def journals_public_half(rng, store):
            pair = derived_keypair(rng, "ok")
            store.put({"public": pair.public})
    """})
    assert findings == []


def test_pragma_suppresses_taint_family(make_tree):
    root = make_tree({
        "attest/crypto.py": CRYPTO_STUB,
        "allowed.py": """
            import warnings

            from repro.attest.crypto import derived_keypair


            def deliberate(rng):
                pair = derived_keypair(rng, "demo")
                warnings.warn(f"d={pair.d}")  # confbench: allow[taint]
        """,
    })
    report = run_lint([root], rules=[ConfidentialTaintRule()])
    assert report.findings == []
