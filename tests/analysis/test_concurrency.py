"""Lock-discipline pass: guard inference, exemptions, ABBA detection."""

from __future__ import annotations

from repro.analysis import run_lint
from repro.analysis.concurrency import LockDisciplineRule
from repro.analysis.core import load_project

RACY = """
import threading


class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0        # writes in __init__ are exempt
        self.items = []

    def bump(self):
        with self._lock:
            self.count += 1
            self.items.append(self.count)

    def racy_write(self):
        self.count = 0

    def racy_read(self):
        return self.count
"""

ABBA = """
import threading


class Deadlocky:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.x = 0

    def ab(self):
        with self._a:
            with self._b:
                self.x += 1

    def ba(self):
        with self._b:
            with self._a:
                self.x -= 1
"""


def _lock_findings(make_tree, files):
    root = make_tree(files)
    project = load_project([root])
    rule = LockDisciplineRule()
    findings = []
    for module in project.modules:
        findings.extend(rule.check_module(module))
    return findings


def test_unguarded_write_is_error_and_read_is_warning(make_tree):
    findings = _lock_findings(make_tree, {"racy.py": RACY})
    by_rule = {f.rule: f for f in findings}
    write = by_rule["lock/unguarded-write"]
    assert write.severity.value == "error"
    assert write.symbol == "Racy.racy_write"
    assert "'count'" in write.message and "'_lock'" in write.message
    read = by_rule["lock/unguarded-read"]
    assert read.severity.value == "warning"
    assert read.symbol == "Racy.racy_read"


def test_init_writes_are_exempt(make_tree):
    findings = _lock_findings(make_tree, {"racy.py": RACY})
    assert not any(f.symbol.endswith("__init__") for f in findings)


def test_order_inversion_detected(make_tree):
    findings = _lock_findings(make_tree, {"abba.py": ABBA})
    inversions = [f for f in findings if f.rule == "lock/order-inversion"]
    assert len(inversions) == 1
    message = inversions[0].message
    assert "opposite order" in message and "ABBA" in message


def test_locked_helper_idiom_is_exempt(make_tree):
    findings = _lock_findings(make_tree, {"helper.py": """
        import threading


        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.members = []

            def add(self, member):
                with self._lock:
                    self.members.append(member)
                    self._locked_trim()

            def _locked_trim(self):
                while len(self.members) > 8:
                    self.members.pop()
    """})
    assert findings == []


def test_consistently_locked_class_is_clean(make_tree):
    findings = _lock_findings(make_tree, {"clean.py": """
        import threading


        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0

            def bump(self):
                with self._lock:
                    self.value += 1

            def snapshot(self):
                with self._lock:
                    return self.value
    """})
    assert findings == []


def test_class_without_locks_is_ignored(make_tree):
    findings = _lock_findings(make_tree, {"plain.py": """
        class Plain:
            def __init__(self):
                self.value = 0

            def bump(self):
                self.value += 1
    """})
    assert findings == []


def test_thread_target_closure_does_not_inherit_lock(make_tree):
    # a nested def runs on another thread later: accesses inside it are
    # NOT protected by the lexically-enclosing with-lock
    findings = _lock_findings(make_tree, {"closure.py": """
        import threading


        class Spawner:
            def __init__(self):
                self._lock = threading.Lock()
                self.jobs = []

            def submit(self, job):
                with self._lock:
                    self.jobs.append(job)

                    def worker():
                        self.jobs.pop()

                    threading.Thread(target=worker).start()
    """})
    assert [f.rule for f in findings] == ["lock/unguarded-write"]


def test_pragma_suppresses_lock_family(make_tree):
    root = make_tree({"allowed.py": """
        import threading


        class Monotonic:
            def __init__(self):
                self._lock = threading.Lock()
                self.done = False

            def finish(self):
                with self._lock:
                    self.done = True

            def poll(self):
                return self.done  # confbench: allow[lock/unguarded-read]
    """})
    report = run_lint([root], rules=[LockDisciplineRule()])
    assert report.findings == []
