"""Layering pass on synthetic module graphs (and its edge resolution)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LayeringRule, run_lint
from repro.analysis.core import load_project
from repro.analysis.layering import import_graph, package_of


def lint(tree: Path):
    return run_lint([tree], rules=[LayeringRule()])


class TestUpwardImports:
    def test_hw_importing_core_rejected(self, make_tree):
        tree = make_tree({
            "hw/cpu.py": "from repro.core.runner import TrialSpec\n",
            "core/runner.py": "class TrialSpec:\n    pass\n",
        })
        report = lint(tree)
        assert [f.rule for f in report.findings] == ["layering/upward-import"]
        finding = report.findings[0]
        assert "repro.hw.cpu → repro.core.runner" in finding.message
        assert finding.module == "repro.hw.cpu"
        assert finding.path.endswith("hw/cpu.py")

    def test_plain_import_statement_also_caught(self, make_tree):
        tree = make_tree({
            "sim/clock.py": "import repro.tee.vm\n",
            "tee/vm.py": "",
        })
        report = lint(tree)
        assert [f.rule for f in report.findings] == ["layering/upward-import"]

    def test_downward_import_allowed(self, make_tree):
        tree = make_tree({
            "core/runner.py": "from repro.sim.rng import SimRng\n",
            "sim/rng.py": "class SimRng:\n    pass\n",
        })
        assert lint(tree).findings == []

    def test_type_checking_guard_exempt(self, make_tree):
        tree = make_tree({
            "sim/trace.py": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.guestos.context import ExecContext
            """,
            "guestos/context.py": "class ExecContext:\n    pass\n",
        })
        assert lint(tree).findings == []


class TestSiblingAndForbiddenEdges:
    def test_attest_runtimes_are_independent_siblings(self, make_tree):
        tree = make_tree({
            "attest/quote.py": "from repro.runtimes.base import Runtime\n",
            "runtimes/base.py": "class Runtime:\n    pass\n",
        })
        report = lint(tree)
        assert [f.rule for f in report.findings] == ["layering/sibling-import"]

    def test_experiments_may_not_reach_hw(self, make_tree):
        tree = make_tree({
            "experiments/fig9.py": "from repro.hw.cpu import CpuModel\n",
            "hw/cpu.py": "class CpuModel:\n    pass\n",
        })
        report = lint(tree)
        assert [f.rule for f in report.findings] == ["layering/forbidden-edge"]
        assert "internals" in report.findings[0].message

    def test_analysis_is_restricted_to_errors(self, make_tree):
        tree = make_tree({
            "analysis/extra.py": "from repro.sim.rng import SimRng\n",
            "sim/rng.py": "class SimRng:\n    pass\n",
        })
        report = lint(tree)
        assert [f.rule for f in report.findings] == [
            "layering/restricted-import"]

    def test_unknown_package_reported(self, make_tree):
        tree = make_tree({
            "newpkg/mod.py": "from repro.errors import ConfBenchError\n",
            "errors.py": "class ConfBenchError(Exception):\n    pass\n",
        })
        report = lint(tree)
        assert [f.rule for f in report.findings] == ["layering/unknown-layer"]


class TestCycles:
    def test_package_cycle_reported_with_chain(self, make_tree):
        # workloads → core is upward (and flagged); core → workloads is
        # legal — together they close a package-level cycle.
        tree = make_tree({
            "workloads/base.py": "from repro.core.runner import run\n",
            "core/runner.py": "from repro.workloads.base import Workload\n",
        })
        report = lint(tree)
        rules = [f.rule for f in report.findings]
        assert "layering/cycle" in rules
        cycle = next(f for f in report.findings
                     if f.rule == "layering/cycle")
        assert "core" in cycle.message and "workloads" in cycle.message
        assert "→" in cycle.message


class TestEdgeResolution:
    def test_from_package_import_submodule_targets_submodule(self, make_tree):
        tree = make_tree({
            "cli.py": "from repro import experiments\n",
            "experiments/__init__.py": "",
        })
        project = load_project([tree])
        graph = import_graph(project)
        targets = [e.target for e in graph["repro.cli"]]
        assert targets == ["repro.experiments"]
        assert lint(tree).findings == []

    def test_relative_imports_resolve(self, make_tree):
        tree = make_tree({
            "core/a.py": "from .b import thing\n",
            "core/b.py": "thing = 1\n",
        })
        project = load_project([tree])
        graph = import_graph(project)
        assert [e.target for e in graph["repro.core.a"]] == ["repro.core.b"]

    def test_duplicate_edges_collapse(self, make_tree):
        tree = make_tree({
            "hw/cpu.py": "from repro.core.runner import a, b, c\n",
            "core/runner.py": "a = b = c = 1\n",
        })
        report = lint(tree)
        assert len(report.findings) == 1

    def test_package_of(self):
        assert package_of("repro.hw.cpu") == "hw"
        assert package_of("repro.errors") == "errors"
        assert package_of("repro") == "repro"


class TestRealTree:
    def test_committed_tree_has_no_layering_violations(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        report = run_lint([src], rules=[LayeringRule()])
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings)
