"""Cache and --jobs are cost knobs, never output knobs.

Serial, parallel, cold-cache, and warm-cache runs must render
byte-identically; the cache must invalidate transitively through the
import graph for the cross-module passes while leaving per-file
entries for untouched modules warm.
"""

from __future__ import annotations

import json

from repro.analysis import run_lint
from repro.analysis.cache import AnalysisCache

CRYPTO_STUB = """
    def derived_keypair(parent, label, bits=1024):
        return object()
"""

HELPERS = """
    import warnings


    def emit(value):
        warnings.warn(f"value={value}")
"""

HELPERS_SANITIZED = """
    import hashlib


    def emit(value):
        import warnings
        warnings.warn(hashlib.sha256(repr(value).encode()).hexdigest())
"""

CALLER = """
    from repro.attest.crypto import derived_keypair
    from repro.helpers import emit


    def leaks(rng):
        pair = derived_keypair(rng, "leak")
        emit(pair)
"""

WALLCLOCK = """
    import time


    def body(kernel):
        return time.time()
"""

TREE = {
    "attest/crypto.py": CRYPTO_STUB,
    "helpers.py": HELPERS,
    "caller.py": CALLER,
    "workloads/w.py": WALLCLOCK,
}


def _renderings(report):
    return (report.render_text(), report.render_json(),
            report.render_sarif())


def test_serial_and_jobs_render_byte_identically(make_tree):
    tree = make_tree(TREE)
    serial = run_lint([tree], jobs=1)
    parallel = run_lint([tree], jobs=2)
    assert _renderings(serial) == _renderings(parallel)
    assert len(serial.findings) >= 2        # taint + determinism


def test_cold_then_warm_cache_identical_with_hits(make_tree, tmp_path):
    tree = make_tree(TREE)
    cache = tmp_path / "lint-cache.json"
    cold = run_lint([tree], cache_path=cache)
    assert cache.is_file()
    assert cold.cache_misses > 0
    warm = run_lint([tree], cache_path=cache)
    assert warm.cache_hits > 0 and warm.cache_misses == 0
    assert _renderings(cold) == _renderings(warm)


def test_cache_matches_uncached_run(make_tree, tmp_path):
    tree = make_tree(TREE)
    plain = run_lint([tree])
    cached = run_lint([tree], cache_path=tmp_path / "c.json")
    assert _renderings(plain) == _renderings(cached)


def test_editing_dependency_invalidates_dependents(make_tree, tmp_path):
    """Sanitizing helpers.emit must clear caller.py's cached taint
    finding even though caller.py's own bytes never changed."""
    tree = make_tree(TREE)
    cache = tmp_path / "lint-cache.json"
    before = run_lint([tree], cache_path=cache)
    assert any(f.rule.startswith("taint/") and f.symbol == "leaks"
               for f in before.findings)

    make_tree({**TREE, "helpers.py": HELPERS_SANITIZED})
    after = run_lint([tree], cache_path=cache)
    assert not any(f.rule.startswith("taint/") for f in after.findings)
    # module-scope findings for untouched files still served warm
    assert after.cache_hits > 0
    assert any(f.rule == "determinism/wallclock" for f in after.findings)


def test_unrelated_edit_keeps_cross_module_entries_warm(make_tree, tmp_path):
    """Touching a leaf module with no dependents only re-analyzes it."""
    tree = make_tree(TREE)
    cache = tmp_path / "lint-cache.json"
    run_lint([tree], cache_path=cache)
    make_tree({**TREE, "workloads/w.py": WALLCLOCK + "\n    X = 1\n"})
    after = run_lint([tree], cache_path=cache)
    assert after.cache_hits > 0
    # invalidation is per-module: only w.py's keys went stale
    assert after.cache_misses < after.cache_hits


def test_corrupt_cache_is_ignored_not_fatal(make_tree, tmp_path):
    tree = make_tree(TREE)
    cache = tmp_path / "lint-cache.json"
    cache.write_text("{definitely not json")
    report = run_lint([tree], cache_path=cache)
    assert report.findings
    # and the save repaired the file
    payload = json.loads(cache.read_text())
    assert payload["version"] == 1


def test_cache_prunes_stale_keys(make_tree, tmp_path):
    tree = make_tree(TREE)
    cache_path = tmp_path / "lint-cache.json"
    run_lint([tree], cache_path=cache_path)
    first_keys = set(json.loads(cache_path.read_text())["entries"])
    make_tree({**TREE, "workloads/w.py": WALLCLOCK + "\n    Y = 2\n"})
    run_lint([tree], cache_path=cache_path)
    second_keys = set(json.loads(cache_path.read_text())["entries"])
    assert second_keys != first_keys
    # no dead entries for the old content hash survive
    assert len(second_keys) == len(first_keys)


def test_cache_key_includes_rule_and_schema():
    assert AnalysisCache.key("taint", 1, "abc") != \
        AnalysisCache.key("lock", 1, "abc")
    assert AnalysisCache.key("taint", 1, "abc") != \
        AnalysisCache.key("taint", 2, "abc")
