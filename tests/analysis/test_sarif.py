"""SARIF 2.1.0 rendering: shape, level mapping, fingerprints.

The SARIF output feeds GitHub code scanning from CI; these tests pin
the parts the upload actually consumes (schema/version, driver name,
rule table, per-result level/region/fingerprint) and assert adding
the format changed nothing about text/JSON rendering.
"""

from __future__ import annotations

import json

from repro.analysis import run_lint
from repro.cli import main

MIXED = """
    import time

    def body(kernel):
        return time.time()
"""

LEAKY = """
    import warnings

    from repro.attest.crypto import derived_keypair


    def leak(rng):
        pair = derived_keypair(rng, "x")
        warnings.warn(f"d={pair.d}")
"""

CRYPTO_STUB = """
    def derived_keypair(parent, label, bits=1024):
        return object()
"""


def _sarif(make_tree, files):
    report = run_lint([make_tree(files)])
    return report, json.loads(report.render_sarif())


def test_sarif_envelope(make_tree):
    report, payload = _sarif(make_tree, {"workloads/w.py": MIXED})
    assert payload["version"] == "2.1.0"
    assert payload["$schema"].endswith("sarif-2.1.0.json")
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "confbench-lint"
    assert len(run["results"]) == len(report.findings) >= 1


def test_sarif_rule_table_covers_every_result(make_tree):
    _, payload = _sarif(make_tree, {
        "attest/crypto.py": CRYPTO_STUB, "leaky.py": LEAKY,
        "workloads/w.py": MIXED})
    run = payload["runs"][0]
    table = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert table == sorted(table)
    for result in run["results"]:
        assert result["ruleId"] in table
        assert table[result["ruleIndex"]] == result["ruleId"]
    families = {r["ruleId"].split("/")[0] for r in run["results"]}
    assert {"determinism", "taint"} <= families


def test_sarif_levels_follow_severity(make_tree):
    report, payload = _sarif(make_tree, {"workloads/w.py": MIXED})
    for finding, result in zip(report.findings,
                               payload["runs"][0]["results"]):
        expected = "error" if finding.severity.value == "error" \
            else "warning"
        assert result["level"] == expected


def test_sarif_region_is_one_based(make_tree):
    report, payload = _sarif(make_tree, {"workloads/w.py": MIXED})
    for finding, result in zip(report.findings,
                               payload["runs"][0]["results"]):
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1   # SARIF cols: 1-based


def test_sarif_fingerprints_match_baseline_fingerprints(make_tree):
    report, payload = _sarif(make_tree, {"workloads/w.py": MIXED})
    for finding, result in zip(report.findings,
                               payload["runs"][0]["results"]):
        fingerprint = result["partialFingerprints"]["confbenchFingerprint/v1"]
        assert fingerprint == finding.fingerprint(0)


def test_sarif_clean_tree_has_empty_results(make_tree):
    _, payload = _sarif(make_tree, {"workloads/w.py": "x = 1\n"})
    assert payload["runs"][0]["results"] == []


def test_cli_format_sarif(make_tree, capsys):
    tree = make_tree({"workloads/w.py": MIXED})
    assert main(["lint", str(tree), "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"]


def test_text_and_json_renderings_unchanged_by_sarif(make_tree):
    """Adding --format sarif must not perturb the existing formats."""
    report = run_lint([make_tree({"workloads/w.py": MIXED})])
    text_before = report.render_text()
    json_before = report.render_json()
    report.render_sarif()
    assert report.render_text() == text_before
    assert report.render_json() == json_before
