"""Meta-test: the checked-in source tree must stay lint-clean.

Every determinism, layering, and purity finding in ``src/repro`` must
either be fixed or be an entry in the committed ``lint-baseline.json``.
If this test fails, run ``confbench lint src/repro`` to see the new
findings; fix them, suppress with a justified
``# confbench: allow[<rule>]`` pragma, or (for accepted legacy debt
only) regenerate the baseline with ``--write-baseline``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, run_lint

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
BASELINE = REPO / "lint-baseline.json"


def test_baseline_file_is_committed():
    assert BASELINE.is_file(), "lint-baseline.json missing from repo root"


def test_source_tree_is_lint_clean_against_baseline():
    report = run_lint([SRC], baseline=Baseline.load(BASELINE))
    assert report.findings == [], (
        "new lint findings (fix or baseline them):\n"
        + "\n".join(f.render() for f in report.findings)
    )


def test_baseline_has_no_stale_entries():
    # Every fingerprint in the baseline should still match a real
    # finding; stale entries mean debt was paid off and the baseline
    # should be regenerated to shrink.
    from repro.analysis.baseline import _fingerprints

    baseline = Baseline.load(BASELINE)
    report = run_lint([SRC])
    live = {fp for _, fp in _fingerprints(report.findings)}
    stale = baseline.fingerprints - live
    assert not stale, f"stale baseline entries: {sorted(stale)}"
