"""Trial-purity pass: reachability, mutation detection, suppression."""

from __future__ import annotations

from repro.analysis import TrialPurityRule, run_lint


def lint(tree, **kwargs):
    return run_lint([tree], rules=[TrialPurityRule(**kwargs)])


RUNNER_STUB = """
    _BODY_FACTORIES = {}

    def body_factory(kind):
        def decorate(factory):
            _BODY_FACTORIES[kind] = factory
            return factory
        return decorate

    def build_body(spec):
        return _BODY_FACTORIES[spec.kind](spec)

    def execute_trial(spec):
        body = build_body(spec)
        return body(spec)
"""


class TestReachability:
    def test_decorated_factory_mutating_state_flagged(self, make_tree):
        tree = make_tree({
            "core/runner.py": RUNNER_STUB,
            "workloads/w.py": """
                from repro.core.runner import body_factory

                CACHE = {}

                @body_factory("w")
                def make_body(spec):
                    def body(kernel):
                        CACHE[spec.kind] = kernel
                        return kernel
                    return body
            """,
        })
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",
                                          "repro.core.runner.build_body"))
        rules = [f.rule for f in report.findings]
        assert rules == ["purity/module-state-mutation"]
        finding = report.findings[0]
        assert finding.symbol == "make_body.body"
        assert "CACHE" in finding.message

    def test_transitive_callee_flagged(self, make_tree):
        tree = make_tree({
            "core/runner.py": RUNNER_STUB,
            "workloads/helper.py": """
                SEEN = []

                def record(item):
                    SEEN.append(item)
            """,
            "workloads/w.py": """
                from repro.core.runner import body_factory
                from repro.workloads.helper import record

                @body_factory("w")
                def make_body(spec):
                    record(spec)
                    return lambda kernel: kernel
            """,
        })
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",
                                          "repro.core.runner.build_body"))
        assert [f.rule for f in report.findings] == [
            "purity/module-state-mutation"]
        assert report.findings[0].symbol == "record"

    def test_unreachable_mutation_not_flagged(self, make_tree):
        tree = make_tree({
            "core/runner.py": RUNNER_STUB,
            "workloads/w.py": """
                REGISTRY = {}

                def register(name, fn):
                    REGISTRY[name] = fn
            """,
        })
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",
                                          "repro.core.runner.build_body"))
        # register() is import-time plumbing, never on the trial path.
        assert report.findings == []

    def test_decorator_call_is_not_a_trial_path_call(self, make_tree):
        # Registration happens at def time; the factory registry write
        # inside body_factory.decorate must not be attributed to the
        # decorated entry function's call path.
        tree = make_tree({"core/runner.py": RUNNER_STUB + """
    @body_factory("noop")
    def _noop_body(spec):
        return lambda kernel: kernel
"""})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",
                                          "repro.core.runner.build_body"))
        assert report.findings == []


class TestMutationForms:
    def test_global_statement_flagged(self, make_tree):
        tree = make_tree({"core/runner.py": """
            counter = 0

            def execute_trial(spec):
                global counter
                counter += 1
                return counter
        """})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",))
        assert "purity/global-write" in [f.rule for f in report.findings]

    def test_mutating_method_call_flagged(self, make_tree):
        tree = make_tree({"core/runner.py": """
            HISTORY = []

            def execute_trial(spec):
                HISTORY.append(spec)
                return spec
        """})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",))
        assert [f.rule for f in report.findings] == [
            "purity/module-state-mutation"]

    def test_local_mutation_allowed(self, make_tree):
        tree = make_tree({"core/runner.py": """
            def execute_trial(spec):
                cache = {}
                cache[spec] = 1
                items = []
                items.append(spec)
                return cache, items
        """})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",))
        assert report.findings == []

    def test_nonspec_global_read_is_warning(self, make_tree):
        tree = make_tree({"core/runner.py": """
            mode = "fast"

            def execute_trial(spec):
                return mode
        """})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",))
        assert [f.rule for f in report.findings] == ["purity/nonspec-global"]
        assert report.findings[0].severity.value == "warning"

    def test_constant_read_allowed(self, make_tree):
        tree = make_tree({"core/runner.py": """
            PAPER_TRIALS = 10

            def execute_trial(spec):
                return PAPER_TRIALS
        """})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",))
        assert report.findings == []

    def test_lru_cache_on_trial_path_is_warning(self, make_tree):
        tree = make_tree({"core/runner.py": """
            from functools import lru_cache

            @lru_cache(maxsize=8)
            def build_body(spec):
                return spec

            def execute_trial(spec):
                return build_body(spec)
        """})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",))
        assert [f.rule for f in report.findings] == ["purity/memoized"]
        assert report.findings[0].severity.value == "warning"


class TestSuppression:
    def test_pragma_suppresses_mutation(self, make_tree):
        tree = make_tree({"core/runner.py": """
            MEMO = {}

            def execute_trial(spec):
                MEMO[spec] = 1  # confbench: allow[purity]
                return MEMO[spec]
        """})
        report = lint(tree, entry_points=("repro.core.runner.execute_trial",))
        assert report.findings == []
