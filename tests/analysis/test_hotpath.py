"""The hot-path pass: per-op charge loops in the simulation core."""

from __future__ import annotations

from repro.analysis import HotPathRule, Severity
from repro.analysis.core import Analyzer, load_project

PER_OP_LOOP = """
    def body(ctx, items):
        for item in items:
            ctx.cpu_execute(item)
"""

PER_OP_WHILE = """
    def body(kernel, blocks):
        remaining = blocks
        while remaining:
            kernel.sys_write("/f", b"x")
            remaining -= 1
"""

BATCHED = """
    def body(ctx, items):
        batch = ctx.batch()
        for item in items:
            batch.add(item)
        return ctx.run_batch(batch)
"""

PRAGMA = """
    def body(ctx, items):
        for item in items:
            ctx.cpu_execute(item)  # confbench: allow[hot-path-per-op]
"""

NESTED_DEF = """
    def outer(ctx, items):
        for item in items:
            def thunk():
                return ctx.cpu_execute(item)
"""


def lint(tree):
    analyzer = Analyzer([HotPathRule()])
    return analyzer.run(load_project([tree]))


class TestHotPathRule:
    def test_flags_charge_call_in_for_loop(self, make_tree):
        findings = lint(make_tree({"guestos/hot.py": PER_OP_LOOP}))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "hot-path-per-op"
        assert finding.severity is Severity.WARNING
        assert "cpu_execute" in finding.message

    def test_flags_sys_call_in_while_loop(self, make_tree):
        findings = lint(make_tree({"tee/hot.py": PER_OP_WHILE}))
        assert len(findings) == 1
        assert ".sys_write()" in findings[0].message

    def test_batch_recorder_is_clean(self, make_tree):
        assert lint(make_tree({"runtimes/hot.py": BATCHED})) == []

    def test_only_hot_packages_are_patrolled(self, make_tree):
        # workload emitters may keep per-op engines (equivalence tests
        # exercise them); only tee/guestos/runtimes are patrolled
        assert lint(make_tree({"workloads/hot.py": PER_OP_LOOP})) == []
        assert lint(make_tree({"sim/hot.py": PER_OP_LOOP})) == []

    def test_pragma_suppresses(self, make_tree):
        assert lint(make_tree({"guestos/hot.py": PRAGMA})) == []

    def test_nested_def_resets_loop_context(self, make_tree):
        # the inner function's body runs when called, not per iteration
        assert lint(make_tree({"guestos/hot.py": NESTED_DEF})) == []

    def test_real_tree_is_clean_of_new_findings(self):
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        findings = lint(src)
        assert findings == [], "\n".join(f.render() for f in findings)
