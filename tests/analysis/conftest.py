"""Fixture helpers: synthetic package trees for the analyzer tests."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest


@pytest.fixture
def make_tree(tmp_path):
    """Materialise ``{relative_path: source}`` as a package tree.

    Creates ``__init__.py`` in every directory along the way so
    :func:`repro.analysis.core.module_name_for` derives the same dotted
    names the real tree would.  Returns the tree root (the directory
    to pass to ``run_lint``/``load_project``).
    """

    def build(files: dict[str, str], root: str = "repro") -> Path:
        base = tmp_path / root
        base.mkdir(exist_ok=True)
        (base / "__init__.py").touch()
        for relative, source in files.items():
            path = base / relative
            for parent in reversed(path.parents):
                if base in parent.parents or parent == base:
                    parent.mkdir(exist_ok=True)
                    init = parent / "__init__.py"
                    if not init.exists():
                        init.touch()
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return base

    return build
