"""Determinism pass: positives, negatives, and pragma suppression."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import DeterminismRule, run_lint


def lint(tree: Path):
    return run_lint([tree], rules=[DeterminismRule()])


def rules_of(report) -> set[str]:
    return {f.rule for f in report.findings}


class TestWallclock:
    def test_time_time_flagged(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            import time

            def body(kernel):
                return time.time()
        """})
        report = lint(tree)
        assert rules_of(report) == {"determinism/wallclock"}
        finding = report.findings[0]
        assert finding.symbol == "body"
        assert finding.module == "repro.workloads.w"
        assert "host clock" in finding.message

    def test_aliased_from_import_flagged(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            from time import perf_counter as tick

            def body(kernel):
                return tick()
        """})
        assert rules_of(lint(tree)) == {"determinism/wallclock"}

    def test_datetime_now_flagged(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """})
        assert rules_of(lint(tree)) == {"determinism/wallclock"}

    def test_virtual_clock_not_flagged(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            def body(kernel):
                return kernel.ctx.elapsed_ns()
        """})
        assert lint(tree).findings == []


class TestEntropy:
    def test_module_level_random_flagged(self, make_tree):
        tree = make_tree({"hw/jitter.py": """
            import random

            def jitter():
                return random.random() + random.gauss(0, 1)
        """})
        report = lint(tree)
        assert rules_of(report) == {"determinism/entropy"}
        assert len(report.findings) == 2

    def test_seeded_random_instance_allowed(self, make_tree):
        tree = make_tree({"hw/jitter.py": """
            import random

            def stream(seed):
                return random.Random(seed)
        """})
        assert lint(tree).findings == []

    def test_urandom_uuid_secrets_flagged(self, make_tree):
        tree = make_tree({"core/ids.py": """
            import os
            import secrets
            import uuid

            def fresh():
                return os.urandom(8), uuid.uuid4(), secrets.token_hex(4)
        """})
        report = lint(tree)
        assert rules_of(report) == {"determinism/entropy"}
        assert len(report.findings) == 3

    def test_numpy_global_state_flagged_seeded_rng_allowed(self, make_tree):
        tree = make_tree({"workloads/gen.py": """
            import numpy as np

            def bad(n):
                return np.random.rand(n)

            def good(n, seed):
                return np.random.default_rng(seed).random(n)
        """})
        report = lint(tree)
        assert rules_of(report) == {"determinism/entropy"}
        assert [f.symbol for f in report.findings] == ["bad"]


class TestOrderingHazards:
    def test_set_literal_iteration_flagged(self, make_tree):
        tree = make_tree({"experiments/agg.py": """
            def collect(results):
                out = []
                for name in {"a", "b", "c"}:
                    out.append(results[name])
                return out
        """})
        assert rules_of(lint(tree)) == {"determinism/unordered-iter"}

    def test_set_call_and_comprehension_flagged(self, make_tree):
        tree = make_tree({"experiments/agg.py": """
            def collect(rows):
                names = [r.name for r in set(rows)]
                for key in {r.key for r in rows}:
                    names.append(key)
                return names
        """})
        assert len(lint(tree).findings) == 2

    def test_sorted_set_allowed(self, make_tree):
        tree = make_tree({"experiments/agg.py": """
            def collect(rows):
                return [name for name in sorted(set(rows))]
        """})
        assert lint(tree).findings == []

    def test_id_sort_key_flagged(self, make_tree):
        tree = make_tree({"core/order.py": """
            def arrange(vms):
                vms.sort(key=id)
                return sorted(vms, key=id)
        """})
        report = lint(tree)
        assert rules_of(report) == {"determinism/id-sort-key"}
        assert len(report.findings) == 2

    def test_builtin_hash_flagged_but_not_in_dunder_hash(self, make_tree):
        tree = make_tree({"tee/image.py": """
            def digest(seed):
                return hash(("image", seed))

            class Key:
                def __hash__(self):
                    return hash(self.__dict__.get("x"))
        """})
        report = lint(tree)
        assert rules_of(report) == {"determinism/builtin-hash"}
        assert [f.symbol for f in report.findings] == ["digest"]


class TestSuppression:
    def test_pragma_suppresses_specific_rule(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            import time

            def body(kernel):
                return time.time()  # confbench: allow[determinism/wallclock]
        """})
        assert lint(tree).findings == []

    def test_family_pragma_suppresses_subrule(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            import time

            def body(kernel):
                return time.time()  # confbench: allow[determinism]
        """})
        assert lint(tree).findings == []

    def test_unrelated_pragma_does_not_suppress(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            import time

            def body(kernel):
                return time.time()  # confbench: allow[purity]
        """})
        assert len(lint(tree).findings) == 1

    def test_pragma_in_string_literal_ignored(self, make_tree):
        tree = make_tree({"workloads/w.py": """
            import time

            NOTE = "# confbench: allow[determinism]"

            def body(kernel):
                return time.time()
        """})
        # The pragma text lives in a string on a different line; the
        # wallclock call is still reported.
        assert len(lint(tree).findings) == 1

    def test_allowlisted_module_exempt(self, make_tree):
        tree = make_tree({"sim/rng.py": """
            import random

            def draw():
                return random.random()
        """})
        assert lint(tree).findings == []
