"""The launch provisioner end to end, and its TeePool wiring.

Attest → KBS key release → pull/verify/decrypt/unpack, in that order;
a denial or a tampered layer aborts the launch with nothing unpacked,
and a pool with a provisioner pays the full supply-chain tax in the
serving result's STARTUP bucket.
"""

import pytest

from repro.attest import LaunchAttestor
from repro.attest.crypto import derived_keypair
from repro.core.pool import TeePool
from repro.errors import ImageVerificationError, KeyReleaseDeniedError
from repro.obs.metrics import MetricsRegistry
from repro.sim.ledger import CostCategory
from repro.sim.rng import SimRng
from repro.supply import (
    KeyBrokerService,
    LaunchProvisioner,
    Registry,
    build_image,
    sign_image,
)
from repro.tee.registry import platform_by_name


def make_chain(seed=17, strategy="eager", platform="tdx"):
    rng = SimRng(seed, "prov-test")
    bundle = build_image("app", "v1", rng.child("image"))
    publisher = derived_keypair(rng.child("publisher"), "publisher")
    sign_image(bundle, publisher)
    registry = Registry()
    registry.push(bundle)
    attestor = LaunchAttestor(platform, seed=seed)
    kbs = KeyBrokerService(attestor.service)
    kbs.register_bundle(bundle)
    provisioner = LaunchProvisioner(
        attestor, registry, kbs, ("app", "v1"),
        publisher_key=publisher.public, strategy=strategy,
        key_ids=bundle.manifest.key_ids)
    return provisioner, bundle, registry, kbs


class TestProvision:
    def test_eager_provision_unpacks_whole_image(self):
        provisioner, bundle, _registry, kbs = make_chain()
        report = provisioner.provision("vm-1")
        assert report.pull.chunks_fetched == bundle.manifest.total_chunks
        assert report.pull.signature_verified
        assert report.image is None
        assert report.fs.total_files() == bundle.manifest.total_chunks
        assert report.admission_ns > report.release_ns > 0.0
        assert not report.resumed
        assert provisioner.stats["provisioned"] == 1
        assert kbs.stats["released"] == 1

    def test_lazy_provision_returns_faultable_image(self):
        provisioner, bundle, _registry, _kbs = make_chain(strategy="lazy")
        report = provisioner.provision("vm-1")
        assert report.image is not None
        layers = len(bundle.manifest.layers)
        assert report.pull.chunks_fetched == layers
        assert report.fs.total_files() == layers

    def test_second_provision_resumes_and_is_cheaper(self):
        provisioner, _bundle, _registry, kbs = make_chain()
        cold = provisioner.provision("vm-1")
        warm = provisioner.provision("vm-1")
        assert warm.resumed and not cold.resumed
        assert warm.admission_ns < cold.admission_ns
        assert provisioner.stats["resumed"] == 1
        assert kbs.stats["resumed"] == 1

    def test_tampered_layer_aborts_with_typed_error(self):
        provisioner, bundle, registry, _kbs = make_chain()
        registry.tamper(bundle.manifest.layers[0].chunks[1].digest)
        with pytest.raises(ImageVerificationError):
            provisioner.provision("vm-1")
        assert provisioner.stats["aborted"] == 1
        assert provisioner.stats["provisioned"] == 0

    def test_denied_release_aborts_before_any_pull(self):
        provisioner, _bundle, registry, kbs = make_chain()
        provisioner.key_ids = ("ghost",)
        with pytest.raises(KeyReleaseDeniedError):
            provisioner.provision("vm-1")
        assert provisioner.stats["aborted"] == 1
        assert registry.stats["manifest_fetches"] == 0
        assert kbs.stats["denied.unknown_key"] == 1

    def test_unknown_strategy_rejected(self):
        provisioner, bundle, registry, kbs = make_chain()
        with pytest.raises(ValueError):
            LaunchProvisioner(provisioner.attestor, registry, kbs,
                              ("app", "v1"), strategy="psychic")


class TestPoolIntegration:
    def _pool(self, provisioner, metrics=None):
        platform = platform_by_name("tdx", seed=2)
        pool = TeePool(platform="tdx", secure=True)
        vm = platform.create_vm()
        vm.boot()
        pool.add_worker(vm, 9100)
        pool.provisioner = provisioner
        pool.metrics = metrics
        return pool

    def test_first_dispatch_provisions_and_charges_startup(self):
        provisioner, _bundle, _registry, _kbs = make_chain()
        metrics = MetricsRegistry()
        pool = self._pool(provisioner, metrics)
        result = pool.run_resilient(lambda k: "ok", name="x", trial=0)
        assert result.output == "ok"
        assert pool.workers[0].attested
        assert provisioner.stats["provisioned"] == 1
        assert result.ledger.get(CostCategory.STARTUP) > 0
        assert result.total_ns > result.elapsed_ns
        snap = metrics.snapshot()
        assert snap["counters"]["pool.tdx.secure.provisioned"] == 1

    def test_provisioning_happens_once_per_worker(self):
        provisioner, _bundle, registry, _kbs = make_chain()
        pool = self._pool(provisioner)
        pool.run_resilient(lambda k: 1, name="x", trial=0)
        fetched = registry.stats["chunk_fetches"]
        pool.run_resilient(lambda k: 1, name="x", trial=1)
        assert provisioner.stats["provisioned"] == 1
        assert registry.stats["chunk_fetches"] == fetched
