"""The Key Broker Service: attestation-gated key release.

The satellite acceptance paths: denial on failed and on stale
attestation, grant on session resumption *without* an origin
round-trip, and the strict clock-skew boundary — at exactly
``next_update`` the CRL, the freshness policy, the session cache, and
the KBS all agree the collateral is stale.
"""

import math

import pytest

from repro.attest import (
    IntelPcs,
    LaunchAttestor,
    QuotingEnclave,
    SessionCache,
    TdxVerifier,
    TieredCollateral,
    VerificationJob,
    VerifierService,
)
from repro.attest.pcs import FreshnessPolicy
from repro.errors import KeyReleaseDeniedError, SupplyChainError
from repro.guestos.context import ExecContext
from repro.hw.machine import xeon_gold_5515
from repro.sim.faults import CircuitBreaker, FaultContext, FaultPlan
from repro.sim.rng import SimRng
from repro.supply import KeyBrokerService, build_image
from repro.tee.tdx import TdxModule

ALWAYS_TIMEOUT = FaultPlan.parse("pcs-timeout=1.0,seed=1")


def make_ctx(seed=1, faults=None):
    return ExecContext(machine=xeon_gold_5515(),
                       rng=SimRng(seed, "kbs-ctx"), faults=faults)


def make_broker(seed=21):
    """A TDX attestor + KBS escrowing one encrypted image's keys."""
    attestor = LaunchAttestor("tdx", seed=seed)
    kbs = KeyBrokerService(attestor.service)
    bundle = build_image("app", "v1", SimRng(seed, "kbs-image"))
    kbs.register_bundle(bundle)
    return attestor, kbs, bundle


class TestRelease:
    def test_fresh_launch_releases_all_keys(self):
        attestor, kbs, bundle = make_broker()
        ctx = attestor.admission_context("vm-1")
        job = attestor.make_job("vm-1", ctx)
        release = kbs.release(job, bundle.manifest.key_ids, ctx)
        assert release.keys == bundle.keys
        assert not release.resumed
        assert release.release_ns > 0.0
        assert kbs.stats["released"] == 1
        assert kbs.clean_log_entries() == 1

    def test_resumption_grants_without_origin_hit(self):
        attestor, kbs, bundle = make_broker()
        ctx = attestor.admission_context("vm-1")
        kbs.release(attestor.make_job("vm-1", ctx),
                    bundle.manifest.key_ids, ctx)
        origin_before = attestor.collateral.stats["origin.fetches"]
        pcs_log_before = len(attestor.pcs.request_log)

        ctx2 = attestor.admission_context("vm-1")
        release = kbs.release(attestor.make_job("vm-1", ctx2),
                              bundle.manifest.key_ids, ctx2)
        assert release.resumed
        assert release.verdict.tier == "session"
        assert release.keys == bundle.keys
        # the resumed path never leaves the verifier: no collateral
        # origin fetch, not even a PCS log entry
        assert attestor.collateral.stats["origin.fetches"] == origin_before
        assert len(attestor.pcs.request_log) == pcs_log_before
        # and it is cheaper end to end than the fresh launch
        assert ctx2.ledger.total() < ctx.ledger.total()
        assert kbs.stats["resumed"] == 1

    def test_denies_failed_attestation(self):
        attestor, kbs, bundle = make_broker()
        ctx = attestor.admission_context("vm-1")
        job = attestor.make_job("vm-1", ctx)
        # break the nonce binding: evidence no longer matches the job
        job.nonce = ctx.rng.child("tampered").bytes(16)
        with pytest.raises(KeyReleaseDeniedError) as excinfo:
            kbs.release(job, bundle.manifest.key_ids, ctx)
        assert excinfo.value.reason == "attestation"
        assert kbs.stats["denied.attestation"] == 1
        assert kbs.stats["released"] == 0
        # the denial is in the log as an error entry, not a release
        assert kbs.clean_log_entries() == 0
        assert len(kbs.request_log) == 1

    def test_denies_unknown_key(self):
        attestor, kbs, _bundle = make_broker()
        ctx = attestor.admission_context("vm-1")
        with pytest.raises(KeyReleaseDeniedError) as excinfo:
            kbs.release(attestor.make_job("vm-1", ctx), ("ghost-key",),
                        ctx)
        assert excinfo.value.reason == "unknown_key"
        assert kbs.stats["denied.unknown_key"] == 1

    def test_rejects_empty_key_registration(self):
        _attestor, kbs, _bundle = make_broker()
        with pytest.raises(SupplyChainError):
            kbs.register_key("id", b"")


class TestStaleCollateral:
    def _stale_service(self, seed=31):
        """A TDX service whose collateral has gone stale-but-served.

        The PCS breaker is tripped after the first verification, so
        re-verifications serve the cached CRLs even once the clock
        passes their ``next_update`` — verification still succeeds
        (availability), but the KBS must refuse keys on it.
        """
        strict = FreshnessPolicy(ttl_ns=1e18, max_stale_ns=1e18)
        lenient = FreshnessPolicy(ttl_ns=1e18, max_stale_ns=1e18)
        breaker = CircuitBreaker("pcs", failure_threshold=1,
                                 cooldown_ns=1e18)
        infra = SimRng(seed, "stale-infra")
        pcs = IntelPcs(infra, breaker=breaker, freshness=strict)
        collateral = TieredCollateral(pcs, freshness=lenient)
        service = VerifierService(
            "tdx-test", TdxVerifier(pcs, collateral=collateral),
            collateral=collateral, sessions=SessionCache(ttl_ns=1e18))
        qe = QuotingEnclave(pcs, infra)
        module = TdxModule()

        def job(measurement, ctx, wave=0):
            nonce = ctx.rng.child(f"nonce/{wave}/{measurement}").bytes(16)
            from repro.attest import generate_tdx_quote

            return VerificationJob(
                measurement=measurement, nonce=nonce,
                build_evidence=lambda c, n=nonce, m=measurement:
                    generate_tdx_quote(module, qe, pcs, c, n,
                                       td_identity=m))

        return service, pcs, job

    def test_denies_release_on_stale_collateral(self):
        service, pcs, job = self._stale_service()
        kbs = KeyBrokerService(service)
        kbs.register_key("k", b"\x01" * 32)

        ctx = make_ctx(3)
        service.verify_launch(job("m1", ctx), ctx)
        # trip the breaker so the origin is gone for good
        with pytest.raises(Exception):
            pcs.fetch_tcb_info(make_ctx(
                4, faults=FaultContext(ALWAYS_TIMEOUT, "kill")))
        # advance the clock past every cached CRL's next_update; the
        # session (stored with the old expiry) invalidates, and the
        # re-verification can only serve the stale cached CRLs
        expiry = service.collateral.earliest_crl_expiry_ns()
        assert math.isfinite(expiry)
        ctx.clock.advance(expiry - ctx.clock.now() + 1.0)

        with pytest.raises(KeyReleaseDeniedError) as excinfo:
            kbs.release(job("m1", ctx, wave=1), ("k",), ctx)
        assert excinfo.value.reason == "stale_collateral"
        assert kbs.stats["denied.stale_collateral"] == 1
        assert kbs.stats["released"] == 0

    def test_lenient_broker_accepts_grace_window(self):
        service, pcs, job = self._stale_service(seed=32)
        kbs = KeyBrokerService(service, require_fresh_collateral=False)
        kbs.register_key("k", b"\x01" * 32)

        ctx = make_ctx(5)
        service.verify_launch(job("m1", ctx), ctx)
        with pytest.raises(Exception):
            pcs.fetch_tcb_info(make_ctx(
                6, faults=FaultContext(ALWAYS_TIMEOUT, "kill")))
        expiry = service.collateral.earliest_crl_expiry_ns()
        ctx.clock.advance(expiry - ctx.clock.now() + 1.0)
        release = kbs.release(job("m1", ctx, wave=1), ("k",), ctx)
        assert release.keys == {"k": b"\x01" * 32}


class _FixedCollateral:
    """Duck-typed collateral with a pinned CRL expiry."""

    def __init__(self, expiry_ns):
        self._expiry_ns = expiry_ns

    def earliest_crl_expiry_ns(self):
        return self._expiry_ns


class _AcceptingService:
    """Duck-typed verifier service that accepts every launch."""

    def __init__(self, expiry_ns):
        self.collateral = _FixedCollateral(expiry_ns)

    def verify_launch(self, job, ctx, queue_wait_ns=0.0):
        from repro.attest.service import LaunchVerdict

        return LaunchVerdict(measurement=job.measurement, accepted=True,
                             resumed=False, tier="host",
                             queue_wait_ns=queue_wait_ns, verify_ns=0.0)


class _Job:
    measurement = "m"


class TestBoundaryAgreement:
    """now == next_update is stale for *every* consumer at once."""

    def _release_at(self, now_ns, expiry_ns):
        kbs = KeyBrokerService(_AcceptingService(expiry_ns))
        kbs.register_key("k", b"\x02" * 32)
        ctx = make_ctx(9)
        ctx.clock.advance(now_ns - ctx.clock.now())
        assert ctx.clock.now() == now_ns
        # the KBS charges its own handshake before checking freshness,
        # which would advance the clock past the boundary under test —
        # pin the check by measuring against the pre-charge reading
        before = ctx.clock.now()
        try:
            kbs.release(_Job(), ("k",), ctx)
            return True, before
        except KeyReleaseDeniedError as exc:
            assert exc.reason == "stale_collateral"
            return False, before

    def test_all_consumers_agree_at_exact_next_update(self):
        from repro.attest.certs import CertificateRevocationList
        from repro.attest.pcs import FreshnessPolicy, Staleness

        expiry = 1_000_000.0
        crl = CertificateRevocationList(
            issuer="ca", revoked_serials=frozenset(),
            this_update=0.0, next_update=expiry)
        policy = FreshnessPolicy(ttl_ns=1e18, max_stale_ns=1e18)
        cache = SessionCache(ttl_ns=1e18)
        cache.store("m", None, crl_expiry_ns=expiry, now_ns=0.0)
        cache.store("m2", None, crl_expiry_ns=expiry, now_ns=0.0)

        # strictly before next_update: fresh everywhere
        just_before = expiry - 1.0
        assert not crl.is_stale(just_before)
        assert policy.classify(crl, 0.0, just_before) is Staleness.FRESH
        assert cache.lookup("m", None, now_ns=just_before) is not None

        # at exactly next_update: stale everywhere, including the KBS
        assert crl.is_stale(expiry)
        assert policy.classify(crl, 0.0, expiry) is not Staleness.FRESH
        assert cache.lookup("m2", None, now_ns=expiry) is None

    def test_kbs_boundary_is_strict(self):
        expiry = 50_000_000.0
        released, now = self._release_at(expiry, expiry)
        assert now == expiry and not released
        # the KBS handshake itself advances the clock, so the fresh
        # side of the boundary needs headroom covering that charge
        released, now = self._release_at(1_000.0, expiry)
        assert released
