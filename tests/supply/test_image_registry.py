"""The image model and both pull strategies.

Covers the content-addressing and sealing invariants (deterministic
builds, offset-addressable keystream, digests over sealed bytes), the
cosign-style signature discipline, the eager/lazy pull split, and the
tamper paths: a corrupted chunk or a forged manifest aborts with the
typed :class:`~repro.errors.ImageVerificationError` before anything
reaches the guest filesystem.
"""

import pytest

from repro.attest.crypto import derived_keypair
from repro.errors import ImageVerificationError, SupplyChainError
from repro.guestos.context import ExecContext
from repro.guestos.filesystem import InMemoryFileSystem
from repro.hw.machine import xeon_gold_5515
from repro.sim.rng import SimRng
from repro.supply import (
    CHUNK_BYTES,
    EagerPull,
    LazyPull,
    Registry,
    build_image,
    keystream_xor,
    sha256_digest,
    sign_image,
    verify_image_signature,
)


def make_ctx(seed=1):
    return ExecContext(machine=xeon_gold_5515(),
                       rng=SimRng(seed, "supply-ctx"))


def make_signed(seed=7, encrypted=True):
    rng = SimRng(seed, "supply-test")
    bundle = build_image("app", "v1", rng.child("image"),
                         encrypted=encrypted)
    publisher = derived_keypair(rng.child("publisher"), "publisher")
    sign_image(bundle, publisher)
    registry = Registry()
    registry.push(bundle)
    return bundle, publisher, registry


class TestImageModel:
    def test_build_is_deterministic(self):
        one = build_image("app", "v1", SimRng(3, "img"))
        two = build_image("app", "v1", SimRng(3, "img"))
        assert one.manifest.digest == two.manifest.digest
        assert one.blobs == two.blobs
        assert one.keys == two.keys

    def test_digests_cover_sealed_bytes(self):
        bundle = build_image("app", "v1", SimRng(4, "img"))
        for layer in bundle.manifest.layers:
            assert layer.encrypted and layer.key_id
            for chunk in layer.chunks:
                assert sha256_digest(bundle.blobs[chunk.digest]) == \
                    chunk.digest

    def test_keystream_is_offset_addressable(self):
        key = SimRng(5, "key").bytes(32)
        plaintext = SimRng(5, "data").bytes(3 * CHUNK_BYTES)
        sealed = keystream_xor(plaintext, key)
        # chunk 2 decrypts alone, without touching chunks 0-1
        offset = 2 * CHUNK_BYTES
        piece = keystream_xor(sealed[offset:], key, offset)
        assert piece == plaintext[offset:]

    def test_keystream_offset_must_be_aligned(self):
        with pytest.raises(SupplyChainError):
            keystream_xor(b"x" * 64, b"k" * 32, offset=7)

    def test_signature_roundtrip_and_forgery(self):
        bundle, publisher, _registry = make_signed()
        ctx = make_ctx()
        verify_image_signature(bundle.manifest, bundle.signature,
                               publisher.public, ctx)
        assert ctx.ledger.total() > 0.0
        stranger = derived_keypair(SimRng(9, "x"), "stranger")
        with pytest.raises(ImageVerificationError):
            verify_image_signature(bundle.manifest, bundle.signature,
                                   stranger.public, make_ctx())
        with pytest.raises(ImageVerificationError):
            verify_image_signature(bundle.manifest, None,
                                   publisher.public, make_ctx())


class TestPullStrategies:
    def test_eager_pull_fetches_everything(self):
        bundle, publisher, registry = make_signed()
        fs = InMemoryFileSystem()
        report = EagerPull(registry, publisher.public).pull(
            "app", "v1", fs, make_ctx(), keys=bundle.keys)
        assert report.signature_verified
        assert report.chunks_fetched == bundle.manifest.total_chunks
        assert report.chunk_faults == 0
        assert report.bytes_pulled == bundle.manifest.total_size
        assert fs.total_files() == bundle.manifest.total_chunks
        # the registry log agrees: manifest + every chunk, no errors
        assert registry.clean_log_entries() == \
            1 + bundle.manifest.total_chunks

    def test_eager_unpack_restores_plaintext(self):
        bundle, publisher, registry = make_signed()
        fs = InMemoryFileSystem()
        EagerPull(registry, publisher.public).pull(
            "app", "v1", fs, make_ctx(), keys=bundle.keys)
        layer = bundle.manifest.layers[0]
        unpacked = fs.read("/images/app/v1/layer-0/chunk-0")
        sealed = bundle.blobs[layer.chunks[0].digest]
        key = bundle.keys[layer.key_id]
        assert unpacked == keystream_xor(sealed, key, 0)

    def test_lazy_pull_bootstraps_then_faults(self):
        bundle, publisher, registry = make_signed()
        fs = InMemoryFileSystem()
        ctx = make_ctx()
        image = LazyPull(registry, publisher.public).pull(
            "app", "v1", fs, ctx, keys=bundle.keys)
        layers = len(bundle.manifest.layers)
        assert image.report.chunks_fetched == layers  # first chunk each
        assert image.report.chunk_faults == 0
        # touching a bootstrapped chunk is a hit, not a fault
        assert image.access(0, 0, ctx) is False
        # a cold chunk faults exactly once
        assert image.access(0, 1, ctx) is True
        assert image.access(0, 1, ctx) is False
        assert image.report.chunk_faults == 1
        assert registry.clean_log_entries() == 1 + layers + 1

    def test_lazy_faults_are_deterministic(self):
        totals = []
        for _round in range(2):
            bundle, publisher, registry = make_signed()
            fs = InMemoryFileSystem()
            ctx = make_ctx(2)
            image = LazyPull(registry, publisher.public).pull(
                "app", "v1", fs, ctx, keys=bundle.keys)
            fault_rng = ctx.rng.child("faults")
            for _ in range(8):
                layer = fault_rng.randint(0,
                                          len(bundle.manifest.layers) - 1)
                chunk = fault_rng.randint(
                    0, len(bundle.manifest.layers[layer].chunks) - 1)
                image.access(layer, chunk, ctx)
            totals.append((image.report.chunk_faults,
                           image.report.bytes_pulled,
                           ctx.ledger.total()))
        assert totals[0] == totals[1]

    def test_missing_key_fails_fast(self):
        bundle, publisher, registry = make_signed()
        with pytest.raises(SupplyChainError, match="no such key"):
            EagerPull(registry, publisher.public).pull(
                "app", "v1", InMemoryFileSystem(), make_ctx(), keys={})

    def test_unsigned_pull_skips_signature(self):
        rng = SimRng(8, "plain")
        bundle = build_image("plain", "v1", rng, encrypted=False)
        registry = Registry()
        registry.push(bundle)
        report = EagerPull(registry).pull("plain", "v1",
                                          InMemoryFileSystem(), make_ctx())
        assert not report.signature_verified
        assert report.chunks_fetched == bundle.manifest.total_chunks


class TestTamper:
    def test_tampered_chunk_aborts_launch_with_typed_error(self):
        bundle, publisher, registry = make_signed()
        victim = bundle.manifest.layers[1].chunks[0]
        registry.tamper(victim.digest)
        fs = InMemoryFileSystem()
        with pytest.raises(ImageVerificationError,
                           match="aborting launch"):
            EagerPull(registry, publisher.public).pull(
                "app", "v1", fs, make_ctx(), keys=bundle.keys)
        # layer 0 unpacked before the abort, but the tampered layer
        # never reached the filesystem
        assert not fs.exists("/images/app/v1/layer-1/chunk-0")

    def test_tampered_lazy_fault_aborts(self):
        bundle, publisher, registry = make_signed()
        victim = bundle.manifest.layers[0].chunks[1]
        registry.tamper(victim.digest)
        ctx = make_ctx()
        image = LazyPull(registry, publisher.public).pull(
            "app", "v1", InMemoryFileSystem(), ctx, keys=bundle.keys)
        with pytest.raises(ImageVerificationError):
            image.access(0, 1, ctx)

    def test_tamper_unknown_blob_rejected(self):
        registry = Registry()
        with pytest.raises(SupplyChainError):
            registry.tamper("sha256:deadbeef")

    def test_manifest_miss_logs_error_entry(self):
        registry = Registry()
        with pytest.raises(SupplyChainError):
            registry.fetch_manifest("ghost", "v1", make_ctx())
        assert registry.clean_log_entries() == 0
        assert len(registry.request_log) == 1
