"""Tests for the process table, pipes and scheduler."""

import pytest

from repro.errors import GuestOsError, ProcessError
from repro.guestos.pipes import Pipe
from repro.guestos.process import ProcessState, ProcessTable
from repro.guestos.scheduler import RoundRobinScheduler


class TestProcessTable:
    def test_init_process_exists(self):
        table = ProcessTable()
        assert table.get(1).name == "init"

    def test_fork_assigns_new_pid(self):
        table = ProcessTable()
        child = table.fork(1)
        assert child.pid == 2
        assert child.parent_pid == 1
        assert 2 in table.get(1).children

    def test_fork_inherits_name(self):
        table = ProcessTable()
        assert table.fork(1).name == "init"

    def test_fork_with_name(self):
        table = ProcessTable()
        assert table.fork(1, "worker").name == "worker"

    def test_fork_unknown_parent_fails(self):
        with pytest.raises(ProcessError):
            ProcessTable().fork(99)

    def test_fork_limit(self):
        table = ProcessTable(max_processes=2)
        table.fork(1)
        with pytest.raises(ProcessError):
            table.fork(1)

    def test_exec_renames(self):
        table = ProcessTable()
        child = table.fork(1)
        table.exec(child.pid, "/bin/true")
        assert table.get(child.pid).name == "/bin/true"

    def test_exit_creates_zombie(self):
        table = ProcessTable()
        child = table.fork(1)
        table.exit(child.pid, 3)
        assert table.get(child.pid).state is ProcessState.ZOMBIE
        assert table.get(child.pid).exit_code == 3

    def test_init_cannot_exit(self):
        with pytest.raises(ProcessError):
            ProcessTable().exit(1)

    def test_double_exit_fails(self):
        table = ProcessTable()
        child = table.fork(1)
        table.exit(child.pid)
        with pytest.raises(ProcessError):
            table.exit(child.pid)

    def test_wait_reaps_zombie(self):
        table = ProcessTable()
        child = table.fork(1)
        table.exit(child.pid, 7)
        pid, code = table.wait(1)
        assert (pid, code) == (child.pid, 7)
        assert table.get(child.pid).state is ProcessState.REAPED

    def test_wait_without_zombie_fails(self):
        table = ProcessTable()
        table.fork(1)
        with pytest.raises(ProcessError):
            table.wait(1)

    def test_full_spawn_cycle_frees_slot(self):
        table = ProcessTable(max_processes=2)
        for _ in range(10):
            child = table.fork(1)
            table.exit(child.pid)
            table.wait(1)
        assert table.live_count() == 1

    def test_sleep_and_wake(self):
        table = ProcessTable()
        child = table.fork(1)
        table.sleep(child.pid)
        assert table.get(child.pid).state is ProcessState.SLEEPING
        table.wake(child.pid)
        assert table.get(child.pid).state is ProcessState.RUNNING

    def test_wake_running_fails(self):
        table = ProcessTable()
        with pytest.raises(ProcessError):
            table.wake(1)

    def test_exec_on_zombie_fails(self):
        table = ProcessTable()
        child = table.fork(1)
        table.exit(child.pid)
        with pytest.raises(ProcessError):
            table.exec(child.pid, "x")


class TestPipe:
    def test_write_then_read(self):
        pipe = Pipe()
        assert pipe.write(b"hello") == 5
        assert pipe.read(5) == b"hello"

    def test_partial_read(self):
        pipe = Pipe()
        pipe.write(b"abcdef")
        assert pipe.read(2) == b"ab"
        assert pipe.read(10) == b"cdef"

    def test_bounded_capacity(self):
        pipe = Pipe(capacity=4)
        assert pipe.write(b"abcdef") == 4
        assert pipe.fill == 4
        assert pipe.space == 0

    def test_read_frees_space(self):
        pipe = Pipe(capacity=4)
        pipe.write(b"abcd")
        pipe.read(2)
        assert pipe.space == 2

    def test_empty_read_returns_empty(self):
        assert Pipe().read(10) == b""

    def test_counters(self):
        pipe = Pipe()
        pipe.write(b"abc")
        pipe.read(2)
        assert pipe.total_written == 3
        assert pipe.total_read == 2

    def test_write_after_close_fails(self):
        pipe = Pipe()
        pipe.close_write()
        with pytest.raises(GuestOsError):
            pipe.write(b"x")

    def test_broken_pipe(self):
        pipe = Pipe()
        pipe.close_read()
        with pytest.raises(GuestOsError):
            pipe.write(b"x")

    def test_eof_after_drain(self):
        pipe = Pipe()
        pipe.write(b"ab")
        pipe.close_write()
        assert not pipe.eof
        pipe.read(2)
        assert pipe.eof

    def test_negative_read_fails(self):
        with pytest.raises(GuestOsError):
            Pipe().read(-1)

    def test_bad_capacity(self):
        with pytest.raises(GuestOsError):
            Pipe(capacity=0)


class TestScheduler:
    def test_starts_on_init(self):
        scheduler = RoundRobinScheduler(ProcessTable())
        assert scheduler.current_pid == 1

    def test_round_robin_cycles(self):
        table = ProcessTable()
        a = table.fork(1).pid
        b = table.fork(1).pid
        scheduler = RoundRobinScheduler(table)
        seen = [scheduler.next() for _ in range(3)]
        assert seen == [a, b, 1]

    def test_switch_counts(self):
        table = ProcessTable()
        table.fork(1)
        scheduler = RoundRobinScheduler(table)
        scheduler.next()
        scheduler.next()
        assert scheduler.switch_count == 2

    def test_switch_to_self_not_counted(self):
        scheduler = RoundRobinScheduler(ProcessTable())
        assert scheduler.switch_to(1) is False
        assert scheduler.switch_count == 0

    def test_skips_sleeping(self):
        table = ProcessTable()
        a = table.fork(1).pid
        b = table.fork(1).pid
        table.sleep(a)
        scheduler = RoundRobinScheduler(table)
        assert scheduler.next() == b

    def test_switch_to_sleeping_fails(self):
        table = ProcessTable()
        child = table.fork(1)
        table.sleep(child.pid)
        scheduler = RoundRobinScheduler(table)
        with pytest.raises(ProcessError):
            scheduler.switch_to(child.pid)

    def test_single_process_next_is_self(self):
        scheduler = RoundRobinScheduler(ProcessTable())
        assert scheduler.next() == 1
