"""Model-based property tests: the in-memory FS against a dict model."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import FileSystemError
from repro.guestos.filesystem import InMemoryFileSystem

file_names = st.sampled_from([f"/f{i}" for i in range(6)])
payloads = st.binary(max_size=128)


class FsModel(RuleBasedStateMachine):
    """Drive the FS and a plain dict with the same operations."""

    def __init__(self):
        super().__init__()
        self.fs = InMemoryFileSystem()
        self.model: dict[str, bytearray] = {}

    @rule(path=file_names)
    def create(self, path):
        if path in self.model:
            try:
                self.fs.create(path)
                raise AssertionError("duplicate create must fail")
            except FileSystemError:
                pass
        else:
            self.fs.create(path)
            self.model[path] = bytearray()

    @rule(path=file_names, data=payloads)
    def append(self, path, data):
        if path in self.model:
            self.fs.write(path, data)
            self.model[path].extend(data)
        else:
            try:
                self.fs.write(path, data)
                raise AssertionError("write to missing file must fail")
            except FileSystemError:
                pass

    @rule(path=file_names, data=payloads, offset=st.integers(0, 64))
    def overwrite(self, path, data, offset):
        if path not in self.model:
            return
        size = len(self.model[path])
        if offset > size:
            try:
                self.fs.write(path, data, offset=offset)
                raise AssertionError("out-of-range offset must fail")
            except FileSystemError:
                pass
            return
        self.fs.write(path, data, offset=offset)
        blob = self.model[path]
        end = offset + len(data)
        if end > len(blob):
            blob.extend(b"\0" * (end - len(blob)))
        blob[offset:end] = data

    @rule(path=file_names, size=st.integers(0, 200))
    def truncate(self, path, size):
        if path not in self.model:
            return
        self.fs.truncate(path, size)
        blob = self.model[path]
        if size <= len(blob):
            del blob[size:]
        else:
            blob.extend(b"\0" * (size - len(blob)))

    @rule(path=file_names)
    def unlink(self, path):
        if path in self.model:
            returned = self.fs.unlink(path)
            assert returned == len(self.model[path])
            del self.model[path]
        else:
            try:
                self.fs.unlink(path)
                raise AssertionError("unlink of missing file must fail")
            except FileSystemError:
                pass

    @invariant()
    def contents_match(self):
        for path, blob in self.model.items():
            assert self.fs.read(path) == bytes(blob), path
        assert self.fs.total_files() == len(self.model)

    @invariant()
    def missing_files_stay_missing(self):
        for i in range(6):
            path = f"/f{i}"
            assert self.fs.exists(path) == (path in self.model)


FsModel.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestFsModel = FsModel.TestCase


@settings(max_examples=40, deadline=None)
@given(
    chunks=st.lists(payloads, max_size=10),
    read_offset=st.integers(0, 300),
    read_length=st.integers(0, 300),
)
def test_ranged_reads_match_slicing(chunks, read_offset, read_length):
    """Property: ranged reads equal Python slicing of the full blob."""
    fs = InMemoryFileSystem()
    fs.create("/blob")
    whole = b"".join(chunks)
    for chunk in chunks:
        fs.write("/blob", chunk)
    if read_offset > len(whole):
        try:
            fs.read("/blob", offset=read_offset, length=read_length)
            raise AssertionError("out-of-range read must fail")
        except FileSystemError:
            return
    expected = whole[read_offset:read_offset + read_length]
    assert fs.read("/blob", offset=read_offset, length=read_length) == expected
