"""Tests for the execution context and guest kernel cost accounting."""

import pytest

from repro.errors import GuestOsError
from repro.guestos.context import CostProfile, ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.machine import xeon_gold_5515
from repro.sim.ledger import CostCategory
from repro.sim.rng import SimRng


def make_ctx(profile: CostProfile | None = None, seed: int = 1) -> ExecContext:
    return ExecContext(
        machine=xeon_gold_5515(),
        profile=profile if profile is not None else CostProfile(noise_sigma=0.0),
        rng=SimRng(seed),
    )


class TestExecContext:
    def test_charge_advances_clock_and_ledger(self):
        ctx = make_ctx()
        ctx.charge(CostCategory.CPU, 100.0)
        assert ctx.clock.now() == pytest.approx(100.0)
        assert ctx.ledger.get(CostCategory.CPU) == pytest.approx(100.0)

    def test_cpu_multiplier_applies(self):
        base = make_ctx(CostProfile(noise_sigma=0.0))
        scaled = make_ctx(CostProfile(cpu_multiplier=2.0, noise_sigma=0.0))
        base.cpu_execute(10_000)
        scaled.cpu_execute(10_000)
        assert scaled.ledger.total() == pytest.approx(base.ledger.total() * 2.0)

    def test_simulator_multiplier_scales_everything(self):
        plain = make_ctx(CostProfile(noise_sigma=0.0))
        simulated = make_ctx(CostProfile(simulator_multiplier=3.0, noise_sigma=0.0))
        plain.disk_read(1024)
        simulated.disk_read(1024)
        assert simulated.ledger.total() == pytest.approx(plain.ledger.total() * 3.0)

    def test_bounce_buffer_charged_on_io(self):
        ctx = make_ctx(CostProfile(io_bounce_per_byte_ns=0.5, noise_sigma=0.0))
        ctx.disk_write(1000)
        assert ctx.ledger.get(CostCategory.BOUNCE_BUFFER) == pytest.approx(500.0)
        assert ctx.machine.counters.bounce_buffer_bytes == 1000

    def test_no_bounce_without_profile(self):
        ctx = make_ctx()
        ctx.disk_write(1000)
        assert ctx.ledger.get(CostCategory.BOUNCE_BUFFER) == 0.0

    def test_syscall_transition_counted(self):
        ctx = make_ctx(CostProfile(syscall_transition_ns=4000.0, noise_sigma=0.0))
        ctx.syscall_entry(300.0)
        assert ctx.ledger.get(CostCategory.VM_TRANSITION) == pytest.approx(4000.0)
        assert ctx.machine.counters.vm_transitions == 1

    def test_native_syscall_has_no_transition(self):
        ctx = make_ctx()
        ctx.syscall_entry(300.0)
        assert ctx.ledger.get(CostCategory.VM_TRANSITION) == 0.0

    def test_elapsed_excludes_startup(self):
        ctx = make_ctx()
        ctx.startup(1_000_000)
        ctx.cpu_execute(1000)
        assert ctx.elapsed_ns() < 1_000_000
        assert ctx.elapsed_ns(exclude_startup=False) > 1_000_000

    def test_run_noise_reproducible_per_seed(self):
        profile = CostProfile(noise_sigma=0.2)
        a = ExecContext(machine=xeon_gold_5515(), profile=profile, rng=SimRng(5))
        b = ExecContext(machine=xeon_gold_5515(), profile=profile, rng=SimRng(5))
        a.cpu_execute(10_000)
        b.cpu_execute(10_000)
        assert a.ledger.total() == b.ledger.total()

    def test_run_noise_varies_across_seeds(self):
        profile = CostProfile(noise_sigma=0.2)
        totals = set()
        for seed in range(5):
            ctx = ExecContext(machine=xeon_gold_5515(), profile=profile,
                              rng=SimRng(seed))
            ctx.cpu_execute(10_000)
            totals.add(ctx.ledger.total())
        assert len(totals) == 5

    def test_cache_bonus_speeds_up_memory_bound_run(self):
        bonus_profile = CostProfile(
            cache_hit_bonus_probability=1.0, cache_hit_bonus=0.5, noise_sigma=0.0
        )
        plain = make_ctx()
        lucky = make_ctx(bonus_profile)
        working_set = 40 * plain.machine.cpu.cache.size_bytes
        plain.cpu_execute(1000, memory_references=100_000,
                          working_set_bytes=working_set)
        lucky.cpu_execute(1000, memory_references=100_000,
                          working_set_bytes=working_set)
        assert lucky.ledger.total() < plain.ledger.total()

    def test_network_round_trip_charges(self):
        ctx = make_ctx()
        ctx.network_round_trip(4096)
        assert ctx.ledger.get(CostCategory.NETWORK) > 0

    def test_mem_alloc_encrypted_costs_more(self):
        plain = make_ctx()
        secure = make_ctx(CostProfile(mem_encrypted=True, mem_integrity=True,
                                      noise_sigma=0.0))
        plain.mem_alloc(1 << 20)
        secure.mem_alloc(1 << 20)
        assert secure.ledger.total() > plain.ledger.total()


class TestGuestKernel:
    def make_kernel(self, profile: CostProfile | None = None) -> GuestKernel:
        return GuestKernel(make_ctx(profile))

    def test_getpid(self):
        kernel = self.make_kernel()
        assert kernel.sys_getpid() == 1
        assert kernel.syscall_count == 1

    def test_file_write_read_round_trip(self):
        kernel = self.make_kernel()
        kernel.sys_create("/data")
        kernel.sys_write("/data", b"payload")
        assert kernel.sys_read("/data") == b"payload"

    def test_write_charges_io_and_memory(self):
        kernel = self.make_kernel()
        kernel.sys_create("/f")
        kernel.sys_write("/f", b"x" * 4096)
        ledger = kernel.ctx.ledger
        assert ledger.get(CostCategory.IO_WRITE) > 0
        assert ledger.get(CostCategory.MEM_ACCESS) > 0
        assert ledger.get(CostCategory.SYSCALL) > 0

    def test_stat(self):
        kernel = self.make_kernel()
        kernel.sys_create("/f")
        kernel.sys_write("/f", b"abc")
        info = kernel.sys_stat("/f")
        assert info == {"is_dir": False, "size": 3}

    def test_stat_missing_raises(self):
        with pytest.raises(GuestOsError):
            self.make_kernel().sys_stat("/nope")

    def test_mkdir_rmdir_unlink_flow(self):
        kernel = self.make_kernel()
        kernel.sys_mkdir("/d")
        kernel.sys_create("/d/f")
        kernel.sys_write("/d/f", b"12")
        assert kernel.sys_unlink("/d/f") == 2
        kernel.sys_rmdir("/d")
        assert not kernel.fs.exists("/d")

    def test_fork_exec_exit_wait(self):
        kernel = self.make_kernel()
        child = kernel.sys_fork("worker")
        kernel.sys_exec(child.pid, "/bin/task")
        kernel.sys_exit(child.pid, 9)
        pid, code = kernel.sys_wait()
        assert (pid, code) == (child.pid, 9)

    def test_clock_gettime_moves_forward(self):
        kernel = self.make_kernel()
        t0 = kernel.sys_clock_gettime()
        kernel.sys_getpid()
        assert kernel.sys_clock_gettime() > t0

    def test_brk_allocates(self):
        kernel = self.make_kernel()
        kernel.sys_brk(1 << 20)
        assert kernel.ctx.ledger.get(CostCategory.MEM_ALLOC) > 0

    def test_yield_switches(self):
        kernel = self.make_kernel()
        kernel.sys_fork()
        assert kernel.sys_yield() == 2

    def test_pipe_ping_pong_moves_bytes(self):
        kernel = self.make_kernel()
        moved = kernel.pipe_ping_pong(rounds=10, payload=128)
        assert moved == 1280
        assert kernel.scheduler.switch_count == 20

    def test_pipe_ping_pong_rejects_negative(self):
        with pytest.raises(GuestOsError):
            self.make_kernel().pipe_ping_pong(-1)

    def test_context_switch_transitions_on_tee(self):
        tee_profile = CostProfile(halt_transition_ns=4000.0, noise_sigma=0.0)
        native = self.make_kernel()
        secure = self.make_kernel(tee_profile)
        native.pipe_ping_pong(rounds=50)
        secure.pipe_ping_pong(rounds=50)
        assert secure.ctx.machine.counters.vm_transitions > 0
        assert native.ctx.machine.counters.vm_transitions == 0
        assert secure.ctx.elapsed_ns() > native.ctx.elapsed_ns()

    def test_context_switch_counter(self):
        kernel = self.make_kernel()
        kernel.context_switch()
        assert kernel.ctx.machine.counters.context_switches == 1
