"""Tests for the in-memory filesystem."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FileSystemError
from repro.guestos.filesystem import InMemoryFileSystem


@pytest.fixture
def fs():
    return InMemoryFileSystem()


class TestDirectories:
    def test_root_exists(self, fs):
        assert fs.exists("/")
        assert fs.is_dir("/")

    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        assert fs.listdir("/") == ["a"]
        assert fs.listdir("/a") == ["b"]

    def test_mkdir_requires_parent(self, fs):
        with pytest.raises(FileSystemError):
            fs.mkdir("/missing/child")

    def test_mkdir_duplicate_fails(self, fs):
        fs.mkdir("/a")
        with pytest.raises(FileSystemError):
            fs.mkdir("/a")

    def test_makedirs_creates_ancestors(self, fs):
        fs.makedirs("/x/y/z")
        assert fs.is_dir("/x/y/z")

    def test_makedirs_idempotent(self, fs):
        fs.makedirs("/x/y")
        fs.makedirs("/x/y")
        assert fs.is_dir("/x/y")

    def test_makedirs_refuses_file_in_path(self, fs):
        fs.create("/f")
        with pytest.raises(FileSystemError):
            fs.makedirs("/f/sub")

    def test_rmdir_empty(self, fs):
        fs.mkdir("/a")
        fs.rmdir("/a")
        assert not fs.exists("/a")

    def test_rmdir_nonempty_fails(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(FileSystemError):
            fs.rmdir("/a")

    def test_rmdir_on_file_fails(self, fs):
        fs.create("/f")
        with pytest.raises(FileSystemError):
            fs.rmdir("/f")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.mkdir("relative")


class TestFiles:
    def test_create_and_read_empty(self, fs):
        fs.create("/f")
        assert fs.read("/f") == b""
        assert fs.file_size("/f") == 0

    def test_create_duplicate_fails(self, fs):
        fs.create("/f")
        with pytest.raises(FileSystemError):
            fs.create("/f")

    def test_append_write(self, fs):
        fs.create("/f")
        fs.write("/f", b"hello")
        fs.write("/f", b" world")
        assert fs.read("/f") == b"hello world"

    def test_offset_write_overwrites(self, fs):
        fs.create("/f")
        fs.write("/f", b"AAAA")
        fs.write("/f", b"BB", offset=1)
        assert fs.read("/f") == b"ABBA"

    def test_offset_write_extends(self, fs):
        fs.create("/f")
        fs.write("/f", b"AB")
        fs.write("/f", b"CD", offset=2)
        assert fs.read("/f") == b"ABCD"

    def test_offset_beyond_eof_fails(self, fs):
        fs.create("/f")
        with pytest.raises(FileSystemError):
            fs.write("/f", b"x", offset=5)

    def test_ranged_read(self, fs):
        fs.create("/f")
        fs.write("/f", b"abcdef")
        assert fs.read("/f", offset=2, length=3) == b"cde"

    def test_read_past_eof_truncates(self, fs):
        fs.create("/f")
        fs.write("/f", b"ab")
        assert fs.read("/f", offset=1, length=100) == b"b"

    def test_read_negative_length_fails(self, fs):
        fs.create("/f")
        with pytest.raises(FileSystemError):
            fs.read("/f", length=-1)

    def test_read_missing_file_fails(self, fs):
        with pytest.raises(FileSystemError):
            fs.read("/nope")

    def test_read_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileSystemError):
            fs.read("/d")

    def test_truncate_shrinks(self, fs):
        fs.create("/f")
        fs.write("/f", b"abcdef")
        fs.truncate("/f", 3)
        assert fs.read("/f") == b"abc"

    def test_truncate_grows_zero_filled(self, fs):
        fs.create("/f")
        fs.write("/f", b"ab")
        fs.truncate("/f", 4)
        assert fs.read("/f") == b"ab\0\0"

    def test_unlink_returns_size(self, fs):
        fs.create("/f")
        fs.write("/f", b"12345")
        assert fs.unlink("/f") == 5
        assert not fs.exists("/f")

    def test_unlink_missing_fails(self, fs):
        with pytest.raises(FileSystemError):
            fs.unlink("/nope")

    def test_unlink_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileSystemError):
            fs.unlink("/d")

    def test_total_files_counts_recursively(self, fs):
        fs.makedirs("/a/b")
        fs.create("/f1")
        fs.create("/a/f2")
        fs.create("/a/b/f3")
        assert fs.total_files() == 3


class TestNestedWorkflow:
    def test_faas_filesystem_scenario(self, fs):
        """The paper's `filesystem` FaaS workload: nested dirs + 1 MB file."""
        fs.makedirs("/outer/inner")
        fs.create("/outer/inner/data.bin")
        payload = b"\xab" * (1 << 20)
        fs.write("/outer/inner/data.bin", payload)
        assert fs.read("/outer/inner/data.bin") == payload
        fs.unlink("/outer/inner/data.bin")
        fs.rmdir("/outer/inner")
        fs.rmdir("/outer")
        assert fs.listdir("/") == []


@given(
    chunks=st.lists(st.binary(max_size=64), max_size=20),
)
def test_append_concatenates(chunks):
    """Property: appended writes read back as their concatenation."""
    fs = InMemoryFileSystem()
    fs.create("/f")
    for chunk in chunks:
        fs.write("/f", chunk)
    assert fs.read("/f") == b"".join(chunks)


@given(
    data=st.binary(min_size=1, max_size=256),
    cut=st.integers(min_value=0, max_value=256),
)
def test_truncate_then_size(data, cut):
    """Property: after truncate(n), size is min(n, grown size)."""
    fs = InMemoryFileSystem()
    fs.create("/f")
    fs.write("/f", data)
    fs.truncate("/f", cut)
    assert fs.file_size("/f") == cut if cut <= len(data) else cut
