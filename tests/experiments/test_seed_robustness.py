"""Seed robustness: the paper's findings hold across random seeds.

The benches pin seed 1; this test re-runs the quick whole-evaluation
at other seeds to confirm the calibration isn't a single-seed
accident.  (Slow-ish: one quick evaluation per seed.)
"""

import pytest

from repro.experiments.summary import run_evaluation


@pytest.mark.parametrize("seed", [7, 2025])
def test_all_findings_hold_at_seed(seed):
    summary = run_evaluation(seed=seed, quick=True)
    failing = [
        f"{check.artifact}: {check.finding} ({check.detail})"
        for check in summary.checks if not check.holds
    ]
    assert not failing, "\n".join(failing)
