"""The fig5-extension experiment: cache tiers, reconciliation, determinism."""

from repro.core.runner import TrialRunner
from repro.experiments import run_fig5_service


def result_key(result):
    return (result.tier_latencies_ns, result.counters, result.reconciled,
            result.queue_depth_peak, result.queue_wait_ns, result.metrics)


class TestFig5Service:
    def test_tier_ordering_and_reconciliation(self):
        result = run_fig5_service(seed=3, trials=1)
        lat = result.tier_latencies_ns
        # warm tiers eliminate the origin-fetch latency; sessions
        # eliminate verification itself
        assert lat["tdx origin"] > lat["tdx host"]
        assert lat["tdx origin"] > lat["tdx cdn"]
        assert lat["tdx session"] < lat["tdx host"] / 100
        assert lat["sev-snp session"] < lat["sev-snp local"] / 10
        # the obs counters and the PCS request log tell the same story
        assert result.reconciled
        assert result.counters["tdx.collateral.host-a.origin.fetches"] == 4
        assert result.queue_depth_peak >= 1
        assert result.render()  # renders without error

    def test_serial_and_parallel_runs_are_identical(self):
        serial = run_fig5_service(seed=5, trials=2,
                                  runner=TrialRunner(jobs=1))
        parallel = run_fig5_service(seed=5, trials=2,
                                    runner=TrialRunner(jobs=2))
        assert result_key(serial) == result_key(parallel)

    def test_metrics_snapshot_carries_service_streams(self):
        result = run_fig5_service(seed=3, trials=1)
        counters = result.metrics["counters"]
        assert counters["attest.service.reconciled"] == 1
        assert counters[
            "attest.service.tdx.service.host-a.resumed"] > 0
        histograms = result.metrics["histograms"]
        assert "attest.service.tdx.verify_ns.origin" in histograms
