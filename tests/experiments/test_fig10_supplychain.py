"""Tests for the fig10 supply-chain experiment harness."""

import json

import pytest

from repro.core.runner import TrialRunner
from repro.experiments import run_fig10

CELLS = ("eager-secure", "eager-normal", "lazy-secure", "lazy-normal")
QUICK = dict(trials=1, vms=2, accesses=4)


@pytest.fixture(scope="module")
def fig10():
    return run_fig10(**QUICK)


class TestFig10:
    def test_covers_the_whole_matrix(self, fig10):
        expected = {f"{platform}/{cell}"
                    for platform in ("tdx", "sev-snp") for cell in CELLS}
        assert set(fig10.rows) == expected
        for row in fig10.rows.values():
            assert row["cold_boot_ns"] > 0.0
            assert row["warm_boot_ns"] > 0.0
            assert row["chunks_fetched"] > 0

    def test_headline_separations_hold(self, fig10):
        for platform in ("tdx", "sev-snp"):
            for side in ("secure", "normal"):
                assert (fig10.rows[f"{platform}/lazy-{side}"]["cold_boot_ns"]
                        < fig10.rows[f"{platform}/eager-{side}"]
                        ["cold_boot_ns"])
            for strategy in ("eager", "lazy"):
                assert (fig10.rows[f"{platform}/{strategy}-secure"]
                        ["cold_boot_ns"]
                        > fig10.rows[f"{platform}/{strategy}-normal"]
                        ["cold_boot_ns"])

    def test_counters_reconcile_with_request_logs(self, fig10):
        assert fig10.reconciled
        assert fig10.metrics["counters"]["supply.reconciled"] == 1

    def test_resumption_only_on_secure_cells(self, fig10):
        for cell, row in fig10.rows.items():
            if cell.endswith("-secure"):
                assert row["resumed"] > 0
            else:
                assert row["resumed"] == 0

    def test_chunk_faults_only_on_lazy_cells(self, fig10):
        for cell, row in fig10.rows.items():
            if "/lazy-" in cell:
                assert row["chunk_faults"] > 0
            else:
                assert row["chunk_faults"] == 0

    def test_warm_relaunch_is_cheaper_on_secure(self, fig10):
        for platform in ("tdx", "sev-snp"):
            for strategy in ("eager", "lazy"):
                row = fig10.rows[f"{platform}/{strategy}-secure"]
                assert row["warm_boot_ns"] < row["cold_boot_ns"]

    def test_render_mentions_the_headlines(self, fig10):
        text = fig10.render()
        assert "confidential supply chain" in text
        assert "session resumptions" in text
        assert "reconcile" in text

    def test_serial_vs_parallel_snapshots_identical(self):
        serial = run_fig10(runner=TrialRunner(), **QUICK)
        parallel = run_fig10(runner=TrialRunner(jobs=2), **QUICK)
        assert (json.dumps(serial.metrics, sort_keys=True)
                == json.dumps(parallel.metrics, sort_keys=True))
