"""Pipeline-migration regression tests.

Pins one figure harness's exact output, asserts every harness really
went through the unified runner (no hand-rolled trial loops left),
and checks the trace invariants on harness-produced results.
"""

import re
from pathlib import Path

import pytest

from repro.core.runner import TrialRunner
from repro.experiments.common import VmPair, make_pair
from repro.experiments.fig5_attestation import run_fig5
from repro.experiments.report import trace_payload

EXPERIMENTS_DIR = (Path(__file__).resolve().parents[2]
                   / "src" / "repro" / "experiments")

HARNESSES = sorted(EXPERIMENTS_DIR.glob("fig*.py")) + [
    EXPERIMENTS_DIR / "dbms_table.py",
]


class TestNoHandRolledLoops:
    @pytest.mark.parametrize("path", HARNESSES, ids=lambda p: p.name)
    def test_harness_has_no_trial_loop(self, path):
        """Every harness runs trials through the pipeline, not a loop."""
        source = path.read_text()
        assert not re.search(r"for\s+\w+\s+in\s+range\(trials\)", source), (
            f"{path.name} still hand-rolls its trial loop"
        )

    @pytest.mark.parametrize("path", HARNESSES, ids=lambda p: p.name)
    def test_harness_uses_runner(self, path):
        source = path.read_text()
        assert "TrialRunner" in source


class TestFig5Regression:
    """Pin fig5's output: same seed => exactly the same numbers."""

    def test_deterministic_across_runs(self):
        a = run_fig5(seed=11, trials=2)
        b = run_fig5(seed=11, trials=2)
        assert a.latencies_ns == b.latencies_ns
        assert a.tdx_check_network_fraction == b.tdx_check_network_fraction

    def test_serial_vs_parallel_same_figure(self):
        serial = run_fig5(seed=11, trials=2, runner=TrialRunner())
        parallel = run_fig5(seed=11, trials=2, runner=TrialRunner(jobs=2))
        assert serial.latencies_ns == parallel.latencies_ns

    def test_shape_holds(self):
        fig5 = run_fig5(seed=11, trials=2)
        lat = fig5.latencies_ns
        assert lat["sev-snp attest"] < lat["tdx attest"]
        assert lat["sev-snp check"] < lat["tdx check"]
        assert 0.5 < fig5.tdx_check_network_fraction < 1.0


class TestHarnessTraces:
    def test_every_result_traced_and_consistent(self):
        runner = TrialRunner()
        run_fig5(seed=3, trials=1, runner=runner)
        assert runner.history
        for _, results in runner.history:
            for result in results:
                assert len(result.trace) > 0
                assert (result.trace.ledger_total_ns()
                        == pytest.approx(result.ledger.total(), rel=1e-9))

    def test_trace_payload_shape(self):
        runner = TrialRunner()
        run_fig5(seed=3, trials=1, runner=runner)
        records = trace_payload(runner.history)
        assert len(records) == 2   # tdx + sev-snp, one trial each
        for record in records:
            assert record["spec"]["kind"] == "attestation"
            names = {span["name"] for span in record["trace"]}
            assert {"boot", "launch", "execute",
                    "attest", "check"} <= names


class TestVmPairInterleaving:
    def test_run_both_alternates_sides(self):
        pair = make_pair("tdx", seed=0)
        order = []

        class Recorder:
            def __init__(self, vm, side):
                self.vm, self.side = vm, side

            def run(self, body, name, trial):
                order.append((self.side, trial))
                return self.vm.run(body, name=name, trial=trial)

        spy = VmPair(platform="tdx",
                     secure_vm=Recorder(pair.secure_vm, "secure"),
                     normal_vm=Recorder(pair.normal_vm, "normal"))
        spy.run_both(lambda kernel: None, name="probe", trials=3)
        assert order == [("secure", 0), ("normal", 0),
                         ("secure", 1), ("normal", 1),
                         ("secure", 2), ("normal", 2)]
