"""Tests for the experiment harnesses — small grids, paper shapes."""

import pytest

from repro.experiments import (
    run_dbms_table,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.report import (
    render_box_plots,
    render_heatmap,
    render_log_bars,
    render_percentile_stacks,
    render_ratio_bars,
    render_table,
    shade_for_ratio,
)

SMALL_WORKLOADS = ("cpustress", "iostress", "memstress")
SMALL_LANGS = ("python", "lua")


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(image_count=10, image_side=96, trials=2)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(workloads=SMALL_WORKLOADS, languages=SMALL_LANGS,
                    trials=4)


class TestFig3:
    def test_covers_all_three_tees(self, fig3):
        assert set(fig3.times) == {"tdx", "sev-snp", "cca"}

    def test_each_series_has_samples_per_image(self, fig3):
        for platform, series in fig3.times.items():
            assert len(series["secure"]) == 10 * 2, platform

    def test_percentiles_spread(self, fig3):
        stack = fig3.stack("cca", "secure")
        assert stack["min"] < stack["median"] < stack["max"]

    def test_hw_tees_near_native(self, fig3):
        for platform in ("tdx", "sev-snp"):
            assert fig3.mean_ratio(platform) < 1.15, platform

    def test_cca_larger_but_bounded(self, fig3):
        """Paper: up to 1.33x slower."""
        ratio = fig3.mean_ratio("cca")
        assert 1.1 < ratio < 1.5

    def test_render_contains_series(self, fig3):
        text = fig3.render()
        assert "tdx secure" in text and "median" in text


class TestDbmsTable:
    @pytest.fixture(scope="class")
    def table(self):
        return run_dbms_table(size=10, trials=2)

    def test_hw_tees_close_to_one(self, table):
        for platform in ("tdx", "sev-snp"):
            assert table.average_ratio(platform) < 1.25, platform

    def test_cca_largest_overhead(self, table):
        """Paper: CCA's overhead the largest, on average up to ~10x."""
        assert table.average_ratio("cca") > 3.0
        assert table.max_ratio("cca") > 6.0

    def test_all_sixteen_tests_present(self, table):
        assert len(table.test_names) == 16

    def test_render_has_average_row(self, table):
        assert "AVERAGE" in table.render()


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4(trials=4, scale=0.25)

    def test_ordering(self, fig4):
        ratios = fig4.index_ratios
        assert ratios["tdx"] < ratios["sev-snp"] < ratios["cca"]

    def test_larger_than_ml_and_dbms(self, fig4, fig3):
        """§IV-C: UnixBench overheads exceed ML (and DBMS) overheads."""
        for platform in ("tdx", "sev-snp"):
            assert fig4.index_ratios[platform] > fig3.mean_ratio(platform)

    def test_transitions_nonzero_on_tees(self, fig4):
        assert fig4.transitions["tdx"] > 0

    def test_render(self, fig4):
        text = fig4.render()
        assert "Fig. 4" in text and "context1" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_fig5(trials=3)

    def test_snp_faster_both_phases(self, fig5):
        lat = fig5.latencies_ns
        assert lat["sev-snp attest"] < lat["tdx attest"] / 10
        assert lat["sev-snp check"] < lat["tdx check"] / 10

    def test_tdx_check_dominated_by_network(self, fig5):
        assert fig5.tdx_check_network_fraction > 0.5

    def test_render_mentions_log_scale(self, fig5):
        assert "log scale" in fig5.render()


class TestFig6:
    def test_covers_both_hw_tees(self, fig6):
        assert set(fig6.grids) == {"tdx", "sev-snp"}

    def test_tdx_wins_cpu_sev_wins_io(self, fig6):
        """The headline Fig. 6 asymmetry."""
        for lang in SMALL_LANGS:
            assert (fig6.ratio("tdx", lang, "cpustress")
                    < fig6.ratio("sev-snp", lang, "cpustress")), lang
            assert (fig6.ratio("sev-snp", lang, "iostress")
                    < fig6.ratio("tdx", lang, "iostress")), lang

    def test_heavy_runtime_hotter_on_cpu(self, fig6):
        assert (fig6.ratio("tdx", "python", "cpustress")
                > fig6.ratio("tdx", "lua", "cpustress"))

    def test_render_shows_grid(self, fig6):
        text = fig6.render()
        assert "cpustress" in text and "python" in text


class TestFig7AndFig8:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_fig7(workloads=SMALL_WORKLOADS, languages=SMALL_LANGS,
                        trials=4)

    @pytest.fixture(scope="class")
    def fig8(self):
        return run_fig8(workloads=SMALL_WORKLOADS, trials=8)

    def test_cca_ratios_higher_overall(self, fig6, fig7):
        cca_mean = sum(fig7.grids["cca"].values()) / len(fig7.grids["cca"])
        tdx_mean = sum(fig6.grids["tdx"].values()) / len(fig6.grids["tdx"])
        assert cca_mean > tdx_mean * 1.2

    def test_fig8_secure_whiskers_longer(self, fig8):
        """Paper: whisker length larger with confidential VMs."""
        assert (fig8.mean_whisker_span("secure")
                > fig8.mean_whisker_span("normal"))

    def test_fig8_summaries_ordered(self, fig8):
        summary = fig8.summary("cpustress", "secure")
        assert (summary["whisker_low"] <= summary["q1"] <= summary["median"]
                <= summary["q3"] <= summary["whisker_high"])

    def test_fig8_render(self, fig8):
        assert "whisker span" in fig8.render()


class TestRenderers:
    def test_shade_monotone(self):
        shades = [shade_for_ratio(r) for r in (0.8, 1.0, 1.5, 2.5)]
        ramp = " .:-=+*#%@"
        positions = [ramp.index(s) for s in shades]
        assert positions == sorted(positions)

    def test_shade_nan(self):
        assert shade_for_ratio(float("nan")) == "?"

    def test_render_heatmap_contains_values(self):
        text = render_heatmap("T", ["r"], ["c"], {("r", "c"): 1.23})
        assert "1.23" in text

    def test_render_percentile_stacks(self):
        text = render_percentile_stacks("T", {"s": {
            "min": 1e6, "p25": 2e6, "median": 3e6, "p95": 4e6, "max": 5e6,
        }})
        assert "3.000" in text

    def test_render_log_bars(self):
        text = render_log_bars("T", {"a": 1e6, "b": 1e9})
        assert "log scale" in text
        assert text.count("#") > 2

    def test_render_ratio_bars_marks_baseline(self):
        text = render_ratio_bars("T", {"x": 1.5})
        assert "|" in text and "1.50x" in text

    def test_render_box_plots(self):
        text = render_box_plots("T", {"s": {
            "whisker_low": 1e6, "q1": 2e6, "median": 3e6,
            "q3": 4e6, "whisker_high": 5e6,
        }})
        assert "O" in text

    def test_render_table_aligns(self):
        text = render_table("T", ["a", "bb"], [[1, 2], [3, 4]])
        assert "a" in text and "bb" in text
