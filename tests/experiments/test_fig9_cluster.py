"""Tests for the fig9 cluster-resilience experiment harness."""

import json

import pytest

from repro.core.runner import TrialRunner
from repro.experiments import run_fig9
from repro.experiments.fig9_cluster import DEFAULT_FIG9_FAULTS


@pytest.fixture(scope="module")
def fig9():
    # small but real: every arrival process, faults on, two trials
    return run_fig9(trials=1, hosts=4, requests=4_000, rate_rps=1_200.0)


class TestFig9:
    def test_covers_every_arrival_process(self, fig9):
        assert set(fig9.rows) == {"poisson", "diurnal", "burst"}
        for row in fig9.rows.values():
            assert row["served"] > 0
            assert 0.0 <= row["shed_rate"] <= 1.0
            assert row["p50_ns"] <= row["p99_ns"] <= row["p999_ns"]

    def test_conservation_holds_under_default_faults(self, fig9):
        assert fig9.conserved
        assert fig9.metrics["counters"]["cluster.conserved"] == 1

    def test_default_fault_plan_lands(self, fig9):
        # the default weather includes rate-0.3+ kinds over 4 hosts and
        # 3 zones per process — some geometry must materialize
        assert fig9.faults_injected
        kinds = {entry.split("@")[0] for entry in fig9.faults_injected}
        assert kinds <= {"host-crash", "zone-partition", "degraded-host",
                         "collateral-outage"}

    def test_zone_utilization_reported_per_zone(self, fig9):
        assert set(fig9.zone_utilization) == {"zone-a", "zone-b", "zone-c"}
        assert all(0.0 <= value <= 1.0
                   for value in fig9.zone_utilization.values())

    def test_metrics_folded_per_process(self, fig9):
        counters = fig9.metrics["counters"]
        for process in ("poisson", "diurnal", "burst"):
            assert counters[f"cluster.{process}.requests"] == 4_000

    def test_render_mentions_the_headline_numbers(self, fig9):
        text = fig9.render()
        assert "cluster resilience" in text
        assert "zone utilization" in text
        assert "every request finalized" in text

    def test_serial_vs_parallel_snapshots_identical(self):
        kwargs = dict(trials=1, hosts=4, requests=2_000, rate_rps=1_000.0)
        serial = run_fig9(runner=TrialRunner(), **kwargs)
        parallel = run_fig9(runner=TrialRunner(jobs=2), **kwargs)
        assert (json.dumps(serial.metrics, sort_keys=True)
                == json.dumps(parallel.metrics, sort_keys=True))

    def test_runner_fault_plan_overrides_default(self):
        result = run_fig9(trials=1, hosts=2, requests=1_000,
                          rate_rps=800.0, processes=("poisson",),
                          runner=TrialRunner(faults="host-crash=1.0,seed=1"))
        kinds = {entry.split("@")[0] for entry in result.faults_injected}
        assert kinds == {"host-crash"}

    def test_default_faults_string_is_parseable(self):
        from repro.sim.faults import FaultPlan
        plan = FaultPlan.parse(DEFAULT_FIG9_FAULTS)
        assert plan.active and plan.seed == 9
