"""Property-based invariants of runtime sessions."""

from hypothesis import given, settings, strategies as st

from repro.guestos.context import CostProfile, ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.machine import xeon_gold_5515
from repro.runtimes import RUNTIME_NAMES, RuntimeSession, runtime_by_name
from repro.sim.rng import SimRng


def make_session(lang, seed=1, noise=0.0):
    ctx = ExecContext(
        machine=xeon_gold_5515(),
        profile=CostProfile(noise_sigma=noise),
        rng=SimRng(seed),
    )
    session = RuntimeSession(runtime_by_name(lang), GuestKernel(ctx))
    session.bootstrap()
    return session


@settings(max_examples=25, deadline=None)
@given(
    lang=st.sampled_from(RUNTIME_NAMES),
    operations=st.lists(
        st.one_of(
            st.tuples(st.just("compute"), st.integers(0, 10_000)),
            st.tuples(st.just("alloc"), st.integers(0, 1 << 20)),
            st.tuples(st.just("release"), st.integers(0, 1 << 20)),
            st.tuples(st.just("log"), st.integers(1, 40)),
        ),
        max_size=20,
    ),
)
def test_elapsed_monotone_nondecreasing(lang, operations):
    """Property: virtual time never rewinds across any op sequence."""
    session = make_session(lang)
    last = session.ctx.elapsed_ns()
    for op, amount in operations:
        if op == "compute":
            session.compute(amount)
        elif op == "alloc":
            session.allocate(amount)
        elif op == "release":
            session.release(amount)
        else:
            session.log("x" * amount)
        now = session.ctx.elapsed_ns()
        assert now >= last
        last = now


@settings(max_examples=25, deadline=None)
@given(
    lang=st.sampled_from(RUNTIME_NAMES),
    allocations=st.lists(st.integers(0, 1 << 20), max_size=15),
)
def test_gc_runs_bounded_by_allocation_debt(lang, allocations):
    """Property: GC count never exceeds total-allocated / threshold + 1."""
    session = make_session(lang)
    for nbytes in allocations:
        session.allocate(nbytes)
    total = sum(allocations)
    bound = total // session.model.gc_threshold_bytes + 1
    assert session.gc_runs <= bound


@settings(max_examples=25, deadline=None)
@given(
    lang=st.sampled_from(RUNTIME_NAMES),
    pairs=st.lists(st.integers(1, 1 << 18), max_size=10),
)
def test_heap_returns_to_zero_after_matched_release(lang, pairs):
    """Property: alloc/release pairs leave the heap empty."""
    session = make_session(lang)
    for nbytes in pairs:
        session.allocate(nbytes)
    for nbytes in pairs:
        session.release(nbytes)
    assert session.heap_bytes == 0


@settings(max_examples=15, deadline=None)
@given(units=st.integers(1, 200_000))
def test_jit_total_time_at_most_interpreter_time(units):
    """Property: a JIT runtime is never slower than interpreting
    everything at its cold dispatch factor."""
    jit_session = make_session("luajit")
    jit_time = jit_session.compute(units)
    cold_model = runtime_by_name("luajit")
    # interpreter-only cost of the same units at the cold factor:
    cold_session = make_session("lua")   # same dispatch factor, no JIT
    cold_time = cold_session.compute(units)
    # luajit's memory profile differs slightly; allow 25% slack
    assert jit_time <= cold_time * 1.25


@settings(max_examples=20, deadline=None)
@given(
    lang=st.sampled_from(RUNTIME_NAMES),
    units=st.integers(0, 50_000),
    seed=st.integers(0, 100),
)
def test_compute_deterministic_per_seed(lang, units, seed):
    """Property: identical sessions charge identical time."""
    a = make_session(lang, seed=seed, noise=0.02)
    b = make_session(lang, seed=seed, noise=0.02)
    assert a.compute(units) == b.compute(units)


@settings(max_examples=20, deadline=None)
@given(messages=st.lists(st.text(max_size=60), max_size=15))
def test_stdout_line_count_exact(messages):
    """Property: every log call produces exactly one stdout line."""
    session = make_session("python")
    for message in messages:
        session.log(message)
    assert session.stdout_lines == len(messages)
