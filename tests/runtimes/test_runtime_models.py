"""Tests for language runtime models and sessions."""

import pytest

from repro.errors import RuntimeModelError, UnknownRuntimeError
from repro.guestos.context import CostProfile, ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.machine import xeon_gold_5515
from repro.runtimes import RUNTIME_NAMES, RuntimeSession, all_runtimes, runtime_by_name
from repro.sim.ledger import CostCategory
from repro.sim.rng import SimRng


def make_session(lang="python", profile=None):
    ctx = ExecContext(
        machine=xeon_gold_5515(),
        profile=profile if profile is not None else CostProfile(noise_sigma=0.0),
        rng=SimRng(1),
    )
    session = RuntimeSession(runtime_by_name(lang), GuestKernel(ctx))
    session.bootstrap()
    return session


class TestRegistry:
    def test_all_seven_runtimes_present(self):
        assert set(RUNTIME_NAMES) == {
            "python", "node", "ruby", "lua", "luajit", "go", "wasm"
        }
        assert len(all_runtimes()) == 7

    def test_unknown_runtime_raises(self):
        with pytest.raises(UnknownRuntimeError):
            runtime_by_name("perl")

    def test_paper_versions_per_platform(self):
        """§IV-A lists distinct interpreter versions per TEE image."""
        python = runtime_by_name("python")
        assert python.version_for("tdx") == "3.12.3"
        assert python.version_for("sev-snp") == "3.10.12"
        assert python.version_for("cca") == "3.11.8"
        node = runtime_by_name("node")
        assert node.version_for("cca") == "20.12.2"

    def test_version_for_unknown_platform_raises(self):
        with pytest.raises(RuntimeModelError):
            runtime_by_name("python").version_for("sgx")

    def test_managed_flag(self):
        assert runtime_by_name("python").is_managed
        assert runtime_by_name("ruby").is_managed
        assert not runtime_by_name("go").is_managed

    def test_compiled_runtimes_have_lower_dispatch(self):
        assert runtime_by_name("go").dispatch_factor < 3
        assert runtime_by_name("python").dispatch_factor > 20

    def test_jit_runtimes_have_warmup(self):
        for name in ("node", "luajit"):
            model = runtime_by_name(name)
            assert model.jit_factor is not None
            assert model.jit_warmup_units > 0
            assert model.jit_factor < model.dispatch_factor


class TestSessionLifecycle:
    def test_must_bootstrap_first(self):
        ctx = ExecContext(machine=xeon_gold_5515(), rng=SimRng(1))
        session = RuntimeSession(runtime_by_name("lua"), GuestKernel(ctx))
        with pytest.raises(RuntimeModelError):
            session.compute(10)

    def test_double_bootstrap_rejected(self):
        session = make_session()
        with pytest.raises(RuntimeModelError):
            session.bootstrap()

    def test_bootstrap_charges_startup_only(self):
        session = make_session("ruby")
        ledger = session.ctx.ledger
        assert ledger.get(CostCategory.STARTUP) > 0
        assert session.ctx.elapsed_ns() == 0.0   # startup excluded

    def test_heavier_startup_for_heavier_runtimes(self):
        assert (runtime_by_name("ruby").startup_ns
                > runtime_by_name("lua").startup_ns)


class TestCompute:
    def test_compute_charges_time(self):
        session = make_session()
        assert session.compute(1000) > 0
        assert session.ctx.elapsed_ns() > 0

    def test_zero_units_free(self):
        session = make_session()
        assert session.compute(0) == 0.0

    def test_negative_units_rejected(self):
        with pytest.raises(RuntimeModelError):
            make_session().compute(-1)

    def test_interpreter_slower_than_compiled(self):
        python_time = make_session("python").compute(50_000)
        go_time = make_session("go").compute(50_000)
        assert python_time > go_time * 5

    def test_jit_warmup_then_speedup(self):
        session = make_session("luajit")
        warmup = session.model.jit_warmup_units
        cold = session.compute(warmup)           # entirely interpreted
        hot = session.compute(warmup)            # entirely JIT compiled
        assert hot < cold

    def test_units_tracked(self):
        session = make_session()
        session.compute(100)
        session.compute(200)
        assert session.units_executed == 300


class TestMemoryAndGc:
    def test_allocate_tracks_heap(self):
        session = make_session()
        session.allocate(1 << 20)
        assert session.heap_bytes == 1 << 20
        session.release(1 << 19)
        assert session.heap_bytes == 1 << 19

    def test_release_never_negative(self):
        session = make_session()
        session.allocate(100)
        session.release(10_000)
        assert session.heap_bytes == 0

    def test_negative_alloc_rejected(self):
        with pytest.raises(RuntimeModelError):
            make_session().allocate(-1)

    def test_gc_triggers_after_threshold(self):
        session = make_session("python")
        threshold = session.model.gc_threshold_bytes
        session.allocate(threshold + 1)
        assert session.gc_runs == 1

    def test_gc_debt_resets(self):
        session = make_session("python")
        threshold = session.model.gc_threshold_bytes
        session.allocate(threshold + 1)
        assert session.gc_debt == 0

    def test_compute_churn_feeds_gc(self):
        session = make_session("python")
        threshold = session.model.gc_threshold_bytes
        units = int(threshold / session.model.alloc_bytes_per_unit) + 10
        session.compute(units)
        assert session.gc_runs >= 1


class TestLoggingAndFiles:
    def test_log_counts_lines_and_costs(self):
        session = make_session()
        session.log("hello")
        session.log("world")
        assert session.stdout_lines == 2
        assert session.ctx.ledger.get(CostCategory.SYSCALL) > 0

    def test_file_round_trip(self):
        session = make_session()
        session.write_file("/out.txt", b"data")
        assert session.read_file("/out.txt") == b"data"
        assert session.delete_file("/out.txt") == 4

    def test_write_appends(self):
        session = make_session()
        session.write_file("/f", b"ab")
        session.write_file("/f", b"cd")
        assert session.read_file("/f") == b"abcd"

    def test_mkdir_rmdir(self):
        session = make_session()
        session.mkdir("/d")
        assert session.kernel.fs.is_dir("/d")
        session.rmdir("/d")
        assert not session.kernel.fs.exists("/d")


class TestTeeInteraction:
    def test_managed_runtime_taxed_more_by_tee(self):
        """The Fig. 6 insight: heavier runtimes → higher secure ratio."""
        from repro.tee import platform_by_name

        def ratio(lang):
            import statistics
            platform = platform_by_name("tdx", seed=3)
            secure = platform.create_vm()
            secure.boot()
            normal = platform.create_vm()
            normal.config.secure = False
            normal.boot()

            def body(kernel):
                session = RuntimeSession(runtime_by_name(lang), kernel)
                session.bootstrap()
                session.compute(60_000)
                return None

            s = statistics.fmean(
                secure.run(body, name=f"probe-{lang}", trial=i).elapsed_ns
                for i in range(8)
            )
            n = statistics.fmean(
                normal.run(body, name=f"probe-{lang}", trial=i).elapsed_ns
                for i in range(8)
            )
            return s / n

        assert ratio("python") > ratio("go")
