"""End-to-end crash/resume: the chaos smoke driver, one scenario each way.

The full matrix (serial/parallel x clean/faulted) runs in CI via
``scripts/chaos_smoke.py``; here a faulted serial and a faulted
parallel scenario keep the kill-resume-compare path exercised by the
regular test suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "chaos_smoke.py"


def run_smoke(scenario: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--only", scenario, "--trials", "4"],
        capture_output=True, text=True, timeout=300,
    )


@pytest.mark.parametrize("scenario", ["serial-faulted", "parallel-faulted",
                                      "cluster-chaos"])
def test_killed_sweep_resumes_bit_identical(scenario):
    proc = run_smoke(scenario)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "resumed trace == baseline" in proc.stdout
