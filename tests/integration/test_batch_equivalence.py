"""Batch-vs-per-op byte-identity: the op-stream kernel's contract.

Three layers of evidence that the batched kernel is *bit-identical*
to per-op charging:

1. Random op streams replayed through ``ExecContext.run_batch`` vs
   the per-op ``replay_op`` path — exact ledger/clock/counter/RNG
   equality, across noise sigmas and platform profiles.
2. The UnixBench suite's ``engine="batch"`` vs ``engine="perop"`` —
   identical scores, system index, and kernel-side state.
3. Goldens captured from the *pre-refactor* per-op implementation —
   full trial-runner artifacts (result dicts, metrics snapshots,
   Chrome traces) must reproduce byte-for-byte, serial and with two
   worker processes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import TrialPlan
from repro.core.runner import TrialRunner
from repro.guestos.context import CostProfile, ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.machine import xeon_gold_5515
from repro.obs.export import TraceExporter
from repro.sim.opstream import Op
from repro.sim.rng import SimRng
from repro.workloads.unixbench.suite import run_unixbench

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "goldens"

#: Op generator table for the randomized streams: (kind, argument
#: factory given a SimRng).
_OP_MAKERS = (
    lambda rng: Op("cpu", (rng.randint(10, 50_000), rng.randint(0, 5_000),
                           rng.randint(0, 1 << 20))),
    lambda rng: Op("mem_alloc", (rng.randint(1, 1 << 20),)),
    lambda rng: Op("mem_copy", (rng.randint(1, 1 << 18),)),
    lambda rng: Op("disk_read", (rng.randint(1, 1 << 16),)),
    lambda rng: Op("disk_write", (rng.randint(1, 1 << 16),)),
    lambda rng: Op("syscall", (float(rng.randint(100, 900)),)),
    lambda rng: Op("vm_transition", (float(rng.randint(1_000, 9_000)),)),
    lambda rng: Op("crypto", (float(rng.randint(50, 5_000)),)),
    lambda rng: Op("event", ("context_switches", 1)),
)


def make_ctx(profile: CostProfile, seed: int) -> ExecContext:
    return ExecContext(machine=xeon_gold_5515(), profile=profile,
                       rng=SimRng(seed))


def random_program(seed: int, entries: int) -> list[tuple[tuple[Op, ...], int]]:
    """A reproducible random (op sequence, count) program."""
    rng = SimRng(seed, "opstream-fuzz")
    program = []
    for _ in range(entries):
        ops = tuple(_OP_MAKERS[rng.randint(0, len(_OP_MAKERS) - 1)](rng)
                    for _ in range(rng.randint(1, 4)))
        program.append((ops, rng.randint(1, 40)))
    return program


def context_state(ctx: ExecContext) -> tuple:
    """Everything per-op charging mutates, in comparable form."""
    return (
        dict(ctx.ledger),                      # totals AND insertion order
        list(ctx.ledger),
        ctx.clock.now(),
        ctx.machine.counters.as_dict(),
        ctx.rng.raw_random().getstate(),       # stream position + pair cache
        ctx.rng.raw_random().gauss_next,
    )


PROFILES = {
    "noisy-tee": CostProfile(simulator_multiplier=1.8, noise_sigma=0.03,
                             syscall_transition_ns=2_200.0,
                             halt_transition_ns=2_200.0,
                             io_transition_ns=3_000.0,
                             io_bounce_per_byte_ns=0.05,
                             mem_encrypted=True, mem_miss_extra_ns=20.0),
    "quiet-native": CostProfile(noise_sigma=0.0),
}


class TestRandomOpStreams:
    @pytest.mark.parametrize("profile_name", sorted(PROFILES))
    @pytest.mark.parametrize("seed", [3, 17, 4242])
    def test_batch_equals_per_op_replay(self, profile_name, seed):
        profile = PROFILES[profile_name]
        program = random_program(seed, entries=30)

        per_op = make_ctx(profile, seed)
        for ops, count in program:
            for _ in range(count):
                for op in ops:
                    per_op.replay_op(op)

        batched = make_ctx(profile, seed)
        batch = batched.batch()
        for ops, count in program:
            batch.add_seq(ops, count)
        batched.run_batch(batch)

        assert context_state(batched) == context_state(per_op)

    def test_batched_and_per_op_charges_interleave_on_one_stream(self):
        profile = PROFILES["noisy-tee"]
        program = random_program(7, entries=10)

        reference = make_ctx(profile, 7)
        for ops, count in program:
            for _ in range(count):
                for op in ops:
                    reference.replay_op(op)

        mixed = make_ctx(profile, 7)
        for index, (ops, count) in enumerate(program):
            if index % 2:                       # alternate engines mid-stream
                batch = mixed.batch()
                batch.add_seq(ops, count)
                mixed.run_batch(batch)
            else:
                for _ in range(count):
                    for op in ops:
                        mixed.replay_op(op)

        assert context_state(mixed) == context_state(reference)


class TestUnixbenchEngines:
    def test_batch_engine_matches_per_op_engine(self):
        results = {}
        for engine in ("batch", "perop"):
            profile = CostProfile(simulator_multiplier=1.6, noise_sigma=0.02,
                                  syscall_transition_ns=2_200.0,
                                  halt_transition_ns=2_200.0,
                                  io_transition_ns=3_000.0,
                                  io_bounce_per_byte_ns=0.05,
                                  mem_encrypted=True, mem_miss_extra_ns=20.0)
            ctx = make_ctx(profile, 11)
            kernel = GuestKernel(ctx)
            suite = run_unixbench(kernel, scale=0.1, engine=engine)
            results[engine] = (
                suite.scores, suite.system_index,
                kernel.syscall_count, kernel.scheduler.switch_count,
                context_state(ctx),
            )
        assert results["batch"] == results["perop"]


def canonical_artifacts(runner: TrialRunner, results) -> str:
    payload = {
        "results": [result.to_dict() for result in results],
        "metrics": runner.metrics.snapshot(),
        "chrome": TraceExporter.from_history(runner.history).to_chrome_json(),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


GOLDEN_PLANS = {
    # captured from the per-op implementation before the batch kernel
    # landed (see tests/goldens/); params deliberately include every
    # batched emitter family
    "perop_unixbench": dict(kind="unixbench", platforms=("tdx", "cca"),
                            workloads=("unixbench",), trials=2, seed=7,
                            params={"scale": 0.2}),
    "perop_faas": dict(kind="faas", platforms=("tdx",),
                       workloads=("logging", "iostress", "htmlrender",
                                  "memstress"),
                       runtimes=("python",), trials=2, seed=7),
    "perop_ml": dict(kind="ml", platforms=("sev-snp",),
                     workloads=("inference",), trials=1, seed=7,
                     params={"count": 8, "side": 96}),
}


class TestPreRefactorGoldens:
    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "j2"])
    @pytest.mark.parametrize("name", sorted(GOLDEN_PLANS))
    def test_artifacts_reproduce_byte_for_byte(self, name, jobs):
        golden_path = GOLDEN_DIR / f"{name}.json"
        golden = golden_path.read_text(encoding="utf-8")
        plan = TrialPlan.matrix(**GOLDEN_PLANS[name])
        runner = TrialRunner(jobs=jobs)
        produced = canonical_artifacts(runner, runner.run(plan))
        assert produced == golden, (
            f"{golden_path.name} no longer reproduces byte-for-byte "
            f"(jobs={jobs}); the batched kernel diverged from the "
            "per-op semantics"
        )
