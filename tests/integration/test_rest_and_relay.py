"""Integration tests: real sockets for the REST API and the relay."""

import json
import socket
import time
import threading
import urllib.request

import pytest

from repro.core.client import ConfBenchClient
from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.gateway import Gateway
from repro.core.relay import TcpRelay, free_port
from repro.core.rest import RestServer
from repro.errors import GatewayError, RelayError


@pytest.fixture(scope="module")
def server():
    config = GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="xeon", base_port=9100),
        PlatformEntry(platform="novm", host="xeon", base_port=9400),
    ], default_trials=2)
    gateway = Gateway(config)
    with RestServer(gateway, port=0) as rest:
        yield rest


@pytest.fixture(scope="module")
def client(server):
    return ConfBenchClient(port=server.port)


class TestRestApi:
    def test_health(self, client):
        assert client.health() == {"status": "ok"}

    def test_platforms_listing(self, client):
        platforms = client.platforms()
        assert {p["name"] for p in platforms} == {"tdx", "novm"}

    def test_upload_then_list(self, client):
        client.upload("factors")
        assert "factors" in client.functions()

    def test_invoke_round_trip(self, client):
        client.upload("fibonacci")
        records = client.invoke("fibonacci", "lua", platform="tdx",
                                args={"n": 10}, trials=2)
        assert len(records) == 2
        assert records[0]["output"]["result"] == 55
        assert records[0]["perf"]["instructions"] > 0

    def test_invoke_normal_vm(self, client):
        client.upload("factors")
        records = client.invoke("factors", "go", platform="tdx",
                                secure=False, trials=1)
        assert records[0]["secure"] is False

    def test_secure_vs_normal_ratio_via_rest(self, client):
        """The paper's workflow end-to-end over HTTP."""
        import statistics

        client.upload("iostress")
        args = {"file_bytes": 65536, "files": 2}
        secure = client.invoke("iostress", "lua", platform="tdx",
                               args=args, trials=4)
        normal = client.invoke("iostress", "lua", platform="tdx",
                               secure=False, args=args, trials=4)
        ratio = (statistics.fmean(r["elapsed_ns"] for r in secure)
                 / statistics.fmean(r["elapsed_ns"] for r in normal))
        assert ratio > 1.1   # TDX bounce buffers show up over the wire

    def test_unknown_function_is_400(self, client):
        with pytest.raises(GatewayError, match="400"):
            client.invoke("ghost", "lua")

    def test_unknown_path_is_404(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/nope"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 404

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/invoke",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_upload_requires_name(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/functions",
            data=json.dumps({}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_concurrent_invokes(self, client):
        client.upload("factors")
        errors = []

        def worker():
            try:
                client.invoke("factors", "lua", platform="tdx", trials=1)
            except Exception as exc:   # noqa: BLE001 - collect for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors


class _EchoServer:
    """A one-shot TCP echo server for relay tests."""

    def __init__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            data = conn.recv(65536)
            if data:
                conn.sendall(b"echo:" + data)
            conn.close()

    def close(self):
        self.sock.close()


class TestTcpRelay:
    def test_forwards_both_directions(self):
        echo = _EchoServer()
        listen = free_port()
        try:
            with TcpRelay(listen, echo.port) as relay:
                with socket.create_connection(("127.0.0.1", listen),
                                              timeout=5) as conn:
                    conn.sendall(b"hello-vm")
                    reply = conn.recv(65536)
                assert reply == b"echo:hello-vm"
                assert relay.connections_handled == 1
                expected = len(b"hello-vm") + len(reply)
                deadline = time.time() + 2.0
                while relay.bytes_forwarded < expected and time.time() < deadline:
                    time.sleep(0.01)   # counter updates just after sendall
                assert relay.bytes_forwarded >= expected
        finally:
            echo.close()

    def test_multiple_connections(self):
        echo = _EchoServer()
        listen = free_port()
        try:
            with TcpRelay(listen, echo.port) as relay:
                for i in range(3):
                    with socket.create_connection(("127.0.0.1", listen),
                                                  timeout=5) as conn:
                        conn.sendall(f"msg{i}".encode())
                        assert conn.recv(65536) == f"echo:msg{i}".encode()
                assert relay.connections_handled == 3
        finally:
            echo.close()

    def test_self_forward_rejected(self):
        with pytest.raises(RelayError):
            TcpRelay(9000, 9000)

    def test_double_start_rejected(self):
        echo = _EchoServer()
        try:
            with TcpRelay(free_port(), echo.port) as relay:
                with pytest.raises(RelayError):
                    relay.start()
        finally:
            echo.close()

    def test_bind_conflict_is_loud(self):
        echo = _EchoServer()
        try:
            # try to bind the relay on the echo server's own port
            relay = TcpRelay(echo.port, free_port())
            with pytest.raises(RelayError):
                relay.start()
        finally:
            echo.close()

    def test_relay_in_front_of_rest_gateway(self, server):
        """socat-style steering in front of the HTTP gateway: the
        paper's host-side port redirection, end to end."""
        listen = free_port()
        with TcpRelay(listen, server.port):
            client = ConfBenchClient(port=listen)
            assert client.health() == {"status": "ok"}
            client.upload("ack")
            records = client.invoke("ack", "wasm", platform="tdx",
                                    args={"m": 2, "n": 2}, trials=1)
            assert records[0]["output"]["result"] == 7


class _DrainServer:
    """Reads until client EOF, then replies — requires TCP half-close.

    A relay that tears down both directions on the first EOF (instead
    of propagating ``SHUT_WR``) can never deliver this server's reply:
    the client must half-close to signal end-of-request while keeping
    its receive side open for the response.
    """

    def __init__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            chunks = []
            while True:
                data = conn.recv(65536)
                if not data:
                    break
                chunks.append(data)
            conn.sendall(b"drained:" + b"".join(chunks))
            conn.close()

    def close(self):
        self.sock.close()


class TestRelayHalfClose:
    def test_reply_after_client_eof_round_trips(self):
        server = _DrainServer()
        listen = free_port()
        try:
            with TcpRelay(listen, server.port) as relay:
                with socket.create_connection(("127.0.0.1", listen),
                                              timeout=5) as conn:
                    conn.sendall(b"part1;")
                    conn.sendall(b"part2")
                    conn.shutdown(socket.SHUT_WR)   # end of request
                    reply = b""
                    while True:
                        chunk = conn.recv(65536)
                        if not chunk:
                            break
                        reply += chunk
                assert reply == b"drained:part1;part2"
                assert relay.connections_handled == 1
        finally:
            server.close()

    def test_stop_joins_connection_threads(self):
        server = _DrainServer()
        listen = free_port()
        relay = TcpRelay(listen, server.port)
        relay.start()
        try:
            # leave a connection open mid-stream, then stop the relay:
            # stop() must unblock and join the pump threads, not leak
            conn = socket.create_connection(("127.0.0.1", listen), timeout=5)
            conn.sendall(b"never-finished")
            deadline = time.time() + 2.0
            while relay.connections_handled < 1 and time.time() < deadline:
                time.sleep(0.01)
            relay.stop()
            assert relay._threads == []
            conn.close()
        finally:
            server.close()


class TestRelayFaults:
    def test_seeded_connection_drops(self):
        from repro.sim.faults import FaultKind, FaultPlan

        echo = _EchoServer()
        listen = free_port()
        plan = FaultPlan.parse("relay-drop=0.5,seed=6")
        outcomes = []
        try:
            with TcpRelay(listen, echo.port, faults=plan) as relay:
                for i in range(8):
                    with socket.create_connection(("127.0.0.1", listen),
                                                  timeout=5) as conn:
                        try:
                            conn.sendall(f"m{i}".encode())
                            outcomes.append(conn.recv(65536) != b"")
                        except OSError:
                            outcomes.append(False)
                # handler threads bump the counters just after the
                # client side closes; give them a moment to finish
                deadline = time.time() + 2.0
                while (relay.connections_dropped + relay.connections_handled
                       < 8 and time.time() < deadline):
                    time.sleep(0.01)
                dropped = relay.connections_dropped
                handled = relay.connections_handled
            assert dropped + handled == 8
            assert dropped > 0 and handled > 0
            # the drop pattern is a pure function of (seed, conn index)
            expected = [
                not plan.triggers(FaultKind.RELAY_DROP,
                                  f"relay/{listen}->{echo.port}/conn{i}")
                for i in range(8)
            ]
            assert outcomes == expected
        finally:
            echo.close()
