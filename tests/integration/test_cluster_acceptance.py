"""Cluster-layer acceptance: the PR's headline contract at scale.

One seeded open-loop sweep of one million virtual-time requests
across an eight-host, three-zone fleet with injected ``host-crash``
and ``zone-partition`` faults must complete with **zero silently
dropped requests** — every request ends served, degraded, or
shed-with-record — and the whole run must be **byte-identical**
between serial and two-worker execution.

The million requests are split across four trial specs (one per
arrival-process/seed pairing) so the parallel leg actually
distributes work; conservation is asserted per spec and in aggregate.
"""

from __future__ import annotations

import json

from repro.core.runner import TrialPlan, TrialRunner, TrialSpec

FAULTS = "host-crash=0.5,zone-partition=0.5,seed=11"

#: 4 specs x 250k requests = 1M open-loop arrivals
REQUESTS_PER_SPEC = 250_000
SPECS = (
    ("poisson", 0),
    ("poisson", 1),
    ("diurnal", 0),
    ("burst", 0),
)


def build_plan() -> TrialPlan:
    specs = tuple(
        TrialSpec.make(
            kind="cluster", platform="tdx", secure=True, workload=process,
            trial=trial, seed=0,
            params={"hosts": 8, "requests": REQUESTS_PER_SPEC,
                    "rate_rps": 2_000.0},
        )
        for process, trial in SPECS
    )
    return TrialPlan(specs=specs).with_faults(FAULTS)


class TestMillionRequestAcceptance:
    def test_zero_silent_drops_and_serial_parallel_identity(self):
        plan = build_plan()

        serial = TrialRunner().run(plan)
        total = {"requests": 0, "served": 0, "degraded": 0, "shed": 0}
        for result in serial:
            output = result.output
            # per-sweep conservation: nothing silently dropped
            assert output["conserved"] is True
            assert output["requests"] == (output["served"]
                                          + output["degraded"]
                                          + output["shed"])
            # every shed kept a record with a usable retry hint
            if output["shed"]:
                assert output["shed_records"]
                assert all(hint > 0.0
                           for _rid, hint in output["shed_records"])
            # the fault geometry really landed on this sweep
            kinds = {entry.split("@")[0]
                     for entry in output["faults_injected"]}
            assert kinds <= {"host-crash", "zone-partition"}
            for key in total:
                total[key] += output[key]

        assert total["requests"] == len(SPECS) * REQUESTS_PER_SPEC
        assert total["requests"] == (total["served"] + total["degraded"]
                                     + total["shed"])
        # the sweep is a resilience test, not a wipeout: the fleet
        # keeps serving through the faults
        assert total["served"] > 0.5 * total["requests"]
        # and the faults were not a no-op across the whole run
        assert any(r.output["faults_injected"] for r in serial)

        parallel = TrialRunner(jobs=2).run(plan)
        assert (json.dumps([r.to_dict() for r in serial], sort_keys=True)
                == json.dumps([r.to_dict() for r in parallel],
                              sort_keys=True))
