"""Tests for the ML inference substrate."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.guestos.context import CostProfile, ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.machine import xeon_gold_5515
from repro.sim.rng import SimRng
from repro.workloads.ml import (
    MobileNetLite,
    generate_dataset,
    run_inference_workload,
)
from repro.workloads.ml import tensor
from repro.workloads.ml.dataset import DEFAULT_IMAGE_SIDE
from repro.workloads.ml.inference import classify_image, stage_dataset


def make_kernel():
    return GuestKernel(ExecContext(
        machine=xeon_gold_5515(),
        profile=CostProfile(noise_sigma=0.0),
        rng=SimRng(3),
    ))


class TestTensorOps:
    def test_conv2d_shapes(self):
        x = np.ones((8, 8, 3))
        w = np.ones((3, 3, 3, 4))
        out, macs = tensor.conv2d(x, w)
        assert out.shape == (6, 6, 4)
        assert macs == 6 * 6 * 3 * 3 * 3 * 4

    def test_conv2d_stride(self):
        x = np.ones((9, 9, 1))
        w = np.ones((3, 3, 1, 1))
        out, _ = tensor.conv2d(x, w, stride=2)
        assert out.shape == (4, 4, 1)

    def test_conv2d_identity_kernel(self):
        x = np.arange(25.0).reshape(5, 5, 1)
        w = np.zeros((3, 3, 1, 1))
        w[1, 1, 0, 0] = 1.0   # center tap = identity on the valid region
        out, _ = tensor.conv2d(x, w)
        np.testing.assert_allclose(out[:, :, 0], x[1:4, 1:4, 0])

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(WorkloadError):
            tensor.conv2d(np.ones((5, 5, 2)), np.ones((3, 3, 3, 1)))

    def test_depthwise_preserves_channels(self):
        x = np.ones((6, 6, 5))
        w = np.ones((3, 3, 5))
        out, macs = tensor.depthwise_conv2d(x, w)
        assert out.shape == (4, 4, 5)
        assert macs == 4 * 4 * 3 * 3 * 5

    def test_depthwise_equals_manual(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 5, 2))
        w = rng.normal(size=(3, 3, 2))
        out, _ = tensor.depthwise_conv2d(x, w)
        manual = sum(
            x[di:di + 3, dj:dj + 3, 0] * w[di, dj, 0]
            for di in range(3) for dj in range(3)
        )
        np.testing.assert_allclose(out[:, :, 0], manual)

    def test_pointwise(self):
        x = np.ones((4, 4, 3))
        w = np.ones((3, 2))
        out, macs = tensor.pointwise_conv2d(x, w)
        assert out.shape == (4, 4, 2)
        np.testing.assert_allclose(out, 3.0)
        assert macs == 4 * 4 * 3 * 2

    def test_relu6_clips(self):
        x = np.array([-1.0, 3.0, 9.0])
        np.testing.assert_allclose(tensor.relu6(x), [0.0, 3.0, 6.0])

    def test_global_avg_pool(self):
        x = np.arange(8.0).reshape(2, 2, 2)
        pooled, _ = tensor.global_avg_pool(x)
        np.testing.assert_allclose(pooled, [3.0, 4.0])

    def test_dense(self):
        out, macs = tensor.dense(np.array([1.0, 2.0]),
                                 np.array([[1.0], [1.0]]),
                                 np.array([0.5]))
        np.testing.assert_allclose(out, [3.5])
        assert macs == 2

    def test_softmax_sums_to_one(self):
        probs = tensor.softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs.argmax() == 2

    def test_softmax_handles_large_logits(self):
        probs = tensor.softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(probs, [0.5, 0.5])


class TestMobileNet:
    def test_deterministic_weights(self):
        a, b = MobileNetLite(seed=5), MobileNetLite(seed=5)
        image = np.zeros((64, 64, 3), dtype=np.uint8)
        assert a.classify(image)[0] == b.classify(image)[0]

    def test_different_seeds_different_models(self):
        image = generate_dataset(count=1, side=64)[0].image
        probs_a, _ = MobileNetLite(seed=1).forward(image)
        probs_b, _ = MobileNetLite(seed=2).forward(image)
        assert not np.allclose(probs_a, probs_b)

    def test_forward_output_is_distribution(self):
        model = MobileNetLite()
        image = generate_dataset(count=1, side=96)[0].image
        probs, macs = model.forward(image)
        assert probs.shape == (model.num_classes,)
        assert probs.sum() == pytest.approx(1.0)
        assert macs > 100_000

    def test_depthwise_separable_cheaper_than_dense_conv(self):
        """The architectural point of MobileNet: fewer MACs per block."""
        model = MobileNetLite()
        image = generate_dataset(count=1, side=96, seed=1)[0].image
        x = model.preprocess(image)
        stem_out, _ = tensor.conv2d(x, model._weights["stem"], stride=2)
        channels = stem_out.shape[2]
        _, dw_macs = tensor.depthwise_conv2d(stem_out, model._weights["dw0"])
        _, pw_macs = tensor.pointwise_conv2d(
            tensor.depthwise_conv2d(stem_out, model._weights["dw0"])[0],
            model._weights["pw0"],
        )
        dense_equivalent = (stem_out.shape[0] - 2) * (stem_out.shape[1] - 2) \
            * 9 * channels * model._weights["pw0"].shape[1]
        assert dw_macs + pw_macs < dense_equivalent

    def test_parameter_count_positive(self):
        assert MobileNetLite().parameter_count() > 1000

    def test_rejects_tiny_input(self):
        with pytest.raises(WorkloadError):
            MobileNetLite(input_size=8)

    def test_preprocess_normalises(self):
        model = MobileNetLite()
        image = np.full((100, 100, 3), 255, dtype=np.uint8)
        processed = model.preprocess(image)
        assert processed.shape == (model.input_size, model.input_size, 3)
        assert processed.max() == pytest.approx(1.0)


class TestDataset:
    def test_default_images_are_about_1mb(self):
        dataset = generate_dataset(count=2)
        for item in dataset:
            assert abs(item.nbytes - (1 << 20)) < 60_000
        assert DEFAULT_IMAGE_SIDE == 592

    def test_forty_images_by_default(self):
        assert len(generate_dataset()) == 40

    def test_deterministic(self):
        a = generate_dataset(count=3, side=32, seed=9)
        b = generate_dataset(count=3, side=32, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.image, y.image)

    def test_classes_cycle(self):
        dataset = generate_dataset(count=12, side=32, num_classes=4)
        assert [item.template_class for item in dataset] == [
            0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3
        ]

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            generate_dataset(count=0)

    def test_same_class_images_more_similar_than_cross_class(self):
        dataset = generate_dataset(count=4, side=64, num_classes=2, seed=3)
        same = np.mean(np.abs(
            dataset[0].image.astype(int) - dataset[2].image.astype(int)
        ))
        cross = np.mean(np.abs(
            dataset[0].image.astype(int) - dataset[1].image.astype(int)
        ))
        assert same < cross


class TestInference:
    def test_classify_charges_costs(self):
        kernel = make_kernel()
        model = MobileNetLite()
        dataset = generate_dataset(count=1, side=64)
        paths = stage_dataset(kernel, dataset)
        before = kernel.ctx.elapsed_ns()
        result = classify_image(kernel, model, dataset[0], paths[0])
        assert result.elapsed_ns > 0
        assert kernel.ctx.elapsed_ns() > before
        assert 0 <= result.label < model.num_classes
        assert 0.0 < result.confidence <= 1.0

    def test_full_workload_covers_dataset(self):
        kernel = make_kernel()
        results = run_inference_workload(
            kernel, MobileNetLite(), generate_dataset(count=5, side=64)
        )
        assert len(results) == 5
        assert [r.index for r in results] == [0, 1, 2, 3, 4]

    def test_labels_deterministic_across_runs(self):
        model = MobileNetLite(seed=11)
        dataset = generate_dataset(count=4, side=64, seed=2)
        labels_a = [
            r.label for r in run_inference_workload(make_kernel(), model, dataset)
        ]
        labels_b = [
            r.label for r in run_inference_workload(make_kernel(), model, dataset)
        ]
        assert labels_a == labels_b

    def test_same_template_same_label(self):
        """Images built from one template classify identically."""
        model = MobileNetLite(seed=11)
        dataset = generate_dataset(count=10, side=64, num_classes=5, seed=2)
        by_template = {}
        results = run_inference_workload(make_kernel(), model, dataset)
        for result in results:
            by_template.setdefault(result.template_class, set()).add(result.label)
        agreement = sum(1 for labels in by_template.values() if len(labels) == 1)
        assert agreement >= len(by_template) - 1   # allow one noisy template
