"""Property-based tests: the SQL engine against a Python oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfBenchError, SqlSyntaxError
from repro.workloads.dbms.engine import Database
from repro.workloads.dbms.tokenizer import tokenize

# -- strategies --------------------------------------------------------

names = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
ints = st.integers(min_value=-1000, max_value=1000)

rows = st.lists(
    st.tuples(ints, ints, names),
    min_size=1,
    max_size=40,
)


def fresh_db(data):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
    db.execute("BEGIN")
    for a, b, c in data:
        db.execute(f"INSERT INTO t VALUES ({a}, {b}, '{c}')")
    db.execute("COMMIT")
    return db


@settings(max_examples=40, deadline=None)
@given(data=rows, threshold=ints)
def test_where_filter_matches_oracle(data, threshold):
    """SELECT ... WHERE a > k returns exactly the oracle's rows."""
    db = fresh_db(data)
    result = db.execute(f"SELECT a, b, c FROM t WHERE a > {threshold}")
    expected = sorted((a, b, c) for a, b, c in data if a > threshold)
    assert sorted(result.rows) == expected


@settings(max_examples=40, deadline=None)
@given(data=rows)
def test_aggregates_match_oracle(data):
    """COUNT/SUM/MIN/MAX/AVG agree with Python."""
    db = fresh_db(data)
    result = db.execute(
        "SELECT COUNT(*), SUM(a), MIN(a), MAX(a), AVG(a) FROM t"
    ).rows[0]
    values = [a for a, _, _ in data]
    assert result[0] == len(values)
    assert result[1] == sum(values)
    assert result[2] == min(values)
    assert result[3] == max(values)
    assert result[4] == pytest.approx(sum(values) / len(values))


@settings(max_examples=30, deadline=None)
@given(data=rows)
def test_order_by_sorts(data):
    """ORDER BY a yields a non-decreasing column."""
    db = fresh_db(data)
    result = db.execute("SELECT a FROM t ORDER BY a")
    column = [row[0] for row in result.rows]
    assert column == sorted(column)


@settings(max_examples=30, deadline=None)
@given(data=rows)
def test_order_by_desc_reverses(data):
    db = fresh_db(data)
    asc = [r[0] for r in db.execute("SELECT a FROM t ORDER BY a").rows]
    desc = [r[0] for r in db.execute("SELECT a FROM t ORDER BY a DESC").rows]
    assert desc == list(reversed(asc))


@settings(max_examples=30, deadline=None)
@given(data=rows, limit=st.integers(min_value=0, max_value=50))
def test_limit_truncates(data, limit):
    db = fresh_db(data)
    result = db.execute(f"SELECT a FROM t LIMIT {limit}")
    assert len(result.rows) == min(limit, len(data))


@settings(max_examples=30, deadline=None)
@given(data=rows, key=ints)
def test_index_and_scan_agree(data, key):
    """The index path returns exactly what the scan path returns."""
    db = fresh_db(data)
    scan = db.execute(f"SELECT a, b FROM t WHERE b + 0 = {key}")   # no index
    db.execute("CREATE INDEX ib ON t (b)")
    indexed = db.execute(f"SELECT a, b FROM t WHERE b = {key}")    # index
    assert sorted(scan.rows) == sorted(indexed.rows)


@settings(max_examples=30, deadline=None)
@given(data=rows, low=ints, high=ints)
def test_index_range_agrees_with_oracle(data, low, high):
    db = fresh_db(data)
    db.execute("CREATE INDEX ia ON t (a)")
    result = db.execute(
        f"SELECT a FROM t WHERE a >= {low} AND a <= {high}"
    )
    expected = sorted(a for a, _, _ in data if low <= a <= high)
    assert sorted(row[0] for row in result.rows) == expected


@settings(max_examples=30, deadline=None)
@given(data=rows)
def test_group_by_partitions(data):
    """GROUP BY buckets cover every row exactly once."""
    db = fresh_db(data)
    result = db.execute("SELECT b % 5, COUNT(*) FROM t GROUP BY b % 5")
    assert sum(row[1] for row in result.rows) == len(data)
    buckets = [row[0] for row in result.rows]
    assert len(buckets) == len(set(buckets))


@settings(max_examples=30, deadline=None)
@given(data=rows, delta=ints)
def test_update_then_sum(data, delta):
    """UPDATE a = a + delta shifts SUM(a) by n * delta."""
    db = fresh_db(data)
    before = db.execute("SELECT SUM(a) FROM t").scalar()
    db.execute(f"UPDATE t SET a = a + {delta}")
    after = db.execute("SELECT SUM(a) FROM t").scalar()
    assert after == before + delta * len(data)


@settings(max_examples=30, deadline=None)
@given(data=rows, threshold=ints)
def test_delete_complements_select(data, threshold):
    """DELETE WHERE p removes exactly the rows SELECT WHERE p found."""
    db = fresh_db(data)
    matching = db.execute(
        f"SELECT COUNT(*) FROM t WHERE a > {threshold}"
    ).scalar()
    deleted = db.execute(f"DELETE FROM t WHERE a > {threshold}").rowcount
    remaining = db.execute("SELECT COUNT(*) FROM t").scalar()
    assert deleted == matching
    assert remaining == len(data) - deleted


@settings(max_examples=25, deadline=None)
@given(data=rows)
def test_rollback_is_identity(data):
    """BEGIN + mutations + ROLLBACK leaves the table unchanged."""
    db = fresh_db(data)
    before = sorted(db.execute("SELECT a, b, c FROM t").rows)
    db.execute("BEGIN")
    db.execute("UPDATE t SET a = 0")
    db.execute("DELETE FROM t WHERE b > 0")
    db.execute("INSERT INTO t VALUES (1, 2, 'x')")
    db.execute("ROLLBACK")
    after = sorted(db.execute("SELECT a, b, c FROM t").rows)
    assert after == before


@settings(max_examples=60, deadline=None)
@given(text=st.text(max_size=80))
def test_tokenizer_never_crashes_unexpectedly(text):
    """Fuzz: any input either tokenizes or raises SqlSyntaxError."""
    try:
        tokenize(text)
    except SqlSyntaxError:
        pass


@settings(max_examples=60, deadline=None)
@given(text=st.text(max_size=60))
def test_execute_never_crashes_unexpectedly(text):
    """Fuzz: arbitrary statements raise only library errors."""
    db = Database()
    try:
        db.execute(text)
    except ConfBenchError:
        pass
    except RecursionError:
        pass   # deeply nested parens; acceptable for a teaching parser
