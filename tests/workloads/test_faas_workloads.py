"""Tests for the FaaS workload suite: correctness of real results."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.guestos.context import CostProfile, ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.machine import xeon_gold_5515
from repro.runtimes import RuntimeSession, runtime_by_name
from repro.sim.ledger import CostCategory
from repro.sim.rng import SimRng
from repro.workloads.base import FaasWorkload, WorkloadTrait
from repro.workloads.faas import (
    FIGURE_WORKLOAD_NAMES,
    all_workloads,
    figure_workloads,
    register_workload,
    unregister_workload,
    workload_by_name,
)


def fresh_session(lang="lua"):
    ctx = ExecContext(
        machine=xeon_gold_5515(),
        profile=CostProfile(noise_sigma=0.0),
        rng=SimRng(7),
    )
    session = RuntimeSession(runtime_by_name(lang), GuestKernel(ctx))
    session.bootstrap()
    return session


def run_workload(name, args=None, lang="lua"):
    session = fresh_session(lang)
    return workload_by_name(name).run(session, args), session


class TestRegistry:
    def test_paper_set_has_25_workloads(self):
        assert len(FIGURE_WORKLOAD_NAMES) == 25
        assert len(figure_workloads()) == 25

    def test_paper_named_examples_present(self):
        for name in ("cpustress", "memstress", "iostress", "logging",
                     "factors", "filesystem", "ack"):
            assert name in FIGURE_WORKLOAD_NAMES

    def test_extra_workload_available(self):
        assert workload_by_name("juliaset") is not None
        assert len(all_workloads()) == 26

    def test_unknown_workload_raises(self):
        with pytest.raises(UnknownWorkloadError):
            workload_by_name("quantum")

    def test_register_unregister_custom(self):
        custom = FaasWorkload(
            name="custom-probe",
            trait=WorkloadTrait.CPU,
            description="test-only",
            fn=lambda session, args: args["x"],
            default_args={"x": 1},
        )
        register_workload(custom)
        try:
            assert workload_by_name("custom-probe").run(fresh_session()) == 1
        finally:
            unregister_workload("custom-probe")
        with pytest.raises(UnknownWorkloadError):
            workload_by_name("custom-probe")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_workload(workload_by_name("factors"))

    def test_unregister_builtin_rejected(self):
        with pytest.raises(ValueError):
            unregister_workload("cpustress")

    def test_every_workload_has_trait_and_origin(self):
        for workload in all_workloads():
            assert isinstance(workload.trait, WorkloadTrait)
            assert workload.description


class TestCorrectness:
    """The workloads really compute their results."""

    def test_factors(self):
        result, _ = run_workload("factors", {"n": 28})
        assert result == [1, 2, 4, 7, 14, 28]

    def test_factors_prime(self):
        result, _ = run_workload("factors", {"n": 97})
        assert result == [1, 97]

    def test_ackermann_known_values(self):
        result, _ = run_workload("ack", {"m": 2, "n": 3})
        assert result == 9
        result, _ = run_workload("ack", {"m": 3, "n": 3})
        assert result == 61

    def test_fibonacci(self):
        result, _ = run_workload("fibonacci", {"n": 10})
        assert result == 55

    def test_primes_count(self):
        result, _ = run_workload("primes", {"limit": 100})
        assert result["count"] == 25

    def test_mandelbrot_interior_nonzero(self):
        result, _ = run_workload("mandelbrot", {"size": 16, "max_iter": 30})
        assert result > 0

    def test_nbody_energy_finite(self):
        result, _ = run_workload("nbody", {"steps": 50})
        assert result["energy"] > 0

    def test_spectralnorm_converges(self):
        result, _ = run_workload("spectralnorm", {"n": 30, "iterations": 5})
        assert result == pytest.approx(1.123, abs=0.01)

    def test_fannkuch_known_value(self):
        result, _ = run_workload("fannkuch", {"n": 5})
        assert result == 7    # known fannkuch(5) max flips

    def test_matrix_trace_positive(self):
        result, _ = run_workload("matrix", {"n": 8})
        assert result > 0

    def test_sort_really_sorts(self):
        result, _ = run_workload("sort", {"n": 500})
        assert result["sorted"] is True
        assert result["min"] <= result["max"]

    def test_wordcount(self):
        result, _ = run_workload("wordcount", {"repeats": 2})
        assert result["the"] == 6    # 'the' appears 3x per repeat

    def test_jsonserde_round_trips(self):
        result, _ = run_workload("jsonserde", {"rounds": 3})
        assert result["rounds"] == 3
        assert result["doc_bytes"] > 50

    def test_base64_round_trips(self):
        result, _ = run_workload("base64", {"payload_bytes": 1024, "rounds": 2})
        assert result["encoded_bytes"] == 1368    # 4/3 expansion, padded

    def test_checksum_stable(self):
        a, _ = run_workload("checksum", {"blocks": 3, "block_bytes": 1024})
        b, _ = run_workload("checksum", {"blocks": 3, "block_bytes": 1024})
        assert a["crc32"] == b["crc32"]

    def test_compression_counts_runs(self):
        result, _ = run_workload("compression", {"payload_bytes": 29 * 4})
        assert result["runs"] == 12    # 3 runs per 29-byte period

    def test_shahash_digest_hex(self):
        result, _ = run_workload("shahash", {"payload_bytes": 128, "rounds": 2})
        assert len(result["digest"]) == 64

    def test_graphbfs_reaches_nodes(self):
        result, _ = run_workload("graphbfs", {"nodes": 100, "degree": 3})
        assert 1 <= result["reached"] <= 100
        assert result["edges_walked"] >= result["reached"] - 1

    def test_memstress_accounting(self):
        result, session = run_workload(
            "memstress", {"buffer_bytes": 1 << 20, "count": 3}
        )
        assert result["allocated_mb"] == 3
        assert session.heap_bytes == 0    # everything released

    def test_logging_line_count(self):
        result, session = run_workload("logging", {"messages": 50})
        assert result["messages"] == 50
        assert session.stdout_lines == 50

    def test_filesystem_verifies_and_cleans(self):
        result, session = run_workload("filesystem", {"file_bytes": 4096})
        assert result["verified"] is True
        assert session.kernel.fs.listdir("/") == []

    def test_iostress_bytes_written(self):
        result, session = run_workload(
            "iostress", {"file_bytes": 65536, "files": 2}
        )
        assert result["bytes_written"] == 2 * 65536
        assert session.kernel.fs.listdir("/") == []

    def test_htmlrender_writes_and_cleans(self):
        result, session = run_workload("htmlrender", {"rows": 10})
        assert result["rows"] == 10
        assert result["bytes"] > 100
        assert not session.kernel.fs.exists("/render.html")

    def test_stringconcat_length(self):
        result, _ = run_workload("stringconcat", {"rounds": 10})
        assert result["length"] > 10 * len("confidential-computing-")

    def test_cpustress_result_finite(self):
        result, _ = run_workload("cpustress", {"iterations": 100})
        assert result["iterations"] == 100
        assert abs(result["sum"]) < 1e6

    def test_juliaset_extra(self):
        result, _ = run_workload("juliaset", {"size": 12, "max_iter": 20})
        assert result >= 0


class TestCostShapes:
    def test_io_workloads_charge_io(self):
        for name in ("iostress", "filesystem"):
            _, session = run_workload(name, {"file_bytes": 65536})
            assert session.ctx.ledger.get(CostCategory.IO_WRITE) > 0, name

    def test_cpu_workloads_dominated_by_cpu(self):
        _, session = run_workload("cpustress")
        ledger = session.ctx.ledger
        elapsed = ledger.total_excluding(CostCategory.STARTUP)
        assert ledger.get(CostCategory.CPU) > elapsed * 0.5

    def test_memstress_dominated_by_memory(self):
        _, session = run_workload("memstress", {"count": 8})
        ledger = session.ctx.ledger
        mem = (ledger.get(CostCategory.MEM_ALLOC)
               + ledger.get(CostCategory.MEM_ACCESS))
        assert mem > ledger.total_excluding(CostCategory.STARTUP) * 0.5

    def test_default_args_run_everywhere(self):
        """Every registered workload runs green under every runtime."""
        for workload in all_workloads():
            result = workload.run(fresh_session("go"))
            assert result is not None, workload.name

    def test_results_identical_across_runtimes(self):
        """Ports across languages keep the original logic (§IV-B)."""
        for name in ("factors", "fibonacci", "primes"):
            results = {
                lang: run_workload(name, lang=lang)[0]
                for lang in ("python", "lua", "go")
            }
            assert results["python"] == results["lua"] == results["go"], name
