"""Tests for the UnixBench-style suite."""

import pytest

from repro.errors import WorkloadError
from repro.guestos.context import CostProfile, ExecContext
from repro.guestos.kernel import GuestKernel
from repro.hw.machine import xeon_gold_5515
from repro.sim.rng import SimRng
from repro.tee import platform_by_name
from repro.workloads.unixbench import (
    BASELINE_SCORES,
    index_for,
    run_unixbench,
)
from repro.workloads.unixbench.index import system_index


def make_kernel(profile=None):
    return GuestKernel(ExecContext(
        machine=xeon_gold_5515(),
        profile=profile if profile is not None else CostProfile(noise_sigma=0.0),
        rng=SimRng(5),
    ))


class TestIndexScoring:
    def test_baseline_is_sparcstation_constants(self):
        """The classic suite's index.base values."""
        assert BASELINE_SCORES["dhry2"][1] == 116_700.0
        assert BASELINE_SCORES["whetstone"][1] == 55.0
        assert BASELINE_SCORES["context1"][1] == 4_000.0
        assert BASELINE_SCORES["syscall"][1] == 15_000.0
        assert len(BASELINE_SCORES) == 11

    def test_index_is_ten_at_baseline(self):
        assert index_for("dhry2", 116_700.0) == pytest.approx(10.0)

    def test_index_scales_linearly(self):
        assert index_for("pipe", 2 * 12_440.0) == pytest.approx(20.0)

    def test_unknown_test_rejected(self):
        with pytest.raises(WorkloadError):
            index_for("nope", 1.0)

    def test_negative_score_rejected(self):
        with pytest.raises(WorkloadError):
            index_for("pipe", -1.0)

    def test_system_index_geometric_mean(self):
        assert system_index({"a": 10.0, "b": 40.0}) == pytest.approx(20.0)

    def test_system_index_empty_rejected(self):
        with pytest.raises(WorkloadError):
            system_index({})

    def test_system_index_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            system_index({"a": 0.0})


class TestSuiteRun:
    def test_all_eleven_tests_run(self):
        report = run_unixbench(make_kernel(), scale=0.2)
        assert len(report.scores) == 11
        assert {score.key for score in report.scores} == set(BASELINE_SCORES)

    def test_scores_positive(self):
        report = run_unixbench(make_kernel(), scale=0.2)
        for score in report.scores:
            assert score.score > 0, score.key
            assert score.index > 0, score.key

    def test_system_index_positive(self):
        report = run_unixbench(make_kernel(), scale=0.2)
        assert report.system_index > 0

    def test_score_of_lookup(self):
        report = run_unixbench(make_kernel(), scale=0.2)
        assert report.score_of("pipe").key == "pipe"
        with pytest.raises(WorkloadError):
            report.score_of("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            run_unixbench(make_kernel(), scale=0)

    def test_scale_cancels_in_scores(self):
        """Scores are rates: iteration count should roughly cancel."""
        small = run_unixbench(make_kernel(), scale=0.2)
        large = run_unixbench(make_kernel(), scale=0.6)
        ratio = small.score_of("syscall").score / large.score_of("syscall").score
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_filesystem_left_clean(self):
        kernel = make_kernel()
        run_unixbench(kernel, scale=0.2)
        assert kernel.fs.total_files() == 0

    def test_context_switches_recorded(self):
        kernel = make_kernel()
        run_unixbench(kernel, scale=0.2)
        assert kernel.ctx.machine.counters.context_switches > 0


class TestTeeShape:
    """Fig. 4's ordering: TDX least overhead, then SEV-SNP, CCA worst."""

    @staticmethod
    def index_ratio(platform_name, trials=6):
        import statistics

        platform = platform_by_name(platform_name, seed=8)
        secure = platform.create_vm()
        secure.boot()
        normal = platform.create_vm()
        normal.config.secure = False
        normal.boot()
        s = statistics.fmean(
            secure.run(lambda k: run_unixbench(k, scale=0.3).system_index,
                       name="ub", trial=i).output
            for i in range(trials)
        )
        n = statistics.fmean(
            normal.run(lambda k: run_unixbench(k, scale=0.3).system_index,
                       name="ub", trial=i).output
            for i in range(trials)
        )
        return n / s    # > 1 means the secure VM is slower

    def test_every_tee_slower_than_normal(self):
        for name in ("tdx", "sev-snp", "cca"):
            assert self.index_ratio(name) > 1.05, name

    def test_ordering_tdx_sev_cca(self):
        tdx = self.index_ratio("tdx")
        sev = self.index_ratio("sev-snp")
        cca = self.index_ratio("cca")
        assert tdx < sev < cca

    def test_transition_counts_explain_overhead(self):
        """The paper (citing Misono et al.) attributes UnixBench
        slowdowns to frequent world switches; check they happen."""
        platform = platform_by_name("tdx", seed=8)
        vm = platform.create_vm()
        vm.boot()
        result = vm.run(lambda k: run_unixbench(k, scale=0.3).system_index,
                        name="ub")
        assert result.counters.vm_transitions > 100
