"""Tests for LIKE / IN / BETWEEN predicates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SqlSyntaxError
from repro.workloads.dbms.engine import Database
from repro.workloads.dbms.executor import _like_match
from repro.workloads.dbms.parser import parse


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT, qty INTEGER)"
    )
    database.execute(
        "INSERT INTO items VALUES "
        "(1, 'apple', 5), (2, 'apricot', 12), (3, 'banana', 7), "
        "(4, 'blueberry', 30), (5, 'cherry', NULL)"
    )
    return database


class TestLike:
    def test_prefix_wildcard(self, db):
        result = db.execute("SELECT name FROM items WHERE name LIKE 'ap%'")
        assert sorted(r[0] for r in result.rows) == ["apple", "apricot"]

    def test_suffix_wildcard(self, db):
        result = db.execute("SELECT name FROM items WHERE name LIKE '%rry'")
        assert sorted(r[0] for r in result.rows) == ["blueberry", "cherry"]

    def test_underscore_single_char(self, db):
        result = db.execute("SELECT name FROM items WHERE name LIKE '_pple'")
        assert result.rows == [("apple",)]

    def test_not_like(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM items WHERE name NOT LIKE 'a%'"
        )
        assert result.scalar() == 3

    def test_like_case_insensitive(self, db):
        result = db.execute("SELECT name FROM items WHERE name LIKE 'APPLE'")
        assert result.rows == [("apple",)]

    def test_like_match_escapes_regex_chars(self):
        assert _like_match("a.b", "a.b")
        assert not _like_match("axb", "a.b")   # '.' is literal in LIKE
        assert _like_match("a+b", "a+b")

    def test_like_null_is_null(self, db):
        # NULL LIKE anything -> NULL, which is not true
        result = db.execute(
            "SELECT COUNT(*) FROM items WHERE qty LIKE '%'"
        )
        assert result.scalar() == 4   # the NULL qty row is excluded


class TestIn:
    def test_in_list(self, db):
        result = db.execute(
            "SELECT name FROM items WHERE id IN (1, 3, 99)"
        )
        assert sorted(r[0] for r in result.rows) == ["apple", "banana"]

    def test_not_in(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM items WHERE id NOT IN (1, 2, 3)"
        )
        assert result.scalar() == 2

    def test_in_with_text(self, db):
        result = db.execute(
            "SELECT id FROM items WHERE name IN ('apple', 'cherry')"
        )
        assert sorted(r[0] for r in result.rows) == [1, 5]

    def test_in_with_null_item_is_unknown(self, db):
        # 7 IN (1, NULL) is NULL (unknown), not false -> row excluded
        result = db.execute(
            "SELECT COUNT(*) FROM items WHERE qty IN (5, NULL)"
        )
        assert result.scalar() == 1   # only qty=5 matches definitively

    def test_in_with_expressions(self, db):
        result = db.execute(
            "SELECT name FROM items WHERE qty IN (2 + 3, 6 + 1)"
        )
        assert sorted(r[0] for r in result.rows) == ["apple", "banana"]


class TestBetween:
    def test_between_inclusive(self, db):
        result = db.execute(
            "SELECT name FROM items WHERE qty BETWEEN 5 AND 12"
        )
        assert sorted(r[0] for r in result.rows) == [
            "apple", "apricot", "banana"
        ]

    def test_not_between(self, db):
        result = db.execute(
            "SELECT name FROM items WHERE qty NOT BETWEEN 5 AND 12"
        )
        assert result.rows == [("blueberry",)]

    def test_between_null_excluded(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM items WHERE qty BETWEEN 0 AND 100"
        )
        assert result.scalar() == 4

    def test_between_uses_index(self, db):
        db.execute("CREATE INDEX iqty ON items (qty)")
        rows_before = None
        from repro.workloads.dbms.executor import find_index_path
        from repro.workloads.dbms.parser import parse as parse_sql

        stmt = parse_sql("SELECT name FROM items WHERE qty BETWEEN 5 AND 12")
        path = find_index_path(db.table("items"), stmt.where, "items")
        assert path is not None
        assert path.low == 5 and path.high == 12
        result = db.execute("SELECT name FROM items WHERE qty BETWEEN 5 AND 12")
        assert sorted(r[0] for r in result.rows) == [
            "apple", "apricot", "banana"
        ]

    def test_between_text_range(self, db):
        result = db.execute(
            "SELECT name FROM items WHERE name BETWEEN 'a' AND 'b'"
        )
        assert sorted(r[0] for r in result.rows) == ["apple", "apricot"]


class TestParsing:
    def test_dangling_not_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 WHERE a NOT 5")

    def test_between_requires_and(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 WHERE a BETWEEN 1 OR 2")

    def test_in_requires_parenthesised_list(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 WHERE a IN 1, 2")

    def test_like_parses_in_update(self, db):
        count = db.execute(
            "UPDATE items SET qty = 0 WHERE name LIKE 'b%'"
        ).rowcount
        assert count == 2


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
    low=st.integers(-50, 50),
    high=st.integers(-50, 50),
)
def test_between_matches_oracle(values, low, high):
    """Property: BETWEEN agrees with Python's chained comparison."""
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("BEGIN")
    for value in values:
        db.execute(f"INSERT INTO t VALUES ({value})")
    db.execute("COMMIT")
    got = db.execute(
        f"SELECT COUNT(*) FROM t WHERE a BETWEEN {low} AND {high}"
    ).scalar()
    assert got == sum(1 for v in values if low <= v <= high)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(0, 20), min_size=1, max_size=30),
    members=st.lists(st.integers(0, 20), min_size=1, max_size=5),
)
def test_in_matches_oracle(values, members):
    """Property: IN agrees with Python's membership test."""
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("BEGIN")
    for value in values:
        db.execute(f"INSERT INTO t VALUES ({value})")
    db.execute("COMMIT")
    member_sql = ", ".join(map(str, members))
    got = db.execute(
        f"SELECT COUNT(*) FROM t WHERE a IN ({member_sql})"
    ).scalar()
    assert got == sum(1 for v in values if v in members)


class TestHaving:
    @pytest.fixture
    def grouped(self):
        database = Database()
        database.execute("CREATE TABLE sales (region TEXT, amount INTEGER)")
        database.execute(
            "INSERT INTO sales VALUES "
            "('north', 100), ('north', 250), ('south', 40), "
            "('south', 20), ('east', 500)"
        )
        return database

    def test_having_filters_groups(self, grouped):
        result = grouped.execute(
            "SELECT region, SUM(amount) FROM sales GROUP BY region "
            "HAVING SUM(amount) > 100 ORDER BY region"
        )
        assert result.rows == [("east", 500), ("north", 350)]

    def test_having_with_count(self, grouped):
        result = grouped.execute(
            "SELECT region FROM sales GROUP BY region HAVING COUNT(*) = 2 "
            "ORDER BY region"
        )
        assert result.rows == [("north",), ("south",)]

    def test_having_combined_with_where(self, grouped):
        result = grouped.execute(
            "SELECT region, SUM(amount) FROM sales WHERE amount > 30 "
            "GROUP BY region HAVING SUM(amount) < 400 ORDER BY region"
        )
        assert result.rows == [("north", 350), ("south", 40)]

    def test_having_without_group_by_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(a) FROM t HAVING SUM(a) > 1")

    def test_having_eliminating_everything(self, grouped):
        result = grouped.execute(
            "SELECT region FROM sales GROUP BY region HAVING SUM(amount) > 9999"
        )
        assert result.rows == []
