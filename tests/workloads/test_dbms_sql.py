"""Tests for the SQL front end: tokenizer, parser, expressions."""

import pytest

from repro.errors import SqlExecutionError, SqlSyntaxError
from repro.workloads.dbms import ast_nodes as ast
from repro.workloads.dbms.engine import Database
from repro.workloads.dbms.parser import parse
from repro.workloads.dbms.tokenizer import TokenType, tokenize
from repro.workloads.dbms.values import (
    apply_affinity,
    arithmetic,
    compare,
    is_truthy,
    sort_key,
)


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("myTable")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "myTable"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].type is TokenType.INTEGER
        assert tokens[1].type is TokenType.REAL

    def test_strings_with_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_two_char_operators(self):
        tokens = tokenize("a <= b <> c || d")
        ops = [t.value for t in tokens if t.type is TokenType.OP]
        assert ops == ["<=", "!=", "||"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n")
        assert len(tokens) == 3   # SELECT, 1, EOF

    def test_junk_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @foo")

    def test_eof_terminated(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestParser:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].affinity == "TEXT"

    def test_two_primary_keys_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)")

    def test_create_index(self):
        stmt = parse("CREATE UNIQUE INDEX i ON t (c)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.unique

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (b, a) VALUES (1, 2)")
        assert stmt.columns == ("b", "a")

    def test_select_structure(self):
        stmt = parse(
            "SELECT a, COUNT(*) AS n FROM t WHERE a > 1 "
            "GROUP BY a ORDER BY n DESC LIMIT 5"
        )
        assert isinstance(stmt, ast.Select)
        assert stmt.items[1].alias == "n"
        assert stmt.limit == 5
        assert stmt.order_by[0].descending
        assert len(stmt.group_by) == 1

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].star

    def test_join_parses(self):
        stmt = parse("SELECT a FROM t JOIN u ON t.id = u.tid")
        assert stmt.join is not None
        assert stmt.join.table == "u"

    def test_operator_precedence(self):
        stmt = parse("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        stmt = parse("SELECT 1 WHERE a OR b AND c")
        where = stmt.where
        assert isinstance(where, ast.BinaryOp) and where.op == "OR"
        assert isinstance(where.right, ast.BinaryOp) and where.right.op == "AND"

    def test_is_null(self):
        stmt = parse("SELECT 1 WHERE a IS NOT NULL")
        assert isinstance(stmt.where, ast.IsNull)
        assert stmt.where.negated

    def test_unary_minus(self):
        stmt = parse("SELECT -5")
        assert isinstance(stmt.items[0].expr, ast.UnaryOp)

    def test_count_star_only(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*) FROM t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 2")

    def test_semicolon_allowed(self):
        assert isinstance(parse("SELECT 1;"), ast.Select)

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("VACUUM")

    def test_transaction_statements(self):
        assert isinstance(parse("BEGIN"), ast.Begin)
        assert isinstance(parse("COMMIT"), ast.Commit)
        assert isinstance(parse("ROLLBACK"), ast.Rollback)


class TestValues:
    def test_affinity_integer(self):
        assert apply_affinity("42", "INTEGER") == 42
        assert apply_affinity(3.7, "INTEGER") == 3

    def test_affinity_real(self):
        assert apply_affinity(1, "REAL") == 1.0

    def test_affinity_text(self):
        assert apply_affinity(5, "TEXT") == "5"

    def test_affinity_null_passthrough(self):
        assert apply_affinity(None, "INTEGER") is None

    def test_affinity_error(self):
        with pytest.raises(SqlExecutionError):
            apply_affinity("not-a-number", "INTEGER")

    def test_compare_null_is_unknown(self):
        assert compare(None, 1) is None
        assert compare(1, None) is None

    def test_compare_cross_type_order(self):
        assert compare(5, "a") == -1    # numbers sort before text
        assert compare("a", 5) == 1

    def test_sort_key_null_first(self):
        values = ["zebra", None, 3, 1.5]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, 1.5, 3, "zebra"]

    def test_is_truthy(self):
        assert not is_truthy(None)
        assert not is_truthy(0)
        assert not is_truthy("")
        assert is_truthy(1)
        assert is_truthy("x")

    def test_arithmetic_null_propagates(self):
        assert arithmetic("+", None, 1) is None

    def test_division_by_zero_is_null(self):
        assert arithmetic("/", 1, 0) is None

    def test_integer_division(self):
        assert arithmetic("/", 7, 2) == 3

    def test_concat(self):
        assert arithmetic("||", "a", 1) == "a1"


class TestExpressionEvaluation:
    def eval_scalar(self, sql):
        return Database().execute(f"SELECT {sql}").scalar()

    def test_arithmetic_chain(self):
        assert self.eval_scalar("2 + 3 * 4 - 1") == 13

    def test_parentheses(self):
        assert self.eval_scalar("(2 + 3) * 4") == 20

    def test_comparison_returns_int(self):
        assert self.eval_scalar("3 > 2") == 1
        assert self.eval_scalar("3 < 2") == 0

    def test_null_comparison_is_null(self):
        assert self.eval_scalar("NULL = NULL") is None

    def test_is_null_on_null(self):
        assert self.eval_scalar("NULL IS NULL") == 1

    def test_not(self):
        assert self.eval_scalar("NOT 0") == 1

    def test_length_and_abs(self):
        assert self.eval_scalar("LENGTH('hello')") == 5
        assert self.eval_scalar("ABS(-4)") == 4

    def test_string_concat(self):
        assert self.eval_scalar("'a' || 'b' || 'c'") == "abc"

    def test_modulo(self):
        assert self.eval_scalar("17 % 5") == 2
