"""Tests for the engine: storage, queries, indexes, transactions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DbmsError, SqlExecutionError
from repro.workloads.dbms.btree import BPlusTree
from repro.workloads.dbms.engine import Database, KernelCostHooks
from repro.workloads.dbms.pager import Pager, pages_for_bytes
from repro.workloads.dbms.speedtest import run_speedtest


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE people (id INTEGER PRIMARY KEY, "
                     "name TEXT, age INTEGER)")
    database.execute(
        "INSERT INTO people VALUES "
        "(1, 'alice', 34), (2, 'bob', 28), (3, 'carol', 41), "
        "(4, 'dave', 28), (5, 'erin', 55)"
    )
    return database


class TestBPlusTree:
    def test_insert_and_get(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, i * 10)
        assert tree.get(42) == 420
        assert len(tree) == 100

    def test_split_keeps_order(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(50)):
            tree.insert(i, i)
        assert [k for k, _ in tree.items()] == list(range(50))
        assert tree.depth() > 1

    def test_duplicate_rejected(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        with pytest.raises(DbmsError):
            tree.insert(1, "b")

    def test_replace(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b", replace=True)
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_delete(self):
        tree = BPlusTree(order=4)
        for i in range(30):
            tree.insert(i, i)
        assert tree.delete(7)
        assert not tree.delete(7)
        assert tree.get(7) is None
        assert len(tree) == 29

    def test_contains(self):
        tree = BPlusTree()
        tree.insert(5, None)     # None value is still present
        assert 5 in tree
        assert 6 not in tree

    def test_range_scan(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):
            tree.insert(i, i)
        keys = [k for k, _ in tree.range(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_range_exclusive_bounds(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(i, i)
        keys = [k for k, _ in tree.range(2, 6, include_low=False,
                                         include_high=False)]
        assert keys == [3, 4, 5]

    def test_open_ranges(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(None, 3)] == [0, 1, 2, 3]
        assert [k for k, _ in tree.range(7, None)] == [7, 8, 9]

    def test_order_too_small(self):
        with pytest.raises(DbmsError):
            BPlusTree(order=2)

    @settings(max_examples=30, deadline=None)
    @given(keys=st.lists(st.integers(-1000, 1000), unique=True, max_size=200))
    def test_items_always_sorted(self, keys):
        """Property: iteration yields keys in sorted order after any
        insert sequence."""
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == sorted(keys)

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 300), unique=True, min_size=1,
                      max_size=100),
        data=st.data(),
    )
    def test_delete_then_membership(self, keys, data):
        """Property: after deleting a subset, exactly the rest remain."""
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        to_delete = data.draw(st.sets(st.sampled_from(keys)))
        for key in to_delete:
            assert tree.delete(key)
        remaining = sorted(set(keys) - to_delete)
        assert [k for k, _ in tree.items()] == remaining


class TestPager:
    def test_cold_read_counts(self):
        pager = Pager()
        assert pager.read(1) is False
        assert pager.stats.reads == 1

    def test_hot_read_is_cache_hit(self):
        pager = Pager()
        pager.read(1)
        assert pager.read(1) is True
        assert pager.stats.cache_hits == 1

    def test_eviction(self):
        pager = Pager(cache_pages=2)
        pager.read(1)
        pager.read(2)
        pager.read(3)            # evicts page 1
        assert pager.read(1) is False

    def test_commit_flushes_dirty(self):
        pager = Pager()
        pager.write(1)
        pager.write(2)
        assert pager.dirty_count() == 2
        assert pager.commit() == 2
        assert pager.dirty_count() == 0
        assert pager.stats.writes == 2
        assert pager.stats.journal_writes == 2

    def test_rollback_discards(self):
        pager = Pager()
        pager.write(1)
        assert pager.rollback() == 1
        assert pager.stats.writes == 0

    def test_pages_for_bytes(self):
        assert pages_for_bytes(0) == 1
        assert pages_for_bytes(4096) == 1
        assert pages_for_bytes(4097) == 2


class TestQueries:
    def test_select_all(self, db):
        result = db.execute("SELECT * FROM people")
        assert result.rowcount == 5
        assert result.columns == ["id", "name", "age"]

    def test_where_filter(self, db):
        result = db.execute("SELECT name FROM people WHERE age = 28")
        assert sorted(r[0] for r in result.rows) == ["bob", "dave"]

    def test_primary_key_lookup_uses_index(self, db):
        table = db.table("people")
        assert "id" in table.indexes
        result = db.execute("SELECT name FROM people WHERE id = 3")
        assert result.rows == [("carol",)]

    def test_index_and_scan_agree(self, db):
        db.execute("CREATE INDEX iage ON people (age)")
        indexed = db.execute("SELECT id FROM people WHERE age = 28")
        by_scan = db.execute("SELECT id FROM people WHERE age + 0 = 28")
        assert sorted(indexed.rows) == sorted(by_scan.rows)

    def test_range_via_index(self, db):
        db.execute("CREATE INDEX iage ON people (age)")
        result = db.execute("SELECT name FROM people WHERE age >= 40")
        assert sorted(r[0] for r in result.rows) == ["carol", "erin"]

    def test_order_by_desc(self, db):
        result = db.execute("SELECT name FROM people ORDER BY age DESC, name")
        assert result.rows[0] == ("erin",)

    def test_order_by_multi_key(self, db):
        result = db.execute("SELECT name FROM people ORDER BY age, name")
        assert [r[0] for r in result.rows] == [
            "bob", "dave", "alice", "carol", "erin"
        ]

    def test_limit(self, db):
        assert db.execute("SELECT id FROM people ORDER BY id LIMIT 2").rows == [
            (1,), (2,)
        ]

    def test_aggregates(self, db):
        result = db.execute("SELECT COUNT(*), MIN(age), MAX(age), AVG(age) "
                            "FROM people")
        assert result.rows == [(5, 28, 55, 37.2)]

    def test_group_by(self, db):
        result = db.execute(
            "SELECT age, COUNT(*) FROM people GROUP BY age ORDER BY age"
        )
        assert result.rows == [(28, 2), (34, 1), (41, 1), (55, 1)]

    def test_count_ignores_null(self, db):
        db.execute("INSERT INTO people VALUES (6, 'frank', NULL)")
        result = db.execute("SELECT COUNT(age), COUNT(*) FROM people")
        assert result.rows == [(5, 6)]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT age FROM people WHERE age = 28")
        assert result.rows == [(28,)]

    def test_join(self, db):
        db.execute("CREATE TABLE pets (owner INTEGER, pet TEXT)")
        db.execute("INSERT INTO pets VALUES (1, 'cat'), (1, 'dog'), (3, 'fish')")
        result = db.execute(
            "SELECT people.name, pets.pet FROM people "
            "JOIN pets ON people.id = pets.owner ORDER BY pet"
        )
        assert result.rows == [("alice", "cat"), ("alice", "dog"),
                               ("carol", "fish")]

    def test_join_with_where(self, db):
        db.execute("CREATE TABLE pets (owner INTEGER, pet TEXT)")
        db.execute("INSERT INTO pets VALUES (1, 'cat'), (3, 'fish')")
        result = db.execute(
            "SELECT pets.pet FROM people JOIN pets ON people.id = pets.owner "
            "WHERE people.age > 40"
        )
        assert result.rows == [("fish",)]

    def test_expression_projection(self, db):
        result = db.execute("SELECT age * 2 FROM people WHERE id = 1")
        assert result.scalar() == 68

    def test_unknown_table(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT * FROM nope")

    def test_unknown_column(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT salary FROM people")

    def test_ambiguous_column(self, db):
        db.execute("CREATE TABLE twin (id INTEGER, name TEXT)")
        db.execute("INSERT INTO twin VALUES (1, 'x')")
        with pytest.raises(SqlExecutionError, match="ambiguous"):
            db.execute("SELECT name FROM people JOIN twin ON people.id = twin.id")


class TestMutations:
    def test_update_with_where(self, db):
        count = db.execute("UPDATE people SET age = 29 WHERE name = 'bob'")
        assert count.rowcount == 1
        assert db.execute("SELECT age FROM people WHERE name = 'bob'").scalar() == 29

    def test_update_expression(self, db):
        db.execute("UPDATE people SET age = age + 1")
        total = db.execute("SELECT SUM(age) FROM people").scalar()
        assert total == 34 + 28 + 41 + 28 + 55 + 5

    def test_update_maintains_index(self, db):
        db.execute("CREATE INDEX iage ON people (age)")
        db.execute("UPDATE people SET age = 99 WHERE name = 'alice'")
        result = db.execute("SELECT name FROM people WHERE age = 99")
        assert result.rows == [("alice",)]

    def test_delete(self, db):
        assert db.execute("DELETE FROM people WHERE age = 28").rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 3

    def test_delete_all(self, db):
        db.execute("DELETE FROM people")
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 0

    def test_unique_violation(self, db):
        with pytest.raises(SqlExecutionError, match="UNIQUE"):
            db.execute("INSERT INTO people VALUES (1, 'dup', 1)")

    def test_insert_with_columns_fills_null(self, db):
        db.execute("INSERT INTO people (id, name) VALUES (10, 'zoe')")
        assert db.execute("SELECT age FROM people WHERE id = 10").scalar() is None

    def test_drop_table(self, db):
        db.execute("DROP TABLE people")
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT * FROM people")

    def test_drop_missing_table(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("DROP TABLE ghost")
        db.execute("DROP TABLE IF EXISTS ghost")   # tolerated

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS people (id INTEGER)")
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 5


class TestTransactions:
    def test_commit_persists(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO people VALUES (6, 'fred', 20)")
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 6

    def test_rollback_insert(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO people VALUES (6, 'fred', 20)")
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_rollback_delete_restores_rows_and_index(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM people WHERE id = 1")
        db.execute("ROLLBACK")
        assert db.execute("SELECT name FROM people WHERE id = 1").scalar() == "alice"

    def test_rollback_update(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE people SET age = 0")
        db.execute("ROLLBACK")
        assert db.execute("SELECT SUM(age) FROM people").scalar() == 186

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(SqlExecutionError):
            db.execute("BEGIN")

    def test_commit_without_begin(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("COMMIT")

    def test_batched_inserts_flush_once(self, db):
        """Transactions batch page flushes — the speedtest-110 effect."""
        autocommit = Database()
        autocommit.execute("CREATE TABLE t (a INTEGER)")
        for i in range(20):
            autocommit.execute(f"INSERT INTO t VALUES ({i})")
        batched = Database()
        batched.execute("CREATE TABLE t (a INTEGER)")
        batched.execute("BEGIN")
        for i in range(20):
            batched.execute(f"INSERT INTO t VALUES ({i})")
        batched.execute("COMMIT")
        assert batched.pager.stats.writes < autocommit.pager.stats.writes


class TestSpeedtest:
    def test_runs_all_sixteen_tests(self):
        results = run_speedtest(Database(), size=5)
        assert len(results) == 16
        assert [r.test_id for r in results] == [
            100, 110, 120, 130, 140, 142, 145, 150, 160, 170, 180,
            230, 240, 250, 260, 190
        ]

    def test_size_scales_statements(self):
        small = run_speedtest(Database(), size=2)
        large = run_speedtest(Database(), size=8)
        assert large[0].statements > small[0].statements

    def test_rejects_zero_size(self):
        with pytest.raises(DbmsError):
            run_speedtest(Database(), size=0)

    def test_clock_measures_elapsed(self):
        ticks = iter(range(0, 10_000, 7))
        results = run_speedtest(Database(), size=2,
                                clock=lambda: float(next(ticks)))
        assert all(r.elapsed_ns > 0 for r in results)

    def test_kernel_hooks_charge_costs(self):
        from repro.guestos.context import CostProfile, ExecContext
        from repro.guestos.kernel import GuestKernel
        from repro.hw.machine import xeon_gold_5515
        from repro.sim.rng import SimRng

        kernel = GuestKernel(ExecContext(
            machine=xeon_gold_5515(),
            profile=CostProfile(noise_sigma=0.0),
            rng=SimRng(2),
        ))
        database = Database(hooks=KernelCostHooks(kernel))
        run_speedtest(database, size=3, clock=kernel.ctx.elapsed_ns)
        assert kernel.ctx.elapsed_ns() > 0
