"""Freshness policy, bounded request log, and CRL boundary semantics.

The stale-collateral bug class: a breaker-open PCS used to serve
cached documents forever.  Now every cached serve is classified —
fresh (``!cached``), stale-but-acceptable (``!stale``), or reject
(evicted, ``!open``) — and both the log and the cache are bounded.
"""

import pytest

from repro.attest import IntelPcs
from repro.attest.certs import CertificateAuthority
from repro.attest.pcs import (
    DEFAULT_FRESHNESS,
    FreshnessPolicy,
    RequestLog,
    Staleness,
    TcbInfo,
)
from repro.errors import AttestationError, CollateralTimeoutError
from repro.guestos.context import ExecContext
from repro.hw.machine import xeon_gold_5515
from repro.sim.faults import BreakerState, CircuitBreaker, FaultContext, FaultPlan
from repro.sim.rng import SimRng

ALWAYS_TIMEOUT = FaultPlan.parse("pcs-timeout=1.0,seed=1")
NEVER_COOLS_NS = 1e18
TCB_ENDPOINT = "/sgx/certification/v4/tcb"

#: a tight policy so tests age documents with small clock advances
TIGHT = FreshnessPolicy(ttl_ns=1_000.0, max_stale_ns=500.0)


def make_ctx(seed=1, faults=None):
    return ExecContext(machine=xeon_gold_5515(),
                       rng=SimRng(seed, "freshness-ctx"), faults=faults)


def faulted_ctx(seed=2):
    return make_ctx(seed, faults=FaultContext(ALWAYS_TIMEOUT, "test"))


def some_tcb() -> TcbInfo:
    return TcbInfo(fmspc="x", tcb_svn="y", status="UpToDate", signature=b"")


class TestFreshnessPolicy:
    def test_ttl_document_verdict_progression(self):
        doc = some_tcb()
        assert TIGHT.classify(doc, 0.0, 999.0) is Staleness.FRESH
        assert TIGHT.classify(doc, 0.0, 1_000.0) is Staleness.STALE_ACCEPTABLE
        assert TIGHT.classify(doc, 0.0, 1_499.0) is Staleness.STALE_ACCEPTABLE
        assert TIGHT.classify(doc, 0.0, 1_500.0) is Staleness.REJECT

    def test_clock_regression_clamps_age_to_zero(self):
        # a fresh trial context restarting near zero must not make an
        # old store time look like negative (or huge) age
        doc = some_tcb()
        assert TIGHT.classify(doc, 5_000.0, 10.0) is Staleness.FRESH

    def test_crl_verdict_uses_signed_next_update(self):
        ca = CertificateAuthority("CA", SimRng(1, "ca"))
        crl = ca.crl(now_ns=0.0, validity_ns=1_000.0)
        # stored_at is irrelevant for CRLs: the document carries its
        # own expiry
        assert TIGHT.classify(crl, 999_999.0, 999.0) is Staleness.FRESH
        assert TIGHT.classify(crl, 0.0, 1_000.0) is Staleness.STALE_ACCEPTABLE
        assert TIGHT.classify(crl, 0.0, 1_500.0) is Staleness.REJECT

    def test_crl_boundary_is_strict_less_than_everywhere(self):
        """now == next_update is stale for is_stale, classify, and the
        remaining-freshness helper — no consumer can disagree."""
        ca = CertificateAuthority("CA", SimRng(2, "ca"))
        crl = ca.crl(now_ns=0.0, validity_ns=1_000.0)
        assert not crl.is_stale(999.999)
        assert crl.is_stale(1_000.0)
        assert crl.freshness_remaining_ns(1_000.0) == 0.0
        assert crl.freshness_remaining_ns(999.0) == 1.0
        assert DEFAULT_FRESHNESS.classify(crl, 0.0, 1_000.0) \
            is not Staleness.FRESH

    def test_invalid_policy_rejected(self):
        with pytest.raises(AttestationError):
            FreshnessPolicy(ttl_ns=0.0)
        with pytest.raises(AttestationError):
            FreshnessPolicy(max_stale_ns=-1.0)


class TestOpenCircuitFreshness:
    def _tripped_pcs(self, seed=50, **kwargs):
        breaker = CircuitBreaker("pcs", failure_threshold=1,
                                 cooldown_ns=NEVER_COOLS_NS)
        return IntelPcs(SimRng(seed, "pcs"), breaker=breaker,
                        freshness=TIGHT, **kwargs)

    def test_stale_but_acceptable_is_served_marked(self):
        pcs = self._tripped_pcs()
        ctx = make_ctx(1)
        warm = pcs.fetch_tcb_info(ctx)
        with pytest.raises(CollateralTimeoutError):
            pcs.fetch_tcb_info(faulted_ctx())
        assert pcs.breaker.state is BreakerState.OPEN
        # age the document past its TTL but inside the grace window
        ctx.charge_network(1_200.0)
        served = pcs.fetch_tcb_info(ctx)
        assert served == warm
        assert pcs.request_log[-1].endswith("!stale")

    def test_rejected_document_is_evicted_and_fetch_fails(self):
        pcs = self._tripped_pcs(seed=51)
        ctx = make_ctx(1)
        pcs.fetch_tcb_info(ctx)
        with pytest.raises(CollateralTimeoutError):
            pcs.fetch_tcb_info(faulted_ctx())
        # age far past the grace window: the cached copy must not
        # keep attesting — it is dropped and the fetch fails
        ctx.charge_network(10_000.0)
        with pytest.raises(CollateralTimeoutError, match="no acceptable"):
            pcs.fetch_tcb_info(ctx)
        assert pcs.request_log[-1].endswith("!open")
        assert TCB_ENDPOINT not in pcs.collateral_cache
        assert TCB_ENDPOINT not in pcs.collateral_fetched_at

    def test_fresh_document_still_served_as_cached(self):
        pcs = self._tripped_pcs(seed=52)
        ctx = make_ctx(1)
        warm = pcs.fetch_tcb_info(ctx)
        with pytest.raises(CollateralTimeoutError):
            pcs.fetch_tcb_info(faulted_ctx())
        served = pcs.fetch_tcb_info(ctx)
        assert served == warm
        assert pcs.request_log[-1].endswith("!cached")


class TestEvictExpired:
    def test_sweep_drops_only_rejected_entries(self):
        pcs = IntelPcs(SimRng(60, "pcs"), freshness=TIGHT)
        ctx = make_ctx(1)
        pcs.fetch_tcb_info(ctx)
        first_at = pcs.collateral_fetched_at[TCB_ENDPOINT]
        ctx.charge_network(1_200.0)          # first doc: stale, not rejected
        pcs.fetch_qe_identity(ctx)
        assert pcs.evict_expired(first_at + 1_200.0) == 0
        assert pcs.evict_expired(first_at + 10_000.0) == 1
        assert TCB_ENDPOINT not in pcs.collateral_cache
        # the younger QE identity survives the sweep
        assert "/sgx/certification/v4/qe/identity" in pcs.collateral_cache


class TestRequestLog:
    def test_ring_buffer_caps_and_counts_drops(self):
        log = RequestLog(capacity=3)
        for entry in ("a", "b", "c", "d", "e"):
            log.append(entry)
        assert len(log) == 3
        assert list(log) == ["c", "d", "e"]
        assert log.dropped == 2
        assert log == ["c", "d", "e"]
        assert log[-1] == "e"
        assert log[-2:] == ["d", "e"]

    def test_equality_across_instances(self):
        a, b = RequestLog(), RequestLog()
        a.append("x")
        b.append("x")
        assert a == b
        b.append("y")
        assert a != b

    def test_invalid_capacity_rejected(self):
        with pytest.raises(AttestationError):
            RequestLog(capacity=0)

    def test_pcs_log_is_bounded(self):
        pcs = IntelPcs(SimRng(61, "pcs"), log_capacity=4)
        ctx = make_ctx(1)
        for _ in range(3):
            pcs.fetch_tcb_info(ctx)
            pcs.fetch_qe_identity(ctx)
        assert len(pcs.request_log) == 4
        assert pcs.request_log.dropped == 2
