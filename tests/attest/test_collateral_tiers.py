"""The unified CollateralTier protocol and its deprecation shims.

Exactly one collateral-tier implementation per economics model
remains: :class:`~repro.attest.service.TieredCollateral` (documents
over a live context) and :class:`~repro.attest.tiers.ZonedCollateral`
(fixed zone-scale costs), both under the
:class:`~repro.attest.tiers.CollateralTier` ABC with the same
``fetch(doc, now_ns)`` surface, tier labels, and counters.  The old
import paths stay alive via warn-once shims.
"""

import warnings

import pytest

from repro.attest import IntelPcs, TieredCollateral
from repro.attest.tiers import (
    CDN_TIER_NS,
    HOST_TIER_NS,
    ORIGIN_TIER_NS,
    CollateralDoc,
    CollateralTier,
    TierHit,
    TierStore,
    ZonedCollateral,
)
from repro.guestos.context import ExecContext
from repro.hw.machine import xeon_gold_5515
from repro.sim.rng import SimRng


def make_ctx(seed=1):
    return ExecContext(machine=xeon_gold_5515(),
                       rng=SimRng(seed, "tiers-ctx"))


class TestProtocol:
    def test_both_implementations_share_the_abc(self):
        pcs = IntelPcs(SimRng(1, "infra"))
        assert isinstance(TieredCollateral(pcs), CollateralTier)
        assert isinstance(ZonedCollateral(("z1",)), CollateralTier)

    def test_abc_is_abstract(self):
        with pytest.raises(TypeError):
            CollateralTier()

    def test_standard_hit_keys(self):
        tier = ZonedCollateral(("z1",))
        assert set(tier.hits) == set(CollateralTier.HIT_KEYS)
        assert all(count == 0 for count in tier.hits.values())

    def test_emit_folds_counters_into_sink(self):
        class Sink:
            def __init__(self):
                self.counts = {}

            def count(self, name, value=1):
                self.counts[name] = self.counts.get(name, 0) + value

        tier = ZonedCollateral(("z1",))
        tier.fetch(CollateralDoc(platform="tdx", host="h1", zone="z1"),
                   0.0)
        sink = Sink()
        tier.emit(sink)
        assert sink.counts["collateral.origin"] == 1


class TestZonedCollateral:
    def test_cold_fetch_warms_cdn_then_host(self):
        tier = ZonedCollateral(("z1",))
        doc = CollateralDoc(platform="tdx", host="h1", zone="z1")
        first = tier.fetch(doc, 0.0)
        assert first.tier == "origin"
        assert first.cost_ns == ORIGIN_TIER_NS
        # same zone, different host: CDN is warm now
        other = tier.fetch(CollateralDoc(platform="tdx", host="h2",
                                         zone="z1"), 0.0)
        assert other.tier == "cdn" and other.cost_ns == CDN_TIER_NS
        # same host again: host tier
        again = tier.fetch(doc, 0.0)
        assert again.tier == "host" and again.cost_ns == HOST_TIER_NS
        assert tier.hits["origin"] == 1
        assert tier.hits["cdn"] == 1
        assert tier.hits["host"] == 1

    def test_non_networked_platform_is_local_and_free(self):
        tier = ZonedCollateral(("z1",))
        hit = tier.fetch(CollateralDoc(platform="cca", host="h1",
                                       zone="z1"), 0.0)
        assert hit.tier == "local" and hit.cost_ns == 0.0


class TestServiceTierFetch:
    def test_context_free_peek_resolves_cached_tiers(self):
        pcs = IntelPcs(SimRng(5, "infra"))
        cdn = TierStore("test-cdn")
        collateral = TieredCollateral(pcs, cdn=cdn)
        ctx = make_ctx(2)
        # warm the tiers through the charged provider path
        collateral.fetch_root_crl(ctx)
        hit = collateral.fetch(CollateralDoc(name="root_crl"),
                               ctx.clock.now())
        assert isinstance(hit, TierHit)
        assert hit.tier in ("host", "cdn")
        assert hit.document is not None
        assert collateral.hits[hit.tier] >= 1

    def test_peek_misses_cold_cache(self):
        pcs = IntelPcs(SimRng(6, "infra"))
        collateral = TieredCollateral(pcs)
        assert collateral.fetch(CollateralDoc(name="root_crl"),
                                0.0) is None


class TestDeprecationShims:
    def test_service_collateraltier_alias_warns_once(self):
        import repro.attest.service as service_mod
        from repro.core.gateway import _WARNED

        _WARNED.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alias = service_mod.CollateralTier
        assert alias is TierStore
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        # second access: warn-once
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert service_mod.CollateralTier is TierStore
        assert not caught

    def test_service_module_unknown_attr_still_raises(self):
        import repro.attest.service as service_mod

        with pytest.raises(AttributeError):
            service_mod.NoSuchThing

    def test_zone_collateral_shim_warns_and_delegates(self):
        from repro.core.cluster.collateral import ZoneCollateral
        from repro.core.cluster.profiles import build_fleet
        from repro.core.cluster.node import ClusterNode
        from repro.core.gateway import _WARNED

        _WARNED.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = ZoneCollateral(("z1",))
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

        node = ClusterNode(build_fleet(1, seed=3)[0])
        cost = shim.fetch_ns(node, "tdx", 0.0)
        assert cost == ORIGIN_TIER_NS
        # legacy behaviour preserved: warmth mirrored onto the node
        assert node.host_collateral["tdx"] is True
        assert shim.fetch_ns(node, "tdx", 0.0) == HOST_TIER_NS
        assert shim.hits["origin"] == 1 and shim.hits["host"] == 1

    def test_zone_collateral_keys_warmth_by_node_identity(self):
        from repro.core.cluster.collateral import ZoneCollateral
        from repro.core.cluster.profiles import build_fleet
        from repro.core.cluster.node import ClusterNode

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            shim = ZoneCollateral(("z1",))
        profile = build_fleet(1, seed=4)[0]
        one, two = ClusterNode(profile), ClusterNode(profile)
        assert shim.fetch_ns(one, "tdx", 0.0) == ORIGIN_TIER_NS
        # a distinct node with the same profile is not host-warm
        assert shim.fetch_ns(two, "tdx", 0.0) == CDN_TIER_NS
