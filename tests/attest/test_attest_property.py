"""Property and failure-injection tests for the attestation stack."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.attest import (
    AmdKeyInfrastructure,
    IntelPcs,
    QuotingEnclave,
    SnpVerifier,
    TdxVerifier,
    generate_snp_report,
    generate_tdx_quote,
)
from repro.attest.certs import CertificateAuthority, verify_chain
from repro.attest.crypto import generate_keypair
from repro.errors import CertificateError, CrlError, QuoteVerificationError
from repro.guestos.context import ExecContext
from repro.hw.machine import epyc_9124, xeon_gold_5515
from repro.sim.rng import SimRng
from repro.tee.sevsnp import AmdSecureProcessor
from repro.tee.tdx import TdxModule


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_keypair_roundtrip_any_seed(seed):
    """Property: any seeded keypair signs and verifies."""
    keypair = generate_keypair(SimRng(seed, "prop"), bits=768)
    message = f"msg-{seed}".encode()
    assert keypair.public.verify(message, keypair.sign(message))


@settings(max_examples=6, deadline=None)
@given(depth=st.integers(min_value=1, max_value=4))
def test_chain_of_any_depth_verifies(depth):
    """Property: a well-formed CA chain of any depth verifies."""
    rng = SimRng(77, f"depth-{depth}")
    root = CertificateAuthority("Root", rng)
    current = root
    intermediates = []
    for level in range(depth):
        current = CertificateAuthority(f"Int{level}", rng, issuer_ca=current)
        intermediates.append(current)
    leaf_key = generate_keypair(rng.child("leaf"))
    leaf = current.issue("Leaf", leaf_key.public)
    chain = [leaf] + [ca.certificate for ca in reversed(intermediates)]
    verify_chain(chain, root.certificate)


@settings(max_examples=6, deadline=None)
@given(drop=st.integers(min_value=1, max_value=2))
def test_chain_with_any_link_missing_fails(drop):
    """Property: removing any *intermediate* link breaks a depth-3
    chain (dropping the leaf just verifies a different subject)."""
    rng = SimRng(78, "drop")
    root = CertificateAuthority("Root", rng)
    a = CertificateAuthority("A", rng, issuer_ca=root)
    b = CertificateAuthority("B", rng, issuer_ca=a)
    leaf_key = generate_keypair(rng.child("leaf"))
    leaf = b.issue("Leaf", leaf_key.public)
    chain = [leaf, b.certificate, a.certificate]
    del chain[drop]
    with pytest.raises(CertificateError):
        verify_chain(chain, root.certificate)


class TestFailureInjection:
    """Inject faults into the full TDX/SNP flows and watch them fail
    loudly (never silently verify)."""

    @pytest.fixture(scope="class")
    def tdx(self):
        rng = SimRng(99, "fi-tdx")
        pcs = IntelPcs(rng)
        qe = QuotingEnclave(pcs, rng)
        module = TdxModule()
        ctx = ExecContext(machine=xeon_gold_5515(), rng=rng.child("gen"))
        quote = generate_tdx_quote(module, qe, pcs, ctx, b"nonce")
        return pcs, quote

    def _ctx(self, seed=1):
        return ExecContext(machine=xeon_gold_5515(),
                           rng=SimRng(seed, "fi-ctx"))

    def test_revoked_pck_certificate_rejected(self, tdx):
        """Revoke the platform's PCK between attest and check."""
        pcs, quote = tdx
        pck_cert = quote.cert_chain[1]
        pcs.pck_ca.revoke(pck_cert.serial)
        try:
            with pytest.raises(CrlError, match="revoked"):
                TdxVerifier(pcs).verify(quote, self._ctx())
        finally:
            pcs.pck_ca._revoked.clear()   # undo for other tests

    def test_swapped_attestation_key_rejected(self, tdx):
        """Replace the AK cert with one for a different key."""
        pcs, quote = tdx
        rogue_key = generate_keypair(SimRng(5, "rogue"))
        original_ak = quote.cert_chain[0]
        rogue_ak = dataclasses.replace(original_ak,
                                       public_key=rogue_key.public)
        bad = dataclasses.replace(
            quote, cert_chain=(rogue_ak, *quote.cert_chain[1:])
        )
        with pytest.raises((QuoteVerificationError, CertificateError)):
            TdxVerifier(pcs).verify(bad, self._ctx())

    def test_cross_platform_confusion_rejected(self):
        """An SNP report cannot verify against a different chip's keys."""
        rng = SimRng(101, "fi-snp")
        keys_a = AmdKeyInfrastructure(rng, chip_id="chip-a")
        keys_b = AmdKeyInfrastructure(rng.child("b"), chip_id="chip-a")
        amd_sp = AmdSecureProcessor(chip_id="chip-a")
        ctx = ExecContext(machine=epyc_9124(), rng=rng.child("gen"))
        report = generate_snp_report(amd_sp, keys_a, ctx, b"n")
        # keys_b has the same chip id but different key material
        with pytest.raises(QuoteVerificationError):
            SnpVerifier(keys_b).verify(
                report,
                ExecContext(machine=epyc_9124(), rng=rng.child("v")),
            )

    def test_verifier_with_wrong_trust_anchor_rejected(self, tdx):
        """Pinning a rogue root makes every genuine quote fail."""
        pcs, quote = tdx
        rogue_root = CertificateAuthority("Intel SGX Root CA",
                                          SimRng(7, "rogue-root"))
        verifier = TdxVerifier(pcs, trusted_root=rogue_root.certificate)
        with pytest.raises(CertificateError):
            verifier.verify(quote, self._ctx())

    def test_empty_signature_rejected(self, tdx):
        pcs, quote = tdx
        bad = dataclasses.replace(quote, signature=b"")
        with pytest.raises(QuoteVerificationError):
            TdxVerifier(pcs).verify(bad, self._ctx())

    def test_verification_cost_charged_even_on_failure(self, tdx):
        """Failed verifications still paid for their collateral."""
        pcs, quote = tdx
        ctx = self._ctx()
        bad = dataclasses.replace(quote, signature=b"")
        with pytest.raises(QuoteVerificationError):
            TdxVerifier(pcs).verify(bad, ctx)
        assert ctx.ledger.total() > 0
