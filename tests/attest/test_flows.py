"""End-to-end tests of the TDX and SNP attestation flows."""

import dataclasses

import pytest

from repro.attest import (
    AmdKeyInfrastructure,
    IntelPcs,
    QuotingEnclave,
    SnpVerifier,
    TdxVerifier,
    generate_snp_report,
    generate_tdx_quote,
)
from repro.errors import AttestationError, QuoteVerificationError
from repro.guestos.context import ExecContext
from repro.hw.machine import epyc_9124, xeon_gold_5515
from repro.sim.ledger import CostCategory
from repro.sim.rng import SimRng
from repro.tee.sevsnp import AmdSecureProcessor
from repro.tee.tdx import OLD_FIRMWARE, TdxModule


@pytest.fixture(scope="module")
def tdx_world():
    rng = SimRng(42, "tdx-flow")
    pcs = IntelPcs(rng)
    qe = QuotingEnclave(pcs, rng)
    module = TdxModule()
    return pcs, qe, module


@pytest.fixture(scope="module")
def snp_world():
    rng = SimRng(42, "snp-flow")
    keys = AmdKeyInfrastructure(rng)
    amd_sp = AmdSecureProcessor()
    return keys, amd_sp


def tdx_ctx(seed=1):
    return ExecContext(machine=xeon_gold_5515(), rng=SimRng(seed, "tdx-ctx"))


def snp_ctx(seed=1):
    return ExecContext(machine=epyc_9124(), rng=SimRng(seed, "snp-ctx"))


class TestTdxFlow:
    def test_quote_verifies(self, tdx_world):
        pcs, qe, module = tdx_world
        ctx = tdx_ctx()
        quote = generate_tdx_quote(module, qe, pcs, ctx, b"nonce-1")
        result = TdxVerifier(pcs).verify(quote, tdx_ctx(2),
                                         expected_report_data=b"nonce-1")
        assert result.accepted
        assert "chain_verified" in result.steps

    def test_wrong_nonce_rejected(self, tdx_world):
        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"nonce-a")
        with pytest.raises(QuoteVerificationError, match="report_data"):
            TdxVerifier(pcs).verify(quote, tdx_ctx(2),
                                    expected_report_data=b"nonce-b")

    def test_tampered_signature_rejected(self, tdx_world):
        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")
        bad = dataclasses.replace(quote, signature=bytes(len(quote.signature)))
        with pytest.raises(QuoteVerificationError, match="signature"):
            TdxVerifier(pcs).verify(bad, tdx_ctx(2))

    def test_tampered_measurement_rejected(self, tdx_world):
        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")
        bad = dataclasses.replace(quote, mrtd_hex="00" * 48)
        with pytest.raises(QuoteVerificationError, match="signature"):
            TdxVerifier(pcs).verify(bad, tdx_ctx(2))

    def test_outdated_firmware_rejected(self, tdx_world):
        """TCB check: quotes from old firmware fail verification."""
        pcs, qe, _ = tdx_world
        old_module = TdxModule(OLD_FIRMWARE)
        quote = generate_tdx_quote(old_module, qe, pcs, tdx_ctx(), b"n")
        with pytest.raises(QuoteVerificationError, match="TCB"):
            TdxVerifier(pcs).verify(quote, tdx_ctx(2))

    def test_truncated_chain_rejected(self, tdx_world):
        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")
        bad = dataclasses.replace(quote, cert_chain=quote.cert_chain[:2])
        with pytest.raises(QuoteVerificationError, match="chain"):
            TdxVerifier(pcs).verify(bad, tdx_ctx(2))

    def test_verification_makes_four_pcs_requests(self, tdx_world):
        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")
        before = len(pcs.request_log)
        TdxVerifier(pcs).verify(quote, tdx_ctx(2))
        assert len(pcs.request_log) - before == 4

    def test_verification_charges_network_time(self, tdx_world):
        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")
        ctx = tdx_ctx(2)
        TdxVerifier(pcs).verify(quote, ctx)
        network = ctx.ledger.get(CostCategory.NETWORK)
        crypto = ctx.ledger.get(CostCategory.CRYPTO)
        assert network > 0
        assert network > crypto  # the PCS round-trips dominate the check

    def test_quote_generation_dominated_by_crypto(self, tdx_world):
        pcs, qe, module = tdx_world
        ctx = tdx_ctx()
        generate_tdx_quote(module, qe, pcs, ctx, b"n")
        assert ctx.ledger.dominant() is CostCategory.CRYPTO
        assert ctx.ledger.get(CostCategory.NETWORK) == 0.0


class TestSnpFlow:
    def test_report_verifies(self, snp_world):
        keys, amd_sp = snp_world
        report = generate_snp_report(amd_sp, keys, snp_ctx(), b"nonce-1")
        result = SnpVerifier(keys).verify(report, snp_ctx(2),
                                          expected_report_data=b"nonce-1")
        assert result.accepted
        assert result.steps[:2] == ["device_certs_fetched", "chain_verified"]

    def test_wrong_nonce_rejected(self, snp_world):
        keys, amd_sp = snp_world
        report = generate_snp_report(amd_sp, keys, snp_ctx(), b"a")
        with pytest.raises(QuoteVerificationError, match="report_data"):
            SnpVerifier(keys).verify(report, snp_ctx(2),
                                     expected_report_data=b"b")

    def test_tampered_report_rejected(self, snp_world):
        keys, amd_sp = snp_world
        report = generate_snp_report(amd_sp, keys, snp_ctx(), b"n")
        bad = dataclasses.replace(report, measurement_hex="00" * 48)
        with pytest.raises(QuoteVerificationError, match="signature"):
            SnpVerifier(keys).verify(bad, snp_ctx(2))

    def test_wrong_chip_rejected(self, snp_world):
        keys, amd_sp = snp_world
        report = generate_snp_report(amd_sp, keys, snp_ctx(), b"n")
        bad = dataclasses.replace(report, chip_id="some-other-chip")
        with pytest.raises(QuoteVerificationError, match="chip"):
            SnpVerifier(keys).verify(bad, snp_ctx(2))

    def test_mismatched_key_infrastructure_rejected(self, snp_world):
        _, amd_sp = snp_world
        foreign = AmdKeyInfrastructure(SimRng(7, "foreign"), chip_id="other-chip")
        with pytest.raises(AttestationError, match="chip"):
            generate_snp_report(amd_sp, foreign, snp_ctx(), b"n")

    def test_verification_uses_no_network(self, snp_world):
        keys, amd_sp = snp_world
        report = generate_snp_report(amd_sp, keys, snp_ctx(), b"n")
        ctx = snp_ctx(2)
        SnpVerifier(keys).verify(report, ctx)
        assert ctx.ledger.get(CostCategory.NETWORK) == 0.0


class TestFig5Shape:
    """The latency asymmetries Fig. 5 reports."""

    def test_snp_attest_faster_than_tdx_attest(self, tdx_world, snp_world):
        pcs, qe, module = tdx_world
        keys, amd_sp = snp_world
        tdx_ctx_ = tdx_ctx()
        generate_tdx_quote(module, qe, pcs, tdx_ctx_, b"n")
        snp_ctx_ = snp_ctx()
        generate_snp_report(amd_sp, keys, snp_ctx_, b"n")
        assert snp_ctx_.ledger.total() < tdx_ctx_.ledger.total() / 10

    def test_snp_check_faster_than_tdx_check(self, tdx_world, snp_world):
        pcs, qe, module = tdx_world
        keys, amd_sp = snp_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")
        report = generate_snp_report(amd_sp, keys, snp_ctx(), b"n")
        tdx_result = TdxVerifier(pcs).verify(quote, tdx_ctx(2))
        snp_result = SnpVerifier(keys).verify(report, snp_ctx(2))
        assert snp_result.elapsed_ns < tdx_result.elapsed_ns / 10


class TestVerifierRetries:
    """Transient-fault retries with backoff charged to the ledger."""

    def _timeout_plan(self, seed):
        from repro.sim.faults import FaultContext, FaultPlan

        return FaultContext(
            FaultPlan.parse(f"pcs-timeout=0.25,seed={seed}"), "req")

    def test_pcs_timeout_retry_charges_network(self, tdx_world):
        from repro.sim.faults import RetryPolicy

        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")

        clean = tdx_ctx(2)
        TdxVerifier(pcs).verify(quote, clean, expected_report_data=b"n")
        clean_network = clean.ledger.breakdown()[CostCategory.NETWORK]

        recovered = 0
        for seed in range(30):
            ctx = tdx_ctx(2)
            ctx.faults = self._timeout_plan(seed)
            mark = len(pcs.request_log)
            try:
                result = TdxVerifier(
                    pcs, retry_policy=RetryPolicy()).verify(
                    quote, ctx, expected_report_data=b"n")
            except AttestationError:
                continue
            timeouts = sum(1 for entry in pcs.request_log[mark:]
                           if entry.endswith("!timeout"))
            if not timeouts:
                continue
            recovered += 1
            assert result.accepted
            # timed-out fetches + exponential backoff both cost
            # network time, so the ledger must exceed the clean run
            network = ctx.ledger.breakdown()[CostCategory.NETWORK]
            assert network > clean_network
            # ctx.faults is restored after the verifier's scoped swaps
            assert ctx.faults.scope == "req"
        assert recovered > 0, "no seed recovered after a timeout"

    def test_certain_timeouts_exhaust_retries(self, tdx_world):
        from repro.errors import CollateralTimeoutError
        from repro.sim.faults import FaultContext, FaultPlan

        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")
        ctx = tdx_ctx(2)
        ctx.faults = FaultContext(FaultPlan.parse("pcs-timeout=1"), "req")
        with pytest.raises(CollateralTimeoutError):
            TdxVerifier(pcs).verify(quote, ctx, expected_report_data=b"n")

    def test_transient_retry_is_deterministic(self, tdx_world):
        from repro.sim.faults import FaultContext, FaultPlan

        pcs, qe, module = tdx_world
        quote = generate_tdx_quote(module, qe, pcs, tdx_ctx(), b"n")

        def run():
            # note: network charges draw from the PCS's own stateful
            # rng, so only the fault decisions and outcome are compared
            ctx = tdx_ctx(2)
            faults = FaultContext(
                FaultPlan.parse("attest-transient=0.4,seed=5"), "req")
            ctx.faults = faults
            try:
                TdxVerifier(pcs).verify(quote, ctx,
                                        expected_report_data=b"n")
                outcome = "accepted"
            except AttestationError:
                outcome = "exhausted"
            return outcome, tuple(faults.injected)

        first = run()
        assert first == run()
        assert first[0] in ("accepted", "exhausted")

    def test_snp_transient_retry_charges_crypto(self, snp_world):
        from repro.sim.faults import FaultContext, FaultPlan

        keys, amd_sp = snp_world
        report = generate_snp_report(amd_sp, keys, snp_ctx(), b"n")

        clean = snp_ctx(2)
        SnpVerifier(keys).verify(report, clean, expected_report_data=b"n")
        clean_crypto = clean.ledger.breakdown()[CostCategory.CRYPTO]

        recovered = 0
        for seed in range(40):
            ctx = snp_ctx(2)
            faults = FaultContext(
                FaultPlan.parse(f"attest-transient=0.3,seed={seed}"), "req")
            ctx.faults = faults
            try:
                result = SnpVerifier(keys).verify(
                    report, ctx, expected_report_data=b"n")
            except AttestationError:
                continue
            if not faults.injected:
                continue
            recovered += 1
            assert result.accepted
            crypto = ctx.ledger.breakdown()[CostCategory.CRYPTO]
            assert crypto > clean_crypto
        assert recovered > 0, "no seed recovered after a transient"
