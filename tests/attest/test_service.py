"""The verifier service: cache tiers, sessions, batch queues.

Covers the tentpole mechanisms end to end: host → CDN → origin
fallback order (with the stale pseudo-tier under origin failure),
session resumption and its three invalidation causes (TCB rotation,
CRL rotation, TTL), and the deterministic bounded-concurrency batch
queue.
"""

import math

import pytest

from repro.attest import (
    AmdKeyInfrastructure,
    IntelPcs,
    LaunchAttestor,
    QuotingEnclave,
    SessionCache,
    SnpVerifier,
    TdxVerifier,
    TieredCollateral,
    VerificationJob,
    VerifierService,
    generate_snp_report,
    generate_tdx_quote,
)
from repro.attest.pcs import FreshnessPolicy
from repro.attest.tiers import TierStore
from repro.errors import AttestationError, CollateralTimeoutError
from repro.guestos.context import ExecContext
from repro.hw.machine import xeon_gold_5515
from repro.sim.faults import CircuitBreaker, FaultContext, FaultPlan
from repro.sim.rng import SimRng
from repro.tee.tdx import TdxModule

ALWAYS_TIMEOUT = FaultPlan.parse("pcs-timeout=1.0,seed=1")
NEVER_COOLS_NS = 1e18


def make_ctx(seed=1, faults=None):
    return ExecContext(machine=xeon_gold_5515(),
                       rng=SimRng(seed, "service-ctx"), faults=faults)


def make_tdx_service(seed=9, cdn=None, concurrency=2, breaker=None,
                     freshness=None):
    infra = SimRng(seed, "svc-infra")
    pcs = IntelPcs(infra, breaker=breaker, freshness=freshness)
    collateral = TieredCollateral(pcs, cdn=cdn, freshness=freshness)
    service = VerifierService(
        "tdx-test", TdxVerifier(pcs, collateral=collateral),
        collateral=collateral, concurrency=concurrency)
    qe = QuotingEnclave(pcs, infra)
    module = TdxModule()

    def job(measurement, ctx, arrival=0.0, wave=0):
        nonce = ctx.rng.child(f"nonce/{wave}/{measurement}").bytes(16)
        return VerificationJob(
            measurement=measurement, nonce=nonce, arrival_ns=arrival,
            build_evidence=lambda c, n=nonce, m=measurement:
                generate_tdx_quote(module, qe, pcs, c, n, td_identity=m))

    return service, pcs, job


class TestTieredCollateral:
    def test_fallback_order_and_charges(self):
        """origin on the cold path, host tier after, CDN for a cold
        host behind a warm cluster — each strictly cheaper."""
        cdn = TierStore("cluster")
        service_a, pcs, job = make_tdx_service(cdn=cdn)
        ctx = make_ctx(1)

        before = ctx.ledger.total()
        verdict_origin = service_a.verify_launch(job("m1", ctx), ctx)
        assert verdict_origin.tier == "origin"

        verdict_host = service_a.verify_launch(job("m2", ctx), ctx)
        assert verdict_host.tier == "host"
        assert verdict_host.verify_ns < verdict_origin.verify_ns

        # a second host shares the CDN tier but has a cold host tier
        collateral_b = TieredCollateral(pcs, cdn=cdn)
        service_b = VerifierService(
            "tdx-b", TdxVerifier(pcs, collateral=collateral_b),
            collateral=collateral_b)
        verdict_cdn = service_b.verify_launch(job("m1", ctx, wave=1), ctx)
        assert verdict_cdn.tier == "cdn"
        assert verdict_cdn.verify_ns < verdict_origin.verify_ns

        assert service_a.collateral.stats["origin.fetches"] == 4
        assert service_a.collateral.stats["host.hits"] == 4
        assert collateral_b.stats["cdn.hits"] == 4
        assert ctx.ledger.total() > before

    def test_counters_reconcile_with_request_log(self):
        service, pcs, job = make_tdx_service(seed=10)
        ctx = make_ctx(2)
        service.verify_launch(job("m1", ctx), ctx)
        service.verify_launch(job("m2", ctx), ctx)
        clean = sum(1 for entry in pcs.request_log if "!" not in entry)
        assert service.collateral.stats["origin.fetches"] == clean

    def test_origin_failure_serves_stale_tier(self):
        # the PCS itself gives no grace (its cache rejects once past
        # TTL), while the service tiers accept a long stale window:
        # with the circuit open, the origin fails hard and the tiers'
        # stale copies are the explicit last resort
        strict = FreshnessPolicy(ttl_ns=1_000.0, max_stale_ns=0.0)
        lenient = FreshnessPolicy(ttl_ns=1_000.0, max_stale_ns=1e12)
        breaker = CircuitBreaker("pcs", failure_threshold=1,
                                 cooldown_ns=NEVER_COOLS_NS)
        infra = SimRng(11, "svc-infra")
        pcs = IntelPcs(infra, breaker=breaker, freshness=strict)
        collateral = TieredCollateral(pcs, freshness=lenient)
        service = VerifierService(
            "tdx-test", TdxVerifier(pcs, collateral=collateral),
            collateral=collateral, sessions=SessionCache(ttl_ns=1.0))
        qe = QuotingEnclave(pcs, infra)
        module = TdxModule()

        def job(measurement, ctx, wave=0):
            nonce = ctx.rng.child(f"nonce/{wave}/{measurement}").bytes(16)
            return VerificationJob(
                measurement=measurement, nonce=nonce,
                build_evidence=lambda c, n=nonce, m=measurement:
                    generate_tdx_quote(module, qe, pcs, c, n,
                                       td_identity=m))

        ctx = make_ctx(3)
        service.verify_launch(job("m1", ctx), ctx)
        # age every cached copy past its TTL, then kill the origin
        ctx.charge_network(2_000.0)
        with pytest.raises(CollateralTimeoutError):
            pcs.fetch_tcb_info(make_ctx(
                4, faults=FaultContext(ALWAYS_TIMEOUT, "kill")))
        verdict = service.verify_launch(job("m1", ctx, wave=1), ctx)
        assert verdict.tier == "stale"
        # only the TTL documents (TCB info, QE identity) aged out; the
        # CRLs carry a 7-day next_update and are still served fresh
        assert service.collateral.stats["stale.served"] == 2

    def test_purge_forces_origin_refetch(self):
        service, pcs, job = make_tdx_service(seed=12)
        ctx = make_ctx(5)
        service.verify_launch(job("m1", ctx), ctx)
        service.rotate_collateral()
        verdict = service.verify_launch(job("m1", ctx, wave=1), ctx)
        assert not verdict.resumed          # session ended by rotation
        assert verdict.tier == "origin"     # tiers purged
        assert service.stats["rotations"] == 1


class TestSessionCache:
    def test_store_then_resume(self):
        cache = SessionCache(ttl_ns=1_000.0)
        cache.store("m", "svn-1", crl_expiry_ns=5_000.0, now_ns=0.0)
        session = cache.lookup("m", "svn-1", now_ns=500.0)
        assert session is not None and session.resumed == 1
        assert cache.stats["resumed"] == 1

    def test_tcb_rotation_invalidates(self):
        cache = SessionCache(ttl_ns=1e18)
        cache.store("m", "svn-1", crl_expiry_ns=math.inf, now_ns=0.0)
        assert cache.lookup("m", "svn-2", now_ns=1.0) is None
        assert cache.stats["invalidated.tcb"] == 1
        # the invalid session is gone, not retried
        assert cache.lookup("m", "svn-1", now_ns=1.0) is None

    def test_crl_expiry_is_strict_less_than(self):
        cache = SessionCache(ttl_ns=1e18)
        cache.store("a", None, crl_expiry_ns=1_000.0, now_ns=0.0)
        cache.store("b", None, crl_expiry_ns=1_000.0, now_ns=0.0)
        assert cache.lookup("a", None, now_ns=999.0) is not None
        # now == next_update: stale, same boundary the CRL itself uses
        assert cache.lookup("b", None, now_ns=1_000.0) is None
        assert cache.stats["invalidated.crl"] == 1

    def test_ttl_expiry(self):
        cache = SessionCache(ttl_ns=1_000.0)
        cache.store("m", None, crl_expiry_ns=math.inf, now_ns=0.0)
        assert cache.lookup("m", None, now_ns=1_000.0) is None
        assert cache.stats["invalidated.expired"] == 1

    def test_capacity_bound_evicts_oldest(self):
        cache = SessionCache(capacity=2)
        for name in ("a", "b", "c"):
            cache.store(name, None, crl_expiry_ns=math.inf, now_ns=0.0)
        assert len(cache) == 2
        assert cache.stats["evicted"] == 1
        assert cache.lookup("a", None, now_ns=1.0) is None
        assert cache.lookup("c", None, now_ns=1.0) is not None

    def test_invalid_params_rejected(self):
        with pytest.raises(AttestationError):
            SessionCache(ttl_ns=0.0)
        with pytest.raises(AttestationError):
            SessionCache(capacity=0)


class TestVerifierService:
    def test_session_resumption_skips_verification(self):
        service, _, job = make_tdx_service(seed=20)
        ctx = make_ctx(6)
        first = service.verify_launch(job("m", ctx), ctx)
        second = service.verify_launch(job("m", ctx, wave=1), ctx)
        assert not first.resumed and second.resumed
        assert second.tier == "session"
        assert second.verify_ns < first.verify_ns / 100
        assert service.stats == {"launches": 2, "verified": 1,
                                 "resumed": 1, "rotations": 0}

    def test_crl_rotation_invalidates_sessions(self):
        service, _, job = make_tdx_service(seed=21)
        ctx = make_ctx(7)
        service.verify_launch(job("m", ctx), ctx)
        # advance past the pinned CRL next_update (~7 virtual days)
        ctx.charge_network(8 * 24 * 3600 * 1e9)
        verdict = service.verify_launch(job("m", ctx, wave=1), ctx)
        assert not verdict.resumed
        assert service.sessions.stats["invalidated.crl"] == 1

    def test_tcb_recovery_invalidates_sessions(self):
        from repro.errors import QuoteVerificationError

        service, pcs, job = make_tdx_service(seed=22)
        ctx = make_ctx(8)
        service.verify_launch(job("m", ctx), ctx)
        # the platform recovers to a newer TCB level; collateral tiers
        # are flushed but sessions deliberately left alone — the next
        # launch must catch the mismatch by itself: the session does
        # NOT resume, and the full re-verification rejects the quote
        # minted under the old TCB
        pcs.tcb_svn = "TDX_9.9.99.99.999"
        service.collateral.purge()
        with pytest.raises(QuoteVerificationError, match="TCB"):
            service.verify_launch(job("m", ctx, wave=1), ctx)
        assert service.sessions.stats["invalidated.tcb"] == 1

    def test_batch_queue_waits_and_backlog(self):
        service, _, job = make_tdx_service(seed=23, concurrency=1)
        ctx = make_ctx(9)
        jobs = [job(f"m{i}", ctx, arrival=float(i)) for i in range(3)]
        verdicts = service.process_batch(jobs, ctx)
        assert verdicts[0].queue_wait_ns == 0.0
        # one slot: each later job waits for its predecessor
        assert verdicts[1].queue_wait_ns > 0
        assert verdicts[2].queue_wait_ns > verdicts[1].queue_wait_ns
        assert service.queue_depth_peak >= 1

    def test_batch_requires_sorted_arrivals(self):
        service, _, job = make_tdx_service(seed=24)
        ctx = make_ctx(10)
        jobs = [job("a", ctx, arrival=5.0), job("b", ctx, arrival=1.0)]
        with pytest.raises(AttestationError, match="sorted"):
            service.process_batch(jobs, ctx)

    def test_batches_are_deterministic(self):
        outputs = []
        for _ in range(2):
            service, _, job = make_tdx_service(seed=25)
            ctx = make_ctx(11)
            jobs = [job(f"m{i}", ctx, arrival=float(i)) for i in range(3)]
            outputs.append([
                (v.measurement, v.tier, v.queue_wait_ns, v.verify_ns)
                for v in service.process_batch(jobs, ctx)])
        assert outputs[0] == outputs[1]

    def test_concurrency_validated(self):
        with pytest.raises(AttestationError):
            VerifierService("x", verifier=None, concurrency=0)

    def test_snp_service_is_local(self):
        infra = SimRng(30, "snp-infra")
        keys = AmdKeyInfrastructure(infra)
        from repro.tee.sevsnp import AmdSecureProcessor

        amd_sp = AmdSecureProcessor()
        service = VerifierService("snp-test", SnpVerifier(keys))
        ctx = make_ctx(12)
        nonce = ctx.rng.child("nonce").bytes(16)
        job = VerificationJob(
            measurement="m", nonce=nonce,
            build_evidence=lambda c: generate_snp_report(
                amd_sp, keys, c, nonce, guest_identity="m"))
        first = service.verify_launch(job, ctx)
        assert first.tier == "local" and first.accepted
        second = service.verify_launch(job, ctx)
        assert second.resumed and second.tier == "session"


class TestLaunchAttestor:
    def test_unsupported_platform_rejected(self):
        with pytest.raises(AttestationError, match="cca|supported"):
            LaunchAttestor("cca")

    def test_admission_then_resumption(self):
        attestor = LaunchAttestor("tdx", seed=3)
        cold = attestor.admit("vm-0")
        warm = attestor.admit("vm-0")
        other = attestor.admit("vm-1")
        assert not cold.verdict.resumed and cold.verdict.tier == "origin"
        assert warm.verdict.resumed
        assert warm.latency_ns < cold.latency_ns / 100
        assert not other.verdict.resumed and other.verdict.tier == "host"

    def test_admissions_are_deterministic(self):
        runs = []
        for _ in range(2):
            attestor = LaunchAttestor("sev-snp", seed=5)
            runs.append([attestor.admit(f"vm-{i}").latency_ns
                         for i in range(2)])
        assert runs[0] == runs[1]
