"""Tests for certificates, chains and CRLs."""

import pytest

from repro.attest.certs import (
    Certificate,
    CertificateAuthority,
    verify_chain,
)
from repro.attest.crypto import generate_keypair
from repro.errors import CertificateError, CrlError
from repro.sim.rng import SimRng


@pytest.fixture(scope="module")
def pki():
    """A root CA, an intermediate, and a leaf certificate."""
    rng = SimRng(123, "pki-tests")
    root = CertificateAuthority("Root", rng)
    intermediate = CertificateAuthority("Intermediate", rng, issuer_ca=root)
    leaf_key = generate_keypair(rng.child("leaf"))
    leaf = intermediate.issue("Leaf", leaf_key.public)
    return root, intermediate, leaf, leaf_key


class TestIssuance:
    def test_root_is_self_signed(self, pki):
        root, *_ = pki
        assert root.certificate.is_self_signed()
        assert root.certificate.verify_signature(root.certificate.public_key)

    def test_intermediate_signed_by_root(self, pki):
        root, intermediate, *_ = pki
        assert intermediate.certificate.issuer == "Root"
        assert intermediate.certificate.verify_signature(
            root.certificate.public_key
        )

    def test_leaf_signed_by_intermediate(self, pki):
        _, intermediate, leaf, _ = pki
        assert leaf.verify_signature(intermediate.certificate.public_key)

    def test_serials_increment(self, pki):
        root, *_ = pki
        rng = SimRng(5, "serial")
        key = generate_keypair(rng)
        a = root.issue("A", key.public)
        b = root.issue("B", key.public)
        assert b.serial == a.serial + 1

    def test_extensions_carried_and_signed(self, pki):
        root, *_ = pki
        key = generate_keypair(SimRng(6, "ext"))
        cert = root.issue("X", key.public, extensions={"fmspc": "AABB"})
        assert cert.extensions["fmspc"] == "AABB"
        assert cert.verify_signature(root.certificate.public_key)


class TestChainVerification:
    def test_valid_chain_passes(self, pki):
        root, intermediate, leaf, _ = pki
        verify_chain([leaf, intermediate.certificate], root.certificate)

    def test_empty_chain_rejected(self, pki):
        root, *_ = pki
        with pytest.raises(CertificateError):
            verify_chain([], root.certificate)

    def test_wrong_order_rejected(self, pki):
        root, intermediate, leaf, _ = pki
        with pytest.raises(CertificateError):
            verify_chain([intermediate.certificate, leaf], root.certificate)

    def test_missing_intermediate_rejected(self, pki):
        root, _, leaf, _ = pki
        with pytest.raises(CertificateError):
            verify_chain([leaf], root.certificate)

    def test_forged_leaf_rejected(self, pki):
        root, intermediate, leaf, _ = pki
        forged = Certificate(
            subject="Leaf",
            issuer="Intermediate",
            serial=leaf.serial,
            public_key=generate_keypair(SimRng(66, "attacker")).public,
            not_before=leaf.not_before,
            not_after=leaf.not_after,
            signature=leaf.signature,
        )
        with pytest.raises(CertificateError):
            verify_chain([forged, intermediate.certificate], root.certificate)

    def test_untrusted_root_rejected(self, pki):
        _, intermediate, leaf, _ = pki
        rogue = CertificateAuthority("Rogue", SimRng(7, "rogue"))
        with pytest.raises(CertificateError):
            verify_chain([leaf, intermediate.certificate], rogue.certificate)

    def test_expired_certificate_rejected(self, pki):
        root, intermediate, leaf, _ = pki
        with pytest.raises(CertificateError):
            verify_chain(
                [leaf, intermediate.certificate],
                root.certificate,
                now_ns=leaf.not_after * 2,
            )

    def test_non_self_signed_root_rejected(self, pki):
        root, intermediate, leaf, _ = pki
        # presenting the intermediate as a "root" must fail
        with pytest.raises(CertificateError):
            verify_chain([leaf], intermediate.certificate)


class TestRevocation:
    def test_revoked_leaf_rejected(self):
        rng = SimRng(9, "revocation")
        root = CertificateAuthority("Root", rng)
        leaf = root.issue("Leaf", generate_keypair(rng.child("k")).public)
        root.revoke(leaf.serial)
        crl = root.crl(now_ns=1.0)
        with pytest.raises(CrlError):
            verify_chain([leaf], root.certificate, now_ns=2.0,
                         crls={"Root": crl})

    def test_unrevoked_leaf_passes_with_crl(self):
        rng = SimRng(10, "revocation2")
        root = CertificateAuthority("Root", rng)
        leaf = root.issue("Leaf", generate_keypair(rng.child("k")).public)
        crl = root.crl(now_ns=1.0)
        verify_chain([leaf], root.certificate, now_ns=2.0, crls={"Root": crl})

    def test_stale_crl_rejected(self):
        rng = SimRng(11, "revocation3")
        root = CertificateAuthority("Root", rng)
        leaf = root.issue("Leaf", generate_keypair(rng.child("k")).public)
        crl = root.crl(now_ns=0.0, validity_ns=10.0)
        with pytest.raises(CrlError):
            verify_chain([leaf], root.certificate, now_ns=100.0,
                         crls={"Root": crl})

    def test_crl_with_forged_signature_rejected(self):
        rng = SimRng(12, "revocation4")
        root = CertificateAuthority("Root", rng)
        rogue = CertificateAuthority("Root", rng.child("rogue"))  # same name!
        leaf = root.issue("Leaf", generate_keypair(rng.child("k")).public)
        forged_crl = rogue.crl(now_ns=1.0)
        with pytest.raises(CrlError):
            verify_chain([leaf], root.certificate, now_ns=2.0,
                         crls={"Root": forged_crl})

    def test_crl_is_revoked_helper(self):
        rng = SimRng(13, "revocation5")
        root = CertificateAuthority("Root", rng)
        root.revoke(5)
        crl = root.crl()
        assert crl.is_revoked(5)
        assert not crl.is_revoked(6)
