"""Tests for the pure-Python RSA implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.attest.crypto import (
    RsaPublicKey,
    _is_probable_prime,
    _generate_prime,
    generate_keypair,
)
from repro.errors import AttestationError
from repro.sim.rng import SimRng


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(SimRng(42, "crypto-tests"), bits=1024)


class TestPrimality:
    def test_known_primes(self):
        rng = SimRng(1)
        for p in (2, 3, 5, 7, 104729, 2**31 - 1):
            assert _is_probable_prime(p, rng), p

    def test_known_composites(self):
        rng = SimRng(1)
        for c in (0, 1, 4, 9, 561, 104730, 2**32):
            assert not _is_probable_prime(c, rng), c

    def test_carmichael_numbers_rejected(self):
        rng = SimRng(1)
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not _is_probable_prime(carmichael, rng), carmichael

    def test_generated_prime_has_exact_bits(self):
        prime = _generate_prime(128, SimRng(2))
        assert prime.bit_length() == 128
        assert prime % 2 == 1

    def test_tiny_prime_size_rejected(self):
        with pytest.raises(AttestationError):
            _generate_prime(4, SimRng(1))


class TestKeyGeneration:
    def test_deterministic_for_seed(self):
        a = generate_keypair(SimRng(7, "x"), bits=768)
        b = generate_keypair(SimRng(7, "x"), bits=768)
        assert a.public.n == b.public.n
        assert a.d == b.d

    def test_different_seeds_different_keys(self):
        a = generate_keypair(SimRng(7, "x"), bits=768)
        b = generate_keypair(SimRng(8, "x"), bits=768)
        assert a.public.n != b.public.n

    def test_modulus_size(self, keypair):
        assert keypair.public.bits == 1024
        assert keypair.public.byte_length == 128

    def test_rejects_weak_keys(self):
        with pytest.raises(AttestationError):
            generate_keypair(SimRng(1), bits=256)

    def test_fingerprint_stable_and_distinct(self):
        a = generate_keypair(SimRng(1, "fp"), bits=768)
        b = generate_keypair(SimRng(2, "fp"), bits=768)
        assert a.public.fingerprint() == a.public.fingerprint()
        assert a.public.fingerprint() != b.public.fingerprint()


class TestSignatures:
    def test_sign_verify_round_trip(self, keypair):
        message = b"attestation evidence"
        signature = keypair.sign(message)
        assert keypair.public.verify(message, signature)

    def test_tampered_message_rejected(self, keypair):
        signature = keypair.sign(b"original")
        assert not keypair.public.verify(b"tampered", signature)

    def test_tampered_signature_rejected(self, keypair):
        signature = bytearray(keypair.sign(b"msg"))
        signature[10] ^= 0xFF
        assert not keypair.public.verify(b"msg", bytes(signature))

    def test_wrong_key_rejected(self, keypair):
        other = generate_keypair(SimRng(99, "other"), bits=1024)
        signature = keypair.sign(b"msg")
        assert not other.public.verify(b"msg", signature)

    def test_wrong_length_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"msg", b"short")

    def test_signature_of_empty_message(self, keypair):
        signature = keypair.sign(b"")
        assert keypair.public.verify(b"", signature)

    def test_oversized_signature_int_rejected(self, keypair):
        too_big = (keypair.public.n + 1).to_bytes(
            keypair.public.byte_length + 1, "big"
        )[-keypair.public.byte_length:]
        # construct a value >= n of correct byte length
        value = keypair.public.n | (1 << (keypair.public.bits - 1))
        raw = value.to_bytes(keypair.public.byte_length, "big")
        assert not keypair.public.verify(b"msg", raw)
        assert not keypair.public.verify(b"msg", too_big)

    @settings(max_examples=15, deadline=None)
    @given(message=st.binary(max_size=200))
    def test_round_trip_property(self, keypair, message):
        """Property: every signed message verifies with the right key."""
        assert keypair.public.verify(message, keypair.sign(message))

    def test_signatures_differ_across_messages(self, keypair):
        assert keypair.sign(b"a") != keypair.sign(b"b")

    def test_public_key_equality(self):
        key = RsaPublicKey(n=91, e=5)
        assert key == RsaPublicKey(n=91, e=5)
