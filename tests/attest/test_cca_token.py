"""Tests for the CCA realm-token path (FVP today, hardware later)."""

import dataclasses

import pytest

from repro.attest.cca_token import (
    RealmToken,
    RealmTokenVerifier,
    request_realm_token,
)
from repro.attest.crypto import generate_keypair
from repro.errors import QuoteVerificationError, TeeUnsupportedError
from repro.guestos.context import ExecContext
from repro.hw.machine import fvp_model
from repro.sim.rng import SimRng
from repro.tee.cca import RealmManagementMonitor


@pytest.fixture
def realm_world():
    rmm = RealmManagementMonitor()
    realm, _ = rmm.rmi_realm_create("guest-realm")
    rmm.rmi_realm_activate(realm.rid)
    return rmm, realm


def make_ctx(seed=1):
    return ExecContext(machine=fvp_model(), rng=SimRng(seed, "cca-token"))


@pytest.fixture
def cpak():
    return generate_keypair(SimRng(33, "cpak"))


class TestFvpPath:
    """What works today: unsigned tokens, structural checks only."""

    def test_token_unsigned_on_fvp(self, realm_world):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"challenge")
        assert not token.signed
        assert token.signature == b""

    def test_structural_checks_pass_but_crypto_unsupported(self, realm_world):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"challenge")
        verifier = RealmTokenVerifier(expected_rim=realm.measurement)
        with pytest.raises(TeeUnsupportedError, match="FVP"):
            verifier.verify(token, make_ctx(2), b"challenge")

    def test_wrong_measurement_rejected_before_signature(self, realm_world):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"c")
        verifier = RealmTokenVerifier(expected_rim=b"\x00" * 48)
        with pytest.raises(QuoteVerificationError, match="measurement"):
            verifier.verify(token, make_ctx(2), b"c")

    def test_wrong_challenge_rejected(self, realm_world):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"alpha")
        verifier = RealmTokenVerifier(expected_rim=realm.measurement)
        with pytest.raises(QuoteVerificationError, match="challenge"):
            verifier.verify(token, make_ctx(2), b"beta")

    def test_request_charges_rsi_transition(self, realm_world):
        rmm, realm = realm_world
        ctx = make_ctx()
        request_realm_token(rmm, realm, ctx, b"c")
        assert ctx.machine.counters.vm_transitions == 1


class TestHardwarePath:
    """The future flow: a CPAK signs, the owner verifies fully."""

    def test_signed_token_verifies(self, realm_world, cpak):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"nonce",
                                    cpak=cpak)
        assert token.signed
        verifier = RealmTokenVerifier(expected_rim=realm.measurement,
                                      cpak_public=cpak.public)
        assert verifier.verify(token, make_ctx(2), b"nonce")

    def test_tampered_measurement_rejected(self, realm_world, cpak):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"n", cpak=cpak)
        bad = dataclasses.replace(
            token, realm_initial_measurement_hex="00" * 48
        )
        verifier = RealmTokenVerifier(expected_rim=realm.measurement,
                                      cpak_public=cpak.public)
        with pytest.raises(QuoteVerificationError):
            verifier.verify(bad, make_ctx(2), b"n")

    def test_forged_signature_rejected(self, realm_world, cpak):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"n", cpak=cpak)
        forged = dataclasses.replace(
            token, signature=bytes(len(token.signature))
        )
        verifier = RealmTokenVerifier(expected_rim=realm.measurement,
                                      cpak_public=cpak.public)
        with pytest.raises(QuoteVerificationError, match="signature"):
            verifier.verify(forged, make_ctx(2), b"n")

    def test_signed_token_without_pinned_cpak_unsupported(self, realm_world,
                                                          cpak):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"n", cpak=cpak)
        verifier = RealmTokenVerifier(expected_rim=realm.measurement)
        with pytest.raises(TeeUnsupportedError, match="CPAK"):
            verifier.verify(token, make_ctx(2), b"n")

    def test_wrong_cpak_rejected(self, realm_world, cpak):
        rmm, realm = realm_world
        token = request_realm_token(rmm, realm, make_ctx(), b"n", cpak=cpak)
        other = generate_keypair(SimRng(44, "other-cpak"))
        verifier = RealmTokenVerifier(expected_rim=realm.measurement,
                                      cpak_public=other.public)
        with pytest.raises(QuoteVerificationError):
            verifier.verify(token, make_ctx(2), b"n")
