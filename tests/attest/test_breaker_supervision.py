"""Integration tests: the circuit breaker supervising collateral fetches.

The PCS-attached breaker gives per-fetch granularity with a
cached-collateral fallback; the verifier-attached breaker gives
per-attempt fail-fast.  Both are exercised here against an
always-firing ``pcs-timeout`` fault plan.
"""

import pytest

from repro.attest import IntelPcs, QuotingEnclave, TdxVerifier, generate_tdx_quote
from repro.errors import CollateralTimeoutError
from repro.guestos.context import ExecContext
from repro.hw.machine import xeon_gold_5515
from repro.sim.faults import (
    BreakerState,
    CircuitBreaker,
    FaultContext,
    FaultPlan,
)
from repro.sim.rng import SimRng
from repro.tee.tdx import TdxModule

ALWAYS_TIMEOUT = FaultPlan.parse("pcs-timeout=1.0,seed=1")

#: a cooldown far beyond any trial's virtual time: once open, stays open
NEVER_COOLS_NS = 1e18


def make_ctx(seed=1, faults=None):
    return ExecContext(machine=xeon_gold_5515(),
                       rng=SimRng(seed, "breaker-ctx"), faults=faults)


def faulted_ctx(seed=2):
    return make_ctx(seed, faults=FaultContext(ALWAYS_TIMEOUT, "test"))


class TestPcsBreaker:
    def test_repeated_timeouts_trip_and_serve_cached_collateral(self):
        breaker = CircuitBreaker("pcs", failure_threshold=3,
                                 cooldown_ns=NEVER_COOLS_NS)
        pcs = IntelPcs(SimRng(42, "pcs"), breaker=breaker)
        warm = pcs.fetch_tcb_info(make_ctx(1))   # seeds the cache
        ctx = faulted_ctx()
        for _ in range(3):
            with pytest.raises(CollateralTimeoutError, match="timed out"):
                pcs.fetch_tcb_info(ctx)
        assert breaker.state is BreakerState.OPEN
        before = ctx.ledger.total()
        served = pcs.fetch_tcb_info(ctx)
        # short-circuit: the last good document, zero network charge
        assert served == warm
        assert ctx.ledger.total() == before
        assert pcs.request_log[-1].endswith("!cached")
        assert breaker.shorted == 1

    def test_open_circuit_with_cold_cache_fails_fast(self):
        breaker = CircuitBreaker("pcs", failure_threshold=1,
                                 cooldown_ns=NEVER_COOLS_NS)
        pcs = IntelPcs(SimRng(43, "pcs"), breaker=breaker)
        ctx = faulted_ctx()
        with pytest.raises(CollateralTimeoutError, match="timed out"):
            pcs.fetch_tcb_info(ctx)
        # a *different* endpoint, never fetched successfully: no
        # fallback document exists, so the fetch fails immediately
        before = ctx.ledger.total()
        with pytest.raises(CollateralTimeoutError, match="circuit open"):
            pcs.fetch_qe_identity(ctx)
        assert ctx.ledger.total() == before
        assert pcs.request_log[-1].endswith("!open")

    def test_healthy_breaker_leaves_behaviour_identical(self):
        """With no failures the supervised PCS is byte-for-byte the
        plain one: same documents, same request log, same charges."""
        plain = IntelPcs(SimRng(7, "pcs"))
        supervised = IntelPcs(SimRng(7, "pcs"),
                              breaker=CircuitBreaker("pcs"))
        ctx_a, ctx_b = make_ctx(5), make_ctx(5)
        docs_a = [plain.fetch_tcb_info(ctx_a),
                  plain.fetch_qe_identity(ctx_a)]
        docs_b = [supervised.fetch_tcb_info(ctx_b),
                  supervised.fetch_qe_identity(ctx_b)]
        assert docs_a == docs_b
        assert plain.request_log == supervised.request_log
        assert ctx_a.ledger.total() == ctx_b.ledger.total()
        assert supervised.breaker.state is BreakerState.CLOSED

    def test_probe_success_refreshes_cache_and_recloses(self):
        breaker = CircuitBreaker("pcs", failure_threshold=1,
                                 cooldown_ns=100.0, jitter=0.0)
        pcs = IntelPcs(SimRng(44, "pcs"), breaker=breaker)
        with pytest.raises(CollateralTimeoutError):
            pcs.fetch_tcb_info(faulted_ctx())
        assert breaker.state is BreakerState.OPEN
        # a fresh healthy context restarts virtual time near zero: the
        # breaker re-arms its cooldown from the new timeline (clock
        # regression), so the first call still short-circuits ...
        healthy = make_ctx(6)
        with pytest.raises(CollateralTimeoutError, match="circuit open"):
            pcs.fetch_tcb_info(healthy)
        # ... and once the re-armed cooldown elapses, the half-open
        # probe succeeds, closing the circuit and refreshing the cache
        healthy.charge_network(200.0)   # advance past the cooldown
        doc = pcs.fetch_tcb_info(healthy)
        assert breaker.state is BreakerState.CLOSED
        assert pcs.collateral_cache["/sgx/certification/v4/tcb"] == doc


class TestVerifierBreaker:
    def test_open_circuit_fails_fast_without_retries(self):
        rng = SimRng(42, "tdx-flow")
        pcs = IntelPcs(rng)
        qe = QuotingEnclave(pcs, rng)
        quote = generate_tdx_quote(TdxModule(), qe, pcs, make_ctx(1), b"n")
        breaker = CircuitBreaker("verify", failure_threshold=1,
                                 cooldown_ns=NEVER_COOLS_NS)
        breaker.record_failure(0.0)   # pre-tripped
        verifier = TdxVerifier(pcs, breaker=breaker)
        ctx = make_ctx(2)
        before = ctx.ledger.total()
        with pytest.raises(CollateralTimeoutError, match="failing fast"):
            verifier.verify(quote, ctx, expected_report_data=b"n")
        # no attempt ran: nothing was fetched, nothing was charged
        assert ctx.ledger.total() == before
        assert breaker.shorted == 1
