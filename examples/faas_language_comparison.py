#!/usr/bin/env python3
"""FaaS language comparison: a miniature Fig. 6 heatmap.

The paper's key FaaS insight is that the language runtime matters:
lightweight runtimes (Lua, Go, Wasm) show lower TEE overhead than
complex managed runtimes (Python, Node, Ruby), whose memory traffic
is exactly what confidential VMs tax.  This example runs a reduced
grid and prints the heatmap plus per-language means.

Run:  python examples/faas_language_comparison.py
"""

import statistics

from repro.experiments.fig6_heatmap import run_fig6

# compute/memory-bound subset: the cells where runtime weight shows
# (I/O-bound cells are runtime-independent — bounce buffers dominate)
WORKLOADS = ("cpustress", "factors", "primes", "memstress",
             "wordcount", "jsonserde")
LANGUAGES = ("python", "node", "ruby", "lua", "luajit", "go", "wasm")


def main() -> None:
    result = run_fig6(seed=7, workloads=WORKLOADS, languages=LANGUAGES,
                      trials=6)
    print(result.render())

    print("\nPer-language mean ratio (lower = lighter runtime burden):\n")
    for platform in result.grids:
        means = {
            lang: result.language_mean(platform, lang) for lang in LANGUAGES
        }
        ordered = sorted(means.items(), key=lambda item: item[1])
        row = "  ".join(f"{lang}={ratio:.3f}" for lang, ratio in ordered)
        print(f"  {platform:8s} {row}")

    heavy = statistics.fmean(
        result.language_mean("tdx", lang) for lang in ("python", "node", "ruby")
    )
    light = statistics.fmean(
        result.language_mean("tdx", lang)
        for lang in ("lua", "luajit", "go", "wasm")
    )
    print(f"\nTDX: managed runtimes mean {heavy:.3f} vs "
          f"lightweight mean {light:.3f} — heavier runtimes impose a "
          "heavier burden on TEE operation (§IV-B).")


if __name__ == "__main__":
    main()
