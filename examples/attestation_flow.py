#!/usr/bin/env python3
"""Attestation walkthrough: TDX quotes vs SEV-SNP reports.

Reproduces the Fig. 5 experiment interactively and demonstrates the
security properties: fresh nonces bind quotes, tampering is detected,
and outdated-TCB platforms are rejected.

Run:  python examples/attestation_flow.py
"""

from repro.attest import (
    AmdKeyInfrastructure,
    IntelPcs,
    QuotingEnclave,
    SnpVerifier,
    TdxVerifier,
    generate_snp_report,
    generate_tdx_quote,
)
from repro.errors import QuoteVerificationError
from repro.guestos.context import ExecContext
from repro.hw.machine import epyc_9124, xeon_gold_5515
from repro.sim.rng import SimRng
from repro.tee.sevsnp import AmdSecureProcessor
from repro.tee.tdx import OLD_FIRMWARE, TdxModule


def main() -> None:
    rng = SimRng(2024, "attestation-demo")
    pcs = IntelPcs(rng)
    qe = QuotingEnclave(pcs, rng)
    module = TdxModule()
    keys = AmdKeyInfrastructure(rng)
    amd_sp = AmdSecureProcessor()

    print("== TDX: TDREPORT -> DCAP quote -> go-tdx-guest-style check ==\n")
    nonce = b"verifier-challenge-001"
    ctx = ExecContext(machine=xeon_gold_5515(), rng=rng.child("tdx-a"))
    quote = generate_tdx_quote(module, qe, pcs, ctx, nonce)
    print(f"  quote generated in {ctx.ledger.total() / 1e6:9.2f} ms "
          f"(MRTD {quote.mrtd_hex[:16]}...)")

    check_ctx = ExecContext(machine=xeon_gold_5515(), rng=rng.child("tdx-v"))
    verdict = TdxVerifier(pcs).verify(quote, check_ctx,
                                      expected_report_data=nonce)
    print(f"  verified in {verdict.elapsed_ns / 1e6:9.2f} ms; steps: "
          f"{' -> '.join(verdict.steps)}")
    print(f"  PCS endpoints hit: {pcs.request_log[-4:]}")

    print("\n== SEV-SNP: AMD-SP report -> snpguest-style 3-step check ==\n")
    snp_ctx = ExecContext(machine=epyc_9124(), rng=rng.child("snp-a"))
    report = generate_snp_report(amd_sp, keys, snp_ctx, nonce)
    print(f"  report generated in {snp_ctx.ledger.total() / 1e6:9.2f} ms "
          f"(chip {report.chip_id})")
    snp_check = ExecContext(machine=epyc_9124(), rng=rng.child("snp-v"))
    verdict = SnpVerifier(keys).verify(report, snp_check,
                                       expected_report_data=nonce)
    print(f"  verified in {verdict.elapsed_ns / 1e6:9.2f} ms "
          "(no network: certs come from the device)")

    print("\n== Security properties ==\n")
    # stale quote: wrong nonce
    try:
        TdxVerifier(pcs).verify(
            quote,
            ExecContext(machine=xeon_gold_5515(), rng=rng.child("x1")),
            expected_report_data=b"different-challenge",
        )
    except QuoteVerificationError as exc:
        print(f"  stale quote rejected: {exc}")

    # outdated firmware: TCB mismatch against PCS collateral
    old_module = TdxModule(OLD_FIRMWARE)
    old_ctx = ExecContext(machine=xeon_gold_5515(), rng=rng.child("x2"))
    old_quote = generate_tdx_quote(old_module, qe, pcs, old_ctx, nonce)
    try:
        TdxVerifier(pcs).verify(
            old_quote,
            ExecContext(machine=xeon_gold_5515(), rng=rng.child("x3")),
        )
    except QuoteVerificationError as exc:
        print(f"  outdated TCB rejected: {exc}")

    # tampered report
    import dataclasses

    bad = dataclasses.replace(report, measurement_hex="00" * 48)
    try:
        SnpVerifier(keys).verify(
            bad, ExecContext(machine=epyc_9124(), rng=rng.child("x4"))
        )
    except QuoteVerificationError as exc:
        print(f"  tampered report rejected: {exc}")


if __name__ == "__main__":
    main()
