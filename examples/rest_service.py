#!/usr/bin/env python3
"""The REST workflow: gateway over HTTP behind a socat-style relay.

Reproduces the deployment shape of Fig. 2 on localhost: a gateway
serving the REST API, a TCP relay steering a second port to it (the
paper's host-side socat), and a client submitting workloads — all
over real sockets.

Run:  python examples/rest_service.py
"""

import statistics

from repro import ConfBench, ConfBenchClient
from repro.core.relay import TcpRelay, free_port
from repro.core.rest import RestServer


def main() -> None:
    bench = ConfBench(seed=5)

    with RestServer(bench.gateway, port=0) as server:
        relay_port = free_port()
        with TcpRelay(relay_port, server.port) as relay:
            # the client talks to the *relay* port, as a user would
            # talk to the host's steering port in the paper's setup
            client = ConfBenchClient(port=relay_port)
            print(f"gateway on :{server.port}, relay steering "
                  f":{relay_port} -> :{server.port}")
            print(f"health: {client.health()}\n")

            print("platforms:")
            for info in client.platforms():
                print(f"  {info['name']:8s} {info['display_name']}")

            client.upload("filesystem")
            print("\nuploaded 'filesystem'; invoking on TDX "
                  "(secure + normal, 5 trials each)...")
            secure = client.invoke("filesystem", "node", platform="tdx",
                                   trials=5)
            normal = client.invoke("filesystem", "node", platform="tdx",
                                   secure=False, trials=5)
            ratio = (statistics.fmean(r["elapsed_ns"] for r in secure)
                     / statistics.fmean(r["elapsed_ns"] for r in normal))
            print(f"  secure/normal ratio over HTTP: {ratio:.3f}")
            print(f"  one trial's piggybacked perf: "
                  f"{ {k: v for k, v in secure[0]['perf'].items() if v} }")
            print(f"\nrelay forwarded {relay.bytes_forwarded:,} bytes over "
                  f"{relay.connections_handled} connections")


if __name__ == "__main__":
    main()
