#!/usr/bin/env python3
"""Quickstart: measure TEE overhead for one function in three lines.

Mirrors the paper's basic workflow (§III-C): upload a function, run it
in a confidential VM and in a normal VM, compare.

Run:  python examples/quickstart.py
"""

from repro import ConfBench


def main() -> None:
    bench = ConfBench(seed=42)

    # 1. upload a function to the gateway's database
    bench.upload("cpustress")

    # 2. run it on each TEE, secure vs normal, 10 trials each
    print("cpustress (python) — secure/normal mean-time ratio, 10 trials\n")
    for platform in ("tdx", "sev-snp", "cca"):
        summary = bench.measure_overhead(
            "cpustress", language="python", platform=platform, trials=10,
        )
        print(f"  {platform:8s} ratio {summary.ratio:6.3f}   "
              f"secure {summary.secure_mean_ns / 1e6:8.3f} ms   "
              f"normal {summary.normal_mean_ns / 1e6:8.3f} ms   "
              f"({summary.overhead_percent:+.1f}%)")

    # 3. inspect the perf metrics ConfBench piggybacks on each result
    records = bench.invoke("cpustress", language="python", platform="tdx",
                           trials=1)
    perf = records[0].perf
    print("\nperf stat (piggybacked with the result):")
    for event in ("instructions", "cycles", "cache_references",
                  "cache_misses", "vm_transitions"):
        print(f"  {event:18s} {perf[event]:>14,}")


if __name__ == "__main__":
    main()
