#!/usr/bin/env python3
"""Extending ConfBench: a new TEE, a new workload, a custom metric.

§III-A claims ConfBench "can be easily extended to support new TEEs
and workloads"; this example does all three extensions end to end:

1. a **new TEE platform** ("RISC-V CoVE"-flavoured) built from a cost
   profile and registered next to the built-ins;
2. a **new user workload** uploaded through the normal gateway path;
3. a **custom monitoring script** (the paper's CCA extension point).

Run:  python examples/extend_confbench.py
"""

from repro.core import ConfBench, PerfMonitor
from repro.core.config import GatewayConfig, PlatformEntry
from repro.guestos.context import CostProfile
from repro.hw.machine import Machine, epyc_9124
from repro.tee.base import PlatformInfo, TeePlatform
from repro.tee.registry import register_platform, unregister_platform
from repro.workloads.base import FaasWorkload, WorkloadTrait


# -- 1. a new TEE platform -------------------------------------------------

class CovePlatform(TeePlatform):
    """A hypothetical RISC-V CoVE (confidential VM extension) port."""

    name = "cove"

    def info(self) -> PlatformInfo:
        return PlatformInfo(
            name=self.name,
            display_name="RISC-V CoVE (hypothetical)",
            vendor="riscv",
            is_simulated=True,
            supports_attestation=False,
            supports_perf_counters=True,
            description="TSM-mediated confidential VMs on a RISC-V host",
        )

    def build_machine(self) -> Machine:
        return epyc_9124()   # reuse a host shape for the demo

    def secure_profile(self) -> CostProfile:
        return CostProfile(
            name="cove",
            cpu_multiplier=1.06,
            mem_alloc_multiplier=1.12,
            mem_access_multiplier=1.09,
            io_read_multiplier=1.3,
            io_write_multiplier=1.3,
            syscall_multiplier=1.2,
            mem_encrypted=True,
            mem_integrity=True,
            halt_transition_ns=2.0 * 5_000.0,   # TSM world switches
            io_transition_ns=5_000.0,
            noise_sigma=0.03,
        )


# -- 2. a new workload -----------------------------------------------------

def montecarlo_pi(session, args):
    """Estimate pi by sampling (a user-supplied custom function)."""
    samples = int(args["samples"])
    inside = 0
    seed = 123456789
    for _ in range(samples):
        seed = (seed * 1103515245 + 12345) % (2 ** 31)
        x = (seed % 10_000) / 10_000.0
        seed = (seed * 1103515245 + 12345) % (2 ** 31)
        y = (seed % 10_000) / 10_000.0
        if x * x + y * y <= 1.0:
            inside += 1
    session.compute(samples * 12)
    return {"samples": samples, "pi": 4.0 * inside / samples}


def main() -> None:
    register_platform("cove", lambda seed: CovePlatform(seed=seed))
    try:
        config = GatewayConfig(entries=[
            PlatformEntry(platform="cove", host="riscv-host", base_port=9500),
            PlatformEntry(platform="tdx", host="xeon", base_port=9100),
        ])
        bench = ConfBench(config=config, seed=3)

        workload = FaasWorkload(
            name="montecarlo-pi",
            trait=WorkloadTrait.CPU,
            description="estimate pi by pseudo-random sampling",
            fn=montecarlo_pi,
            default_args={"samples": 20_000},
        )
        bench.upload_custom(workload)

        print("custom workload on the new TEE vs TDX:\n")
        for platform in ("cove", "tdx"):
            summary = bench.measure_overhead(
                "montecarlo-pi", language="go", platform=platform, trials=6,
            )
            records = bench.invoke("montecarlo-pi", language="go",
                                   platform=platform, trials=1)
            print(f"  {platform:6s} ratio {summary.ratio:6.3f}   "
                  f"pi ~= {records[0].output['result']['pi']:.4f}")

        # -- 3. a custom monitoring script --------------------------------
        gateway = bench.gateway
        monitor: PerfMonitor = gateway.monitors["cove"]
        monitor.register_script(
            "transitions_per_ms",
            lambda run: run.counters.vm_transitions / max(run.elapsed_ns / 1e6, 1e-9),
        )
        pool = gateway.pools[("cove", True)]
        worker = pool.pick()
        from repro.core.launcher import FunctionLauncher

        body = FunctionLauncher.for_language("go").launch(workload)
        run = pool.run_on(worker, body, name="montecarlo-pi", trial=0)
        report = monitor.collect(run)
        print(f"\ncustom metric on cove: transitions_per_ms = "
              f"{report.extra['transitions_per_ms']:.2f}")
    finally:
        unregister_platform("cove")


if __name__ == "__main__":
    main()
