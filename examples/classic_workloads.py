#!/usr/bin/env python3
"""Classic (non-FaaS) workloads: ML inference, DBMS, UnixBench.

The paper's §IV-C experiments, condensed: MobileNet-style inference
over 1 MB images, the SQLite-speedtest-style suite, and the
UnixBench-style OS suite, each compared secure-vs-normal on every TEE.

Run:  python examples/classic_workloads.py
"""

import statistics

from repro import ConfBench
from repro.workloads.dbms import Database, KernelCostHooks, run_speedtest
from repro.workloads.ml import (
    MobileNetLite,
    generate_dataset,
    run_inference_workload,
)
from repro.workloads.unixbench import run_unixbench

PLATFORMS = ("tdx", "sev-snp", "cca")


def ml_section(bench: ConfBench) -> None:
    print("== Confidential ML (MobileNet-style, 12 images) ==\n")
    model = MobileNetLite(seed=1)
    dataset = generate_dataset(count=12, side=296, seed=1)

    def body(kernel):
        results = run_inference_workload(kernel, model, dataset)
        return {
            "times": [r.elapsed_ns for r in results],
            "labels": [r.label for r in results],
        }

    for platform in PLATFORMS:
        summary = bench.measure_classic_overhead(
            "ml-inference",
            lambda k: statistics.fmean(body(k)["times"]),
            platform=platform, trials=5,
        )
        print(f"  {platform:8s} inference ratio {summary.ratio:6.3f}")
    print()


def dbms_section(bench: ConfBench) -> None:
    print("== Confidential DBMS (speedtest mix, relative size 25) ==\n")

    def body(kernel):
        database = Database(hooks=KernelCostHooks(kernel))
        results = run_speedtest(database, size=25,
                                clock=kernel.ctx.elapsed_ns)
        return sum(r.elapsed_ns for r in results)

    for platform in PLATFORMS:
        summary = bench.measure_classic_overhead(
            "speedtest", body, platform=platform, trials=3,
        )
        print(f"  {platform:8s} total-suite ratio {summary.ratio:6.3f}")
    print()


def unixbench_section(bench: ConfBench) -> None:
    print("== UnixBench (single-threaded, index scores) ==\n")

    def body(kernel):
        return run_unixbench(kernel, scale=0.3).system_index

    for platform in PLATFORMS:
        secure = bench.run_classic("unixbench", body, platform=platform,
                                   secure=True, trials=3)
        normal = bench.run_classic("unixbench", body, platform=platform,
                                   secure=False, trials=3)
        secure_index = statistics.fmean(r.output for r in secure)
        normal_index = statistics.fmean(r.output for r in normal)
        print(f"  {platform:8s} secure index {secure_index:8.1f}   "
              f"normal index {normal_index:8.1f}   "
              f"ratio {normal_index / secure_index:6.3f}")
    print()


def main() -> None:
    bench = ConfBench(seed=11)
    ml_section(bench)
    dbms_section(bench)
    unixbench_section(bench)
    print("Shapes to notice (matching the paper): near-native TDX/SEV on "
          "ML and DBMS,\nlarger UnixBench overheads everywhere, CCA worst "
          "in every experiment.")


if __name__ == "__main__":
    main()
