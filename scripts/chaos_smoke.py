#!/usr/bin/env python
"""Chaos smoke test: SIGKILL a sweep mid-run, resume it, demand bit-identity.

For each scenario this driver runs an experiment sweep (the fig5
attestation sweep, or the fig9 cluster sweep with host-crash and
zone-partition faults landing mid-traffic) three times:

1. *baseline* — uninterrupted, no journal, ``--trace-out`` captured;
2. *interrupted* — the same sweep with ``--resume JOURNAL``, launched
   as a subprocess, polled until the journal holds at least one trial
   entry, then killed with SIGKILL (no chance to clean up — at worst a
   torn final journal line, which recovery must truncate);
3. *resumed* — the same command again against the same journal, run to
   completion.

The resumed run's artifact (trace JSON for fig5, canonical metrics
snapshot for fig9) must be byte-identical to the baseline's.
Scenarios cover serial and parallel execution, with and without fault
injection, plus a cluster chaos scenario.  Exit status 0 means every
scenario held; 1 names the ones that did not.

Usage::

    python scripts/chaos_smoke.py              # all scenarios
    python scripts/chaos_smoke.py --only serial-faulted
    python scripts/chaos_smoke.py --trials 4 --keep
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Rates chosen so every trial recovers within its retries: fig5's
# analysis needs the attest/check spans, which a fully degraded trial
# does not have.
FAULTS = "pcs-timeout=0.3,attest-transient=0.2,seed=7"

# Cluster-scale weather for the fig9 scenario: hosts crash and a zone
# partitions *during* the sweep; the gateway's conservation contract
# (and the resumed run's byte-identity) must hold anyway.
CLUSTER_FAULTS = "host-crash=0.6,zone-partition=0.5,seed=13"

#: name -> scenario spec:
#:   experiment — CLI experiment name;
#:   jobs       — worker count;
#:   faults     — ``--faults`` spec, or None;
#:   artifact   — what gets byte-compared between baseline and resumed
#:                runs: an output flag ("--trace-out" for fig5's trace
#:                export) or "stdout" (the rendered figure; used for
#:                fig9, whose metrics snapshot legitimately gains
#:                ``journal.*`` counters on a resumed run);
#:   extra      — additional CLI flags (e.g. ``--quick``).
SCENARIOS = {
    "serial-clean": {
        "experiment": "fig5", "jobs": 1, "faults": None,
        "artifact": "--trace-out", "extra": []},
    "serial-faulted": {
        "experiment": "fig5", "jobs": 1, "faults": FAULTS,
        "artifact": "--trace-out", "extra": []},
    "parallel-clean": {
        "experiment": "fig5", "jobs": 2, "faults": None,
        "artifact": "--trace-out", "extra": []},
    "parallel-faulted": {
        "experiment": "fig5", "jobs": 2, "faults": FAULTS,
        "artifact": "--trace-out", "extra": []},
    "cluster-chaos": {
        "experiment": "fig9", "jobs": 2, "faults": CLUSTER_FAULTS,
        "artifact": "stdout", "extra": ["--quick"]},
}


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    return env


def run_cli(args: list[str], timeout: float,
            stdout_to: Path | None = None) -> None:
    """Run the CLI; optionally capture its rendered stdout to a file.

    Captured stdout drops the run-housekeeping lines (``wrote ...``
    artifact paths, ``resuming from ...`` banners, ``journal: ...``
    summaries — all naming run-specific paths or replay/record splits)
    so what lands in the file is only the rendered figure.
    """
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=REPO, env=cli_env(), timeout=timeout, check=True,
        stdout=subprocess.PIPE if stdout_to is not None
        else subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )
    if stdout_to is not None:
        housekeeping = ("wrote ", "resuming from ", "journal: ")
        lines = proc.stdout.decode().splitlines(keepends=True)
        stdout_to.write_text(
            "".join(line for line in lines
                    if not line.startswith(housekeeping)))


def journaled_trials(path: Path) -> int:
    """Completed trial entries currently in the journal (cheap poll)."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return 0
    return sum(1 for line in raw.split(b"\n")
               if b'"kind": "trial"' in line and line.endswith(b"}"))


def interrupt_sweep(args: list[str], journal: Path, timeout: float) -> int:
    """Start the sweep, SIGKILL it once the journal has an entry.

    Returns the number of trials journaled at kill time.  A sweep fast
    enough to finish before the poll sees an entry simply completes —
    the resume step then exercises pure replay instead of a tail run.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=REPO, env=cli_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            if journaled_trials(journal) >= 1 or proc.poll() is not None:
                break
            time.sleep(0.01)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
    return journaled_trials(journal)


def run_scenario(name: str, workdir: Path, trials: int,
                 timeout: float) -> tuple[bool, str]:
    scenario = SCENARIOS[name]
    artifact = scenario["artifact"]
    baseline = workdir / "baseline.json"
    resumed = workdir / "resumed.json"
    journal = workdir / "journal.jsonl"
    common = ["experiment", scenario["experiment"],
              "--trials", str(trials),
              "--jobs", str(scenario["jobs"]), *scenario["extra"]]
    if scenario["faults"]:
        common += ["--faults", scenario["faults"]]

    if artifact == "stdout":
        run_cli(common, timeout, stdout_to=baseline)
        at_kill = interrupt_sweep(
            [*common, "--resume", str(journal)], journal, timeout)
        run_cli([*common, "--resume", str(journal)], timeout,
                stdout_to=resumed)
    else:
        run_cli([*common, artifact, str(baseline)], timeout)
        at_kill = interrupt_sweep(
            [*common, "--resume", str(journal),
             artifact, str(workdir / "interrupted.json")],
            journal, timeout)
        run_cli([*common, "--resume", str(journal),
                 artifact, str(resumed)], timeout)

    identical = baseline.read_bytes() == resumed.read_bytes()
    detail = (f"killed with {at_kill} trial(s) journaled; "
              f"resumed trace {'==' if identical else '!='} baseline")
    return identical, detail


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", choices=sorted(SCENARIOS),
                        help="run a single scenario")
    parser.add_argument("--trials", type=int, default=6,
                        help="fig5 trials per platform (default 6)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-run wall-clock limit in seconds")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for inspection")
    args = parser.parse_args(argv)

    names = [args.only] if args.only else sorted(SCENARIOS)
    scratch = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    failed: list[str] = []
    try:
        for name in names:
            workdir = scratch / name
            workdir.mkdir()
            ok, detail = run_scenario(name, workdir, args.trials,
                                      args.timeout)
            status = "ok" if ok else "FAIL"
            print(f"{status:4s} {name}: {detail}")
            if not ok:
                failed.append(name)
    finally:
        if args.keep:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)
    if failed:
        print(f"chaos smoke FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"chaos smoke passed ({len(names)} scenario(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
