"""Bench E7 — Fig. 8: CCA execution-time distributions.

Box-and-whisker data for all 25 functions (python panel), secure and
normal, 10 independent runs each.

Shape assertions:
- secure-realm whiskers are longer (more run-to-run variability);
- the same holds in aggregate against a TDX baseline re-run (the
  paper notes the effect exists on TDX/SEV but to a lesser extent);
- box summaries are well-formed.
"""

from repro.experiments import run_fig8
from repro.experiments.common import make_pair, PAPER_TRIALS
from repro.experiments.fig8_cca_box import Fig8Result
from repro.experiments.common import faas_ratio


def _tdx_whisker_span(workloads, trials=PAPER_TRIALS) -> float:
    """Mean relative whisker span of secure TDX runs (comparison)."""
    pair = make_pair("tdx", seed=1)
    result = Fig8Result(language="python")
    for workload in workloads:
        _, secure_times, normal_times = faas_ratio(pair, workload, "python",
                                                   trials=trials)
        result.samples[workload] = {"secure": secure_times,
                                    "normal": normal_times}
    return result.mean_whisker_span("secure")


def test_fig8_cca_box(regenerate):
    result = regenerate(run_fig8, seed=1, trials=10)

    # "with confidential VMs, the length of the whiskers tends to be
    # larger"
    secure_span = result.mean_whisker_span("secure")
    normal_span = result.mean_whisker_span("normal")
    assert secure_span > normal_span

    # the variability exists on TDX too, "but to a lesser extent"
    tdx_span = _tdx_whisker_span(tuple(result.samples)[:8])
    assert secure_span > tdx_span

    # box summaries are ordered for every function and both VM kinds
    for workload in result.samples:
        for kind in ("secure", "normal"):
            s = result.summary(workload, kind)
            assert (s["whisker_low"] <= s["q1"] <= s["median"]
                    <= s["q3"] <= s["whisker_high"]), (workload, kind)

    # all 25 paper workloads covered
    assert len(result.samples) == 25
