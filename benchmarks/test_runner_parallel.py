"""Bench E9 — the parallel trial executor on the Fig. 6 sweep.

The trials of a plan are pure functions of their specs, so the
parallel executor must (a) return byte-identical results to the
serial one and (b) actually go faster when cores are available.

(a) is asserted unconditionally.  (b) — the >= 2x wall-clock speedup
with 4 workers — only on machines with >= 4 cores, since a speedup
assertion is meaningless on a starved runner.
"""

import json
import os
import time

from repro.core.runner import TrialPlan, TrialRunner

#: A Fig. 6-shaped sweep big enough to amortise pool start-up: 2
#: platforms x 2 languages x 4 workloads x 4 trials x 2 modes.
SWEEP = dict(
    kind="faas",
    platforms=("tdx", "sev-snp"),
    workloads=("cpustress", "memstress", "iostress", "logging"),
    runtimes=("python", "lua"),
    trials=4,
    seed=1,
)

SPEEDUP_JOBS = 4
MIN_SPEEDUP = 2.0


def payload(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


def timed(runner, plan):
    start = time.perf_counter()
    results = runner.run(plan)
    return time.perf_counter() - start, results


def test_parallel_heatmap_sweep(capsys):
    plan = TrialPlan.matrix(**SWEEP)

    serial_s, serial = timed(TrialRunner(), plan)
    parallel_s, parallel = timed(TrialRunner(jobs=SPEEDUP_JOBS), plan)

    # determinism: the experiment JSON must match byte for byte
    assert payload(serial) == payload(parallel)

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    with capsys.disabled():
        print(f"\n{len(plan)} trials: serial {serial_s:.2f}s, "
              f"{SPEEDUP_JOBS} jobs {parallel_s:.2f}s "
              f"({speedup:.2f}x, {cores} cores)")

    if cores >= SPEEDUP_JOBS:
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x with {SPEEDUP_JOBS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )
