"""Ablation — co-located TEE VMs and load balancing (§VI future work).

The paper plans to "study the overheads of co-locating and executing
several TEE-aware VMs inside the same host".  This bench compares one
worker against a four-worker pool under each load-balancing policy,
checking that the pool spreads requests and that per-request virtual
times stay stable (our host model has no contention — the bench
establishes the baseline the contention study would diff against).
"""

import statistics

from repro.core.launcher import FunctionLauncher
from repro.core.pool import LoadBalancingPolicy, TeePool
from repro.experiments.report import render_table
from repro.tee.registry import platform_by_name
from repro.workloads.faas import workload_by_name


def _pool_with_workers(policy: LoadBalancingPolicy, workers: int) -> TeePool:
    platform = platform_by_name("tdx", seed=3)
    pool = TeePool(platform="tdx", secure=True, policy=policy)
    for index in range(workers):
        vm = platform.create_vm()
        vm.boot()
        pool.add_worker(vm, 9100 + index)
    return pool


def _drive(pool: TeePool, requests: int = 40) -> dict:
    body = FunctionLauncher.for_language("lua").launch(
        workload_by_name("factors")
    )
    times = []
    for trial in range(requests):
        worker = pool.pick()
        run = pool.run_on(worker, body, name="factors", trial=trial)
        times.append(run.elapsed_ns)
    served = [worker.served for worker in pool.workers]
    return {"mean_ns": statistics.fmean(times), "served": served}


def test_colocation_and_policies(benchmark, capsys):
    def run():
        out = {}
        for policy in LoadBalancingPolicy:
            out[policy.value] = _drive(_pool_with_workers(policy, 4))
        out["single"] = _drive(_pool_with_workers(
            LoadBalancingPolicy.ROUND_ROBIN, 1
        ))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation — co-located VMs x load-balancing policy "
            "(40 requests)",
            ["configuration", "mean time (ms)", "requests per worker"],
            [
                [name, f"{data['mean_ns'] / 1e6:.3f}", str(data["served"])]
                for name, data in result.items()
            ],
        ))

    # round robin spreads exactly evenly
    assert result["round-robin"]["served"] == [10, 10, 10, 10]
    # least-loaded spreads exactly evenly for uniform work
    assert result["least-loaded"]["served"] == [10, 10, 10, 10]
    # random touches every worker
    assert all(count > 0 for count in result["random"]["served"])
    # co-location itself is cost-neutral in the uncontended baseline
    single = result["single"]["mean_ns"]
    pooled = result["round-robin"]["mean_ns"]
    assert abs(pooled - single) / single < 0.10
