"""Bench E4 — Fig. 5: attestation creation/validation latency.

Shape assertions (log-scale plot in the paper):
- both SNP phases are faster than their TDX counterparts, by an
  order of magnitude or more;
- the TDX check is dominated by network round-trips to the Intel PCS
  (TCB info + QE identity + two CRLs), whereas SNP verification
  fetches certificates from the hardware;
- TDX quote *generation* is the single slowest step.
"""

from repro.experiments import run_fig5


def test_fig5_attestation(regenerate):
    result = regenerate(run_fig5, seed=1, trials=10)
    lat = result.latencies_ns

    # SNP faster on both phases, by >= 10x (log-scale-worthy gaps)
    assert lat["sev-snp attest"] * 10 < lat["tdx attest"]
    assert lat["sev-snp check"] * 10 < lat["tdx check"]

    # TDX attest (DCAP quote generation) is the slowest bar
    assert lat["tdx attest"] == max(lat.values())

    # TDX check pays the PCS network round-trips
    assert result.tdx_check_network_fraction > 0.6

    # absolute scales are sane: SNP in single-digit ms, TDX in 100s of ms
    assert 1e6 < lat["sev-snp attest"] < 50e6
    assert 0.1e6 < lat["sev-snp check"] < 20e6
    assert 100e6 < lat["tdx attest"] < 2000e6
    assert 50e6 < lat["tdx check"] < 1000e6
