"""Bench — warm lint cache vs cold over the real tree.

``confbench lint --cache`` exists so CI and pre-commit hooks pay the
full six-pass analysis cost only when files actually change.  This
bench runs the complete rule set over ``src/repro`` cold (empty
cache), then warm (same tree, populated cache), asserts the outputs
are byte-identical, and requires the warm run to actually be served
from the cache (zero misses) and to beat the cold run's wall clock.

The speedup assertion is deliberately loose (warm <= cold): absolute
timings are machine-bound, and the correctness half — identical
renderings, all-hit second run — is the part that must never regress.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import run_lint

TREE = Path(__file__).resolve().parents[1] / "src" / "repro"


def test_warm_cache_is_all_hits_and_byte_identical(tmp_path, capsys):
    cache = tmp_path / "lint-cache.json"

    t0 = time.perf_counter()
    cold = run_lint([TREE], cache_path=cache)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_lint([TREE], cache_path=cache)
    warm_s = time.perf_counter() - t0

    assert cold.cache_misses > 0
    assert warm.cache_misses == 0 and warm.cache_hits > 0
    assert warm.render_text() == cold.render_text()
    assert warm.render_json() == cold.render_json()
    assert warm.render_sarif() == cold.render_sarif()
    assert warm_s <= cold_s

    with capsys.disabled():
        print(f"\nlint cache: cold {cold_s:.2f}s "
              f"({cold.cache_misses} misses) -> warm {warm_s:.2f}s "
              f"({warm.cache_hits} hits), "
              f"{cold_s / max(warm_s, 1e-9):.1f}x")
