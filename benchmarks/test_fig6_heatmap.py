"""Bench E5 — Fig. 6: TDX + SEV-SNP FaaS heatmaps.

Full paper grid: 25 workloads x 7 languages x 10 trials on both
hardware TEEs.

Shape assertions:
- TDX faster on CPU- and memory-intensive workloads; SEV-SNP faster
  on I/O (iostress / filesystem — TDX's bounce buffers);
- heavier managed runtimes (Python/Node/Ruby) mean hotter rows than
  Lua/LuaJIT/Go/Wasm;
- a few cells dip below 1.0 (secure faster: the cache-hit effect);
- overall ratios stay modest (close to 1) on both hardware TEEs.
"""

import statistics

from repro.experiments import run_fig6
from repro.experiments.fig6_heatmap import HEAVY_LANGS, LIGHT_LANGS
from repro.workloads.base import WorkloadTrait


def test_fig6_heatmap(regenerate):
    result = regenerate(run_fig6, seed=1, trials=10)

    # TDX wins cpu/memory, SEV wins io (trait means across the grid)
    tdx_cpu = result.trait_mean("tdx", WorkloadTrait.CPU)
    sev_cpu = result.trait_mean("sev-snp", WorkloadTrait.CPU)
    tdx_mem = result.trait_mean("tdx", WorkloadTrait.MEMORY)
    sev_mem = result.trait_mean("sev-snp", WorkloadTrait.MEMORY)
    tdx_io = result.trait_mean("tdx", WorkloadTrait.IO)
    sev_io = result.trait_mean("sev-snp", WorkloadTrait.IO)
    assert tdx_cpu < sev_cpu, f"cpu: tdx {tdx_cpu:.3f} !< sev {sev_cpu:.3f}"
    assert tdx_mem < sev_mem, f"mem: tdx {tdx_mem:.3f} !< sev {sev_mem:.3f}"
    assert sev_io < tdx_io, f"io: sev {sev_io:.3f} !< tdx {tdx_io:.3f}"

    # heavier language runtimes run hotter on both hardware TEEs
    for platform in ("tdx", "sev-snp"):
        heavy = statistics.fmean(
            result.language_mean(platform, lang) for lang in HEAVY_LANGS
        )
        light = statistics.fmean(
            result.language_mean(platform, lang) for lang in LIGHT_LANGS
        )
        assert heavy > light, (
            f"{platform}: managed {heavy:.3f} !> lightweight {light:.3f}"
        )

    # "in a few cases the ratio is lower than 1"
    assert result.cells_below_one("tdx") >= 2
    # ... but not everywhere: the TEEs do cost something
    total_cells = len(result.grids["tdx"])
    assert result.cells_below_one("tdx") < total_cells / 4

    # overheads are generally tenable (close to 1) on hardware TEEs
    for platform in ("tdx", "sev-snp"):
        grid_mean = statistics.fmean(result.grids[platform].values())
        assert 1.0 < grid_mean < 1.35, f"{platform} grid mean {grid_mean:.3f}"
