"""Bench E2 — §IV-C Confidential DBMS (speedtest, relative size 100).

Shape assertions:
- TDX and SEV-SNP ratios "very similar and close to 1";
- CCA's overhead the largest, per-test averages reaching ~10x.
"""

from repro.experiments import run_dbms_table


def test_dbms_speedtest(regenerate):
    result = regenerate(run_dbms_table, seed=1, size=100, trials=3)

    tdx = result.average_ratio("tdx")
    sev = result.average_ratio("sev-snp")
    cca = result.average_ratio("cca")

    # "overheads for TDX and SEV-SNP are very similar and close to 1"
    assert tdx < 1.25, f"TDX DBMS avg {tdx:.2f} too far from 1"
    assert sev < 1.25, f"SEV DBMS avg {sev:.2f} too far from 1"
    assert abs(tdx - sev) < 0.15, "TDX and SEV should be very similar"

    # "the overhead introduced by CCA is the largest ones, on average
    # up to 10x"
    assert cca > 3.0, f"CCA DBMS avg {cca:.2f} too small"
    assert result.max_ratio("cca") > 6.0
    assert result.max_ratio("cca") < 20.0
    assert cca > 3 * max(tdx, sev)

    # the test mix covers the speedtest1 categories
    assert len(result.test_names) == 16
