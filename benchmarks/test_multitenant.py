"""Extension bench — multi-tenant contention (§VI future work).

"We intend to study the overheads of co-locating and executing
several TEE-aware VMs inside the same host, as it happens in a
typical cloud-based multi-tenant scenario."  This bench sweeps tenant
counts on the 8-core TDX host and measures how per-request time
degrades once the host is oversubscribed.

Shape assertions:
- at or below core count: no degradation;
- beyond core count: monotone degradation, sublinear in the
  oversubscription ratio (shared caches before timeslicing).
"""

import statistics

from repro.core.host import Host
from repro.core.launcher import FunctionLauncher
from repro.experiments.report import render_table
from repro.tee.registry import platform_by_name
from repro.workloads.faas import workload_by_name

TENANT_COUNTS = (1, 4, 8, 16, 32)


def test_multitenant_contention(benchmark, capsys):
    def run():
        host = Host(name="h", platform=platform_by_name("tdx", seed=9))
        for index in range(max(TENANT_COUNTS)):
            host.provision_vm(9100 + index, secure=True)
        body = FunctionLauncher.for_language("python").launch(
            workload_by_name("cpustress")
        )
        means = {}
        for tenants in TENANT_COUNTS:
            requests = [(9100 + i, body, "cpustress") for i in range(tenants)]
            results = host.route_colocated(requests)
            means[tenants] = statistics.fmean(r.elapsed_ns for r in results)
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    cores = 8   # the Xeon Gold 5515+ host

    with capsys.disabled():
        print()
        print(render_table(
            "Multi-tenant sweep — per-request mean time vs co-located "
            "TDX VMs (8-core host)",
            ["tenants", "mean time (ms)", "slowdown vs alone"],
            [
                [n, f"{means[n] / 1e6:.3f}", f"{means[n] / means[1]:.2f}x"]
                for n in TENANT_COUNTS
            ],
        ))

    # no penalty up to core count (within noise)
    assert means[4] / means[1] < 1.1
    assert means[cores] / means[1] < 1.1
    # monotone degradation beyond
    assert means[16] > means[cores]
    assert means[32] > means[16]
    # sublinear: 4x oversubscription costs less than 4x
    assert means[32] / means[cores] < 4.0
    assert means[32] / means[cores] > 2.0
