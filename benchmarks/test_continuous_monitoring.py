"""Extension bench — TEEMon-style continuous monitoring (§VI).

Samples a TDX confidential VM at a 100 µs virtual interval while two
contrasting workloads run, and prints per-interval sparklines.

Shape assertions:
- ``cpustress`` is flat compute: no bounce-buffer traffic at all;
- ``iostress`` is bursty I/O: bounce-buffer bytes grow across the
  run and I/O dominates its cost profile by the end;
- both series are dense enough to see phases (>= 10 samples).
"""

from repro.core.launcher import FunctionLauncher
from repro.core.timeseries import ContinuousMonitor
from repro.experiments.report import render_table
from repro.sim.ledger import CostCategory
from repro.tee.registry import platform_by_name
from repro.workloads.faas import workload_by_name


def _monitored_run(workload_name: str, interval_ns: float = 100_000.0):
    platform = platform_by_name("tdx", seed=12)
    vm = platform.create_vm()
    vm.boot()
    monitor = ContinuousMonitor(interval_ns=interval_ns)
    body = FunctionLauncher.for_language("lua").launch(
        workload_by_name(workload_name)
    )
    vm.run(monitor.wrap(body), name=workload_name)
    return monitor.series


def test_continuous_monitoring(benchmark, capsys):
    def run():
        return {
            "cpustress": _monitored_run("cpustress", interval_ns=20_000.0),
            "iostress": _monitored_run("iostress"),
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    cpu, io = series["cpustress"], series["iostress"]

    with capsys.disabled():
        print()
        print(render_table(
            "Continuous monitoring — per-interval activity sparklines (TDX)",
            ["workload", "signal", "sparkline", "samples"],
            [
                ["cpustress", "instructions",
                 cpu.sparkline("instructions", 32), len(cpu)],
                ["iostress", "bounce bytes",
                 io.sparkline("bounce_buffer_bytes", 32), len(io)],
                ["iostress", "vm transitions",
                 io.sparkline("vm_transitions", 32), len(io)],
            ],
        ))

    assert len(cpu) >= 10 and len(io) >= 10

    # cpustress never touches the bounce buffers
    assert cpu.samples[-1].bounce_buffer_bytes == 0
    # iostress streams through them, and keeps growing over the run
    assert io.samples[-1].bounce_buffer_bytes > 1 << 20
    bounce = [s.bounce_buffer_bytes for s in io.samples]
    assert bounce == sorted(bounce)

    # by the end, I/O dominates iostress's cost profile
    io_share = io.category_share(CostCategory.IO_WRITE)[-1]
    bounce_share = io.category_share(CostCategory.BOUNCE_BUFFER)[-1]
    assert io_share + bounce_share > 0.3
    # ... while cpustress stays compute-bound
    assert cpu.category_share(CostCategory.CPU)[-1] > 0.4
