"""Bench E1 — Fig. 3: confidential ML inference distributions.

Paper setup: MobileNet classifying 40 diversified 1 MB images on
TDX / SEV-SNP / CCA, secure vs normal, stacked percentiles.

Shape assertions:
- TDX and SEV-SNP run at close-to-native speed, TDX slightly ahead;
- CCA is the slow one, up to ~1.33x;
- percentile stacks are ordered and spread (real distributions).
"""

from repro.experiments import run_fig3


def test_fig3_ml(regenerate):
    result = regenerate(run_fig3, seed=1, image_count=40, image_side=296,
                        trials=3)

    tdx = result.mean_ratio("tdx")
    sev = result.mean_ratio("sev-snp")
    cca = result.mean_ratio("cca")

    # close-to-native on the hardware TEEs
    assert tdx < 1.12, f"TDX ML ratio {tdx:.3f} not near-native"
    assert sev < 1.15, f"SEV ML ratio {sev:.3f} not near-native"
    # "TDX showing a limited advantage"
    assert tdx < sev + 0.05
    # "CCA introduces a larger overhead (up to 1.33x)"
    assert 1.15 < cca < 1.55, f"CCA ML ratio {cca:.3f} off the paper's shape"
    assert cca > max(tdx, sev)

    # stacked percentiles behave like distributions
    for platform in ("tdx", "sev-snp", "cca"):
        stack = result.stack(platform, "secure")
        assert stack["min"] <= stack["p25"] <= stack["median"] \
            <= stack["p95"] <= stack["max"]
        assert stack["max"] > stack["min"]
