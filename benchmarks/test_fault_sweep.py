"""Bench E10 — the trial pipeline under seeded fault injection.

Sweeps a Fig. 6-shaped plan across fault-rate tiers and checks the
failure-handling contract end to end:

- every requested trial comes back (none silently dropped), at any
  rate, with no hangs;
- serial and parallel execution stay byte-identical under faults;
- at low rates the paper's secure/normal elapsed ratios survive —
  retries charge the ledger's STARTUP bucket, never ``elapsed_ns``;
- at punishing rates the pipeline degrades gracefully: exhausted
  trials are marked ``degraded`` instead of aborting the sweep.
"""

import json

from repro.core.runner import TrialPlan, TrialRunner

#: A smaller Fig. 6 cut: 2 platforms x 2 workloads x 4 trials x 2 modes.
SWEEP = dict(
    kind="faas",
    platforms=("tdx", "sev-snp"),
    workloads=("cpustress", "iostress"),
    runtimes=("lua",),
    trials=4,
    seed=1,
)

LOW = "vm-crash=0.12,pcs-timeout=0.05,seed=4"
HIGH = "vm-crash=0.6,attest-transient=0.4,pcs-timeout=0.4,seed=3"

PARALLEL_JOBS = 4


def payload(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


def run_tier(faults):
    plan = TrialPlan.matrix(**SWEEP)
    serial = TrialRunner(faults=faults).run(plan)
    parallel = TrialRunner(jobs=PARALLEL_JOBS, faults=faults).run(plan)
    assert payload(serial) == payload(parallel)
    assert len(serial) == len(plan.specs)   # no trial silently dropped
    return plan, serial


def mean_elapsed(results, platform, secure):
    picked = [r.elapsed_ns for r in results
              if r.platform == platform and r.secure is secure
              and not r.degraded]
    return sum(picked) / len(picked)


def test_fault_sweep(capsys):
    clean_plan, clean = run_tier(None)

    # -- low rates: occasional retries, calibration shape intact ------
    low_plan, low = run_tier(LOW)
    assert sum(r.degraded for r in low) == 0
    retried = sum(r.attempts > 1 for r in low)
    assert retried > 0, "low-rate plan injected nothing; raise the rates"
    for platform in SWEEP["platforms"]:
        ratio = (mean_elapsed(low, platform, True)
                 / mean_elapsed(low, platform, False))
        clean_ratio = (mean_elapsed(clean, platform, True)
                       / mean_elapsed(clean, platform, False))
        # elapsed_ns excludes the STARTUP bucket the retries charge,
        # so the secure/normal ratio must be unchanged by faults
        assert abs(ratio - clean_ratio) < 1e-9

    # -- high rates: degradation instead of aborts or hangs -----------
    high_plan, high = run_tier(HIGH)
    degraded = sum(r.degraded for r in high)
    survived = len(high) - degraded
    assert survived > 0, "every trial degraded; the retry path is dead"
    assert all(r.attempts >= 1 for r in high)
    assert all(r.total_ns >= r.elapsed_ns for r in high)

    with capsys.disabled():
        print(f"\n{len(clean_plan)} trials/tier: "
              f"low-rate retries {retried}/{len(low)}, "
              f"high-rate degraded {degraded}/{len(high)} "
              f"(survived {survived})")


def test_fault_sweep_benchmarked(benchmark, capsys):
    """Wall-clock of the faulted sweep (rounds pinned to 1)."""

    def harness():
        _, results = run_tier(HIGH)
        return results

    results = benchmark.pedantic(harness, rounds=1, iterations=1)
    assert len(results) == len(TrialPlan.matrix(**SWEEP).specs)
    with capsys.disabled():
        print(f"\nfault sweep: {len(results)} trials, "
              f"{sum(r.degraded for r in results)} degraded")
