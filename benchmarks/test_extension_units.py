"""Extension bench — execution units beyond confidential VMs (§VI).

Compares the same FaaS workloads across four execution units: a TDX
confidential VM, an SGX enclave (first-generation, process-level), a
confidential container (TDX sandbox + kata-style agent), and the
plain VM baseline.

Shape assertions, matching the literature the paper cites:
- second-generation VM TEEs beat SGX on syscall/IO paths by a wide
  margin (the motivation of §I);
- confidential containers match TDX on compute but pay extra on I/O
  and carry an "unpractical" cold start (§V, Segarra et al.);
- pure compute is near-native everywhere.
"""

import statistics

from repro.core.launcher import FunctionLauncher
from repro.experiments.report import render_table
from repro.tee import platform_by_name
from repro.workloads.faas import workload_by_name

UNITS = ("tdx", "sgx", "coco")
WORKLOADS = ("cpustress", "logging", "iostress", "memstress", "filesystem")


def _ratio(platform_name, workload_name, trials=8):
    platform = platform_by_name(platform_name, seed=2)
    secure = platform.create_vm()
    secure.boot()
    normal = platform.create_vm()
    normal.config.secure = False
    normal.boot()
    body = FunctionLauncher.for_language("lua").launch(
        workload_by_name(workload_name)
    )
    s = statistics.fmean(
        secure.run(body, name=workload_name, trial=i).elapsed_ns
        for i in range(trials)
    )
    n = statistics.fmean(
        normal.run(body, name=workload_name, trial=i).elapsed_ns
        for i in range(trials)
    )
    return s / n


def test_execution_unit_comparison(benchmark, capsys):
    def run():
        grid = {
            (unit, workload): _ratio(unit, workload)
            for unit in UNITS for workload in WORKLOADS
        }
        coco = platform_by_name("coco")
        grid["cold_start_ratio"] = (
            coco.cold_start_ns(secure=True) / coco.cold_start_ns(secure=False)
        )
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(render_table(
            "Execution units: secure/normal ratios per workload",
            ["unit", *WORKLOADS, "cold start"],
            [
                [
                    unit,
                    *(f"{grid[(unit, w)]:.2f}" for w in WORKLOADS),
                    f"{grid['cold_start_ratio']:.0f}x" if unit == "coco" else "-",
                ]
                for unit in UNITS
            ],
        ))

    # compute near-native everywhere
    for unit in UNITS:
        assert grid[(unit, "cpustress")] < 1.4, unit

    # SGX's OCALL tax: far worse than TDX on the syscall-heavy path
    assert grid[("sgx", "logging")] > 2.5 * grid[("tdx", "logging")]
    assert grid[("sgx", "memstress")] > grid[("tdx", "memstress")]

    # confidential containers: TDX-like compute, worse I/O, huge cold start
    assert abs(grid[("coco", "cpustress")] - grid[("tdx", "cpustress")]) < 0.15
    assert grid[("coco", "iostress")] > 1.3 * grid[("tdx", "iostress")]
    assert grid["cold_start_ratio"] > 10
