"""Bench E3 — Fig. 4: UnixBench index ratios.

Shape assertions:
- every TEE is slower than its normal VM;
- ordering: TDX least overhead, SEV-SNP analogous (slightly more),
  CCA the most by far;
- UnixBench overheads exceed the ML/DBMS ones on the hardware TEEs
  (the sleep/wake world-switch effect);
- context-switch-heavy tests are the worst cells.
"""

from repro.experiments import run_fig4


def test_fig4_unixbench(regenerate):
    result = regenerate(run_fig4, seed=1, trials=6, scale=0.3)

    tdx = result.index_ratios["tdx"]
    sev = result.index_ratios["sev-snp"]
    cca = result.index_ratios["cca"]

    assert tdx > 1.1 and sev > 1.1 and cca > 2.0
    # "TDX introduces the least overhead, SEV-SNP leads to analogous
    # figures, while CCA is the one introducing the most overhead"
    assert tdx < sev < cca
    assert abs(tdx - sev) < 0.2, "TDX and SEV should be analogous"
    assert cca > 3.0

    # overheads larger than ML (~1.05-1.1) and DBMS (~1.1)
    assert tdx > 1.15
    assert sev > 1.15

    # the mechanism: frequent transitions; context switching is among
    # the most penalised tests on TDX
    assert result.transitions["tdx"] > 100
    tdx_tests = result.test_ratios["tdx"]
    assert tdx_tests["context1"] > tdx_tests["dhry2"]
    assert tdx_tests["context1"] > tdx_tests["whetstone"]
