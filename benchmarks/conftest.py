"""Benchmark configuration.

Every bench regenerates one paper artifact at (or near) paper scale,
prints the rendered figure, and asserts the paper's *shape* findings
(who wins, by roughly what factor).  Runs are single-shot — the
interesting measurement is the virtual-time data inside the artifact,
not the wall-clock of the harness — so rounds/iterations are pinned
to 1 via ``benchmark.pedantic`` in each bench.
"""

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a figure harness once under pytest-benchmark and print it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _run
