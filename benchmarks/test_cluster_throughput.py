"""Bench T9 — cluster-gateway open-loop throughput trajectory.

Measures the harness, not the paper: wall-clock throughput of the
:mod:`repro.core.cluster` event engine pushing a calm (fault-free)
open-loop Poisson sweep through fleets of 1, 4, and 8 hosts.  The
reported number is **virtual-time requests per wall-second** — how
many simulated arrivals the gateway grinds through per real second.

The committed trajectory lives in ``BENCH_9.json`` at the repo root:

- ``hosts`` — requests/wall-second per fleet size when the file was
  last regenerated (machine-bound, recorded for context);
- ``gate`` — the regression contract CI enforces.

Absolute requests/s is machine-bound, so the CI gate is the **in-run
scaling efficiency** (8-host throughput / 1-host throughput, both
best-of-N in this very process): machine speed cancels, and the
failure mode the gate exists for — per-event work that scales with
fleet size, e.g. an O(hosts) scan on the request hot path — drags
the ratio down far below any committed floor.  Growing the fleet 8x
costs some throughput (more probe/lifecycle events share the queue
with the same request count), but it must stay a modest constant
factor, not a collapse.

Regenerate after intentional perf changes with::

    CONFBENCH_WRITE_BENCH=1 python -m pytest benchmarks/test_cluster_throughput.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.runner import TrialPlan, TrialRunner, TrialSpec

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_9.json"

#: Open-loop arrivals per sweep — large enough that event-queue work
#: dominates setup, small enough for a best-of-N loop in CI.
REQUESTS = 30_000
#: Offered load scales with the fleet (constant per-host pressure) so
#: every fleet size serves essentially all arrivals: a fixed total
#: rate would drown the 1-host fleet in sheds, which are much cheaper
#: than served requests and would distort the throughput ratio.
RATE_PER_HOST_RPS = 100.0
FLEETS = (1, 4, 8)

#: Best-of-N wall-clock reps per fleet size.
REPS = 3


def _plan(hosts: int) -> TrialPlan:
    spec = TrialSpec.make(
        kind="cluster", platform="tdx", secure=True, workload="poisson",
        trial=0, seed=0,
        params={"hosts": hosts, "requests": REQUESTS,
                "rate_rps": RATE_PER_HOST_RPS * hosts},
    )
    return TrialPlan(specs=(spec,))


def _measure(hosts: int) -> tuple[float, dict]:
    """Best-of-REPS requests/wall-second for one fleet size."""
    best, output = float("inf"), None
    for _ in range(REPS):
        plan = _plan(hosts)
        start = time.perf_counter()
        results = TrialRunner().run(plan)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, output = elapsed, results[0].output
    assert output["conserved"] is True
    assert output["requests"] == REQUESTS
    return REQUESTS / best, output


def test_cluster_throughput_trajectory(capsys):
    rates = {}
    for hosts in FLEETS:
        rates[hosts], output = _measure(hosts)
        # a calm sweep must actually serve, not shed its way to speed
        assert output["served"] > 0.95 * REQUESTS

    efficiency = rates[8] / rates[1]
    regenerate = bool(os.environ.get("CONFBENCH_WRITE_BENCH"))
    committed = (None if regenerate
                 else json.loads(BENCH_PATH.read_text(encoding="utf-8")))

    with capsys.disabled():
        print()
        print(f"cluster open-loop sweep ({REQUESTS} requests, "
              f"best of {REPS}):")
        for hosts in FLEETS:
            print(f"  hosts={hosts}  {rates[hosts]:10.0f} requests/s")
        floor_note = ("regenerating" if committed is None else
                      f"committed "
                      f"{committed['gate']['committed_efficiency']:.2f}")
        print(f"  in-run scaling efficiency (8 hosts / 1 host): "
              f"{efficiency:.2f} ({floor_note})")

    if regenerate:
        payload = {
            "bench": "cluster-open-loop-throughput",
            "config": {"requests": REQUESTS,
                       "rate_rps_per_host": RATE_PER_HOST_RPS,
                       "fleets": list(FLEETS), "best_of": REPS,
                       "process": "poisson", "faults": None},
            "hosts": {str(hosts): round(rates[hosts], 0)
                      for hosts in FLEETS},
            "gate": {
                "metric": "scaling_efficiency_8_hosts_vs_1",
                # committed at 85% of the regen-time measurement: the
                # ratio cancels machine speed but not allocator or
                # cache noise, and the gated failure mode (O(hosts)
                # work per event) lands far below any committed floor
                "committed_efficiency": round(efficiency * 0.85, 2),
                "max_regression": 0.25,
            },
        }
        BENCH_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return

    gate = committed["gate"]
    floor = gate["committed_efficiency"] * (1.0 - gate["max_regression"])
    assert efficiency >= floor, (
        f"cluster throughput regressed: 8-host/1-host efficiency "
        f"{efficiency:.2f} fell below {floor:.2f} (committed "
        f"{gate['committed_efficiency']:.2f} minus "
        f"{gate['max_regression']:.0%} tolerance) — per-event work is "
        "scaling with fleet size; profile the gateway hot path before "
        "re-baselining with CONFBENCH_WRITE_BENCH=1"
    )
