"""Bench E6 — Fig. 7: CCA FaaS heatmap.

The same 25 x 7 grid as Fig. 6 on CCA realms inside the FVP.

Shape assertions:
- CCA ratios are higher than both hardware TEEs overall ("more
  lighter blue/red-ish cells");
- the I/O cells are the extreme ones (emulated virtio);
- even CCA's best cells carry visible overhead.
"""

import statistics

from repro.experiments import run_fig6, run_fig7
from repro.workloads.base import WorkloadTrait


def test_fig7_cca_heatmap(regenerate):
    result = regenerate(run_fig7, seed=1, trials=10)
    # a reduced Fig. 6 rerun for the cross-figure comparison
    hw = run_fig6(seed=1, trials=3)

    cca_mean = statistics.fmean(result.grids["cca"].values())
    tdx_mean = statistics.fmean(hw.grids["tdx"].values())
    sev_mean = statistics.fmean(hw.grids["sev-snp"].values())

    # "CCA incurs much higher overheads compared to the other TEEs"
    assert cca_mean > 1.5 * tdx_mean
    assert cca_mean > 1.5 * sev_mean

    # I/O is the worst trait under the emulated stack
    cca_io = result.trait_mean("cca", WorkloadTrait.IO)
    cca_cpu = result.trait_mean("cca", WorkloadTrait.CPU)
    assert cca_io > cca_cpu

    # every cell shows overhead; no below-1 luck inside the simulator
    assert min(result.grids["cca"].values()) > 1.0
    assert result.cells_below_one("cca") == 0
