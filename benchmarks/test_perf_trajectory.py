"""Bench T6 — perf trajectory of the batched op-stream kernel.

Unlike the figure benches (which assert the paper's *virtual-time*
shape), this bench measures the harness itself: wall-clock
trials/second over the fig4 UnixBench sweep — 3 platforms x 6 trials
x secure+normal = 36 trials — with the batched engine and with the
legacy per-op engine, on the same machine in the same process.

The committed trajectory lives in ``BENCH_6.json`` at the repo root:

- ``baseline_pre_refactor`` — trials/s recorded on the per-op
  implementation *before* the batch kernel landed (the 5x target's
  denominator);
- ``post_refactor`` — trials/s measured when the file was last
  regenerated, plus the in-run batch-vs-perop speedup;
- ``attribution`` — per-CostCategory virtual-time attribution of the
  sweep from :class:`repro.obs.profile.Profile` (what ``confbench
  profile`` prints), so the trajectory records *where* simulated time
  goes, not just how fast the simulator grinds through it;
- ``gate`` — the regression contract CI enforces.

Absolute trials/s is machine-bound, so the CI gate is the **in-run
speedup ratio** (batch engine / per-op engine, both best-of-N in this
very process): machine speed cancels, and reverting the batch path
drags the ratio toward 1.0.  The build fails when the measured ratio
regresses more than ``max_regression`` (10%) below the committed one.

This module also hosts the supply-chain pull trajectory
(``BENCH_10.json``): wall-clock provisions/second through the full
attest → KBS → pull chain for the eager and lazy strategies on the
same image.  Its gate is the in-run lazy/eager throughput ratio —
machine speed cancels, and the failure mode it guards (lazy pull
degrading into whole-image chunk work on the boot path) drags the
ratio toward 1.0.

Regenerate after intentional perf changes with::

    CONFBENCH_WRITE_BENCH=1 python -m pytest benchmarks/test_perf_trajectory.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.attest import LaunchAttestor
from repro.attest.crypto import derived_keypair
from repro.core.runner import TrialPlan, TrialRunner
from repro.obs.profile import Profile
from repro.sim.rng import SimRng
from repro.supply import (
    KeyBrokerService,
    LaunchProvisioner,
    Registry,
    build_image,
    sign_image,
)
from repro.supply.image import CHUNK_BYTES

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_6.json"
BENCH10_PATH = Path(__file__).resolve().parents[1] / "BENCH_10.json"

#: The fig4 sweep configuration (see repro.experiments.fig4_unixbench).
SWEEP = dict(platforms=("tdx", "sev-snp", "cca"), trials=6,
             scale=0.3, seed=1)
TOTAL_TRIALS = 36  # 3 platforms x 6 trials x (secure + normal)

#: Best-of-N wall-clock reps per (engine, jobs) cell.
REPS = 5


def _plan(engine: str) -> TrialPlan:
    return TrialPlan.matrix(
        kind="unixbench",
        platforms=SWEEP["platforms"],
        workloads=("unixbench",),
        trials=SWEEP["trials"],
        seed=SWEEP["seed"],
        params={"scale": SWEEP["scale"], "engine": engine},
    )


def _measure(engine: str, jobs: int) -> tuple[float, TrialRunner]:
    """Best-of-REPS trials/second for one engine/jobs cell."""
    best, last_runner = float("inf"), None
    for _ in range(REPS):
        runner = TrialRunner(jobs=jobs)
        plan = _plan(engine)
        start = time.perf_counter()
        results = runner.run(plan)
        elapsed = time.perf_counter() - start
        assert len(results) == TOTAL_TRIALS
        if elapsed < best:
            best, last_runner = elapsed, runner
    return TOTAL_TRIALS / best, last_runner


def _attribution(runner: TrialRunner) -> dict:
    profile = Profile.from_history(runner.history)
    total = profile.total_ns or 1.0
    return {
        "trials": profile.trials,
        "total_virtual_ns": profile.total_ns,
        "categories_ns": {name: profile.categories[name]
                          for name in sorted(profile.categories)},
        "categories_share": {
            name: round(profile.categories[name] / total, 4)
            for name in sorted(profile.categories)},
    }


def test_perf_trajectory(benchmark, capsys):
    # one sweep under pytest-benchmark for the --benchmark-json artifact
    benchmark.pedantic(lambda: TrialRunner(jobs=1).run(_plan("batch")),
                       rounds=1, iterations=1)

    batch_serial, batch_runner = _measure("batch", jobs=1)
    perop_serial, _ = _measure("perop", jobs=1)
    batch_j2, _ = _measure("batch", jobs=2)
    speedup = batch_serial / perop_serial

    committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    baseline = committed["baseline_pre_refactor"]

    with capsys.disabled():
        print()
        print(f"fig4 sweep ({TOTAL_TRIALS} trials, best of {REPS}):")
        print(f"  batch  serial  {batch_serial:8.1f} trials/s"
              f"   ({batch_serial / baseline['serial_trials_per_s']:.2f}x"
              " pre-refactor baseline)")
        print(f"  batch  jobs=2  {batch_j2:8.1f} trials/s")
        print(f"  perop  serial  {perop_serial:8.1f} trials/s")
        print(f"  in-run speedup (batch/perop): {speedup:.2f}x"
              f" (committed {committed['gate']['committed_speedup']:.2f}x)")

    if os.environ.get("CONFBENCH_WRITE_BENCH"):
        payload = {
            "bench": "fig4-unixbench-sweep",
            "config": {**{k: list(v) if isinstance(v, tuple) else v
                          for k, v in SWEEP.items()},
                       "total_trials": TOTAL_TRIALS, "best_of": REPS},
            "baseline_pre_refactor": baseline,
            "post_refactor": {
                "serial_trials_per_s": round(batch_serial, 2),
                "parallel_j2_trials_per_s": round(batch_j2, 2),
                "perop_engine_serial_trials_per_s": round(perop_serial, 2),
                "speedup_vs_pre_refactor_baseline": round(
                    batch_serial / baseline["serial_trials_per_s"], 2),
                "in_run_speedup_batch_vs_perop": round(speedup, 2),
            },
            "gate": {
                "metric": "in_run_speedup_batch_vs_perop",
                # committed at 85% of the regen-time measurement: the
                # ratio cancels machine speed but not scheduler noise or
                # cross-machine cache behaviour, and the failure mode the
                # gate exists for (losing the batch path) drags the ratio
                # toward 1.0 — far below any committed floor
                "committed_speedup": round(speedup * 0.85, 2),
                "max_regression": 0.10,
            },
            "attribution": _attribution(batch_runner),
        }
        BENCH_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return

    gate = committed["gate"]
    floor = gate["committed_speedup"] * (1.0 - gate["max_regression"])
    assert speedup >= floor, (
        f"perf trajectory regressed: batch/perop speedup {speedup:.2f}x "
        f"fell below {floor:.2f}x (committed "
        f"{gate['committed_speedup']:.2f}x minus "
        f"{gate['max_regression']:.0%} tolerance) — the batch kernel "
        "lost its edge; profile before re-baselining with "
        "CONFBENCH_WRITE_BENCH=1"
    )
    # the refactor's headline claim stays pinned: >= 5x the recorded
    # pre-refactor trials/s when BENCH_6.json was last regenerated
    recorded = committed["post_refactor"]
    assert (recorded["serial_trials_per_s"]
            >= 5.0 * baseline["serial_trials_per_s"])


# --- supply-chain pull trajectory (BENCH_10.json) -------------------

#: Image big enough that chunk fetch/verify/decrypt dominates the
#: boot: 48 chunks eager vs one bootstrap chunk per layer lazy.
SUPPLY_LAYERS = (24 * CHUNK_BYTES, 16 * CHUNK_BYTES, 8 * CHUNK_BYTES)
#: Cold boots (distinct VM ids — no session resumption) per rep.
SUPPLY_BOOTS = 24
#: Best-of-N wall-clock reps per strategy.
SUPPLY_REPS = 3


def _supply_chain(strategy: str) -> LaunchProvisioner:
    rng = SimRng(11, "bench-supply")
    bundle = build_image("bench", "v1", rng.child("image"),
                         layer_sizes=SUPPLY_LAYERS)
    publisher = derived_keypair(rng.child("publisher"), "publisher")
    sign_image(bundle, publisher)
    registry = Registry()
    registry.push(bundle)
    attestor = LaunchAttestor("tdx", seed=11)
    kbs = KeyBrokerService(attestor.service)
    kbs.register_bundle(bundle)
    return LaunchProvisioner(
        attestor, registry, kbs, ("bench", "v1"),
        publisher_key=publisher.public, strategy=strategy,
        key_ids=bundle.manifest.key_ids)


def _measure_supply(strategy: str) -> float:
    """Best-of-SUPPLY_REPS cold provisions/wall-second."""
    best = float("inf")
    for _ in range(SUPPLY_REPS):
        provisioner = _supply_chain(strategy)
        start = time.perf_counter()
        for boot in range(SUPPLY_BOOTS):
            report = provisioner.provision(f"vm-{boot}")
            assert not report.resumed
        elapsed = time.perf_counter() - start
        assert provisioner.stats["provisioned"] == SUPPLY_BOOTS
        best = min(best, elapsed)
    return SUPPLY_BOOTS / best


def test_supply_pull_trajectory(capsys):
    eager_rate = _measure_supply("eager")
    lazy_rate = _measure_supply("lazy")
    speedup = lazy_rate / eager_rate

    regenerate = bool(os.environ.get("CONFBENCH_WRITE_BENCH"))
    committed = (None if regenerate
                 else json.loads(BENCH10_PATH.read_text(encoding="utf-8")))

    with capsys.disabled():
        print()
        print(f"supply-chain cold boots ({SUPPLY_BOOTS} provisions, "
              f"best of {SUPPLY_REPS}):")
        print(f"  eager  {eager_rate:8.1f} boots/s")
        print(f"  lazy   {lazy_rate:8.1f} boots/s")
        floor_note = ("regenerating" if committed is None else
                      f"committed "
                      f"{committed['gate']['committed_speedup']:.2f}x")
        print(f"  in-run speedup (lazy/eager): {speedup:.2f}x "
              f"({floor_note})")

    if regenerate:
        payload = {
            "bench": "supply-chain-pull-throughput",
            "config": {
                "layer_chunks": [size // CHUNK_BYTES
                                 for size in SUPPLY_LAYERS],
                "boots": SUPPLY_BOOTS, "best_of": SUPPLY_REPS,
                "platform": "tdx",
            },
            "strategies": {
                "eager_boots_per_s": round(eager_rate, 1),
                "lazy_boots_per_s": round(lazy_rate, 1),
            },
            "gate": {
                "metric": "in_run_speedup_lazy_vs_eager",
                # committed at 85% of the regen-time measurement: the
                # ratio cancels machine speed but not hash-throughput
                # noise, and the gated failure mode (lazy pull doing
                # whole-image chunk work) lands near 1.0, far below
                # any committed floor
                "committed_speedup": round(speedup * 0.85, 2),
                "max_regression": 0.15,
            },
        }
        BENCH10_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return

    gate = committed["gate"]
    floor = gate["committed_speedup"] * (1.0 - gate["max_regression"])
    assert speedup >= floor, (
        f"supply trajectory regressed: lazy/eager speedup "
        f"{speedup:.2f}x fell below {floor:.2f}x (committed "
        f"{gate['committed_speedup']:.2f}x minus "
        f"{gate['max_regression']:.0%} tolerance) — the lazy pull is "
        "paying eager-grade chunk work on the boot path; profile "
        "before re-baselining with CONFBENCH_WRITE_BENCH=1"
    )
