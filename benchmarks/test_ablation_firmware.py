"""Ablation — the TDX firmware upgrade (§III-B).

The paper initially observed "consistently high overhead without a
clear cause", solved by Intel's TDX_1.5.05.46.698 firmware, "boosting
the execution runtime up to a 10x factor".  This ablation runs the
transition-heavy UnixBench context-switch test under both firmware
models and checks the upgrade's effect size.
"""

import statistics

from repro.experiments.report import render_table
from repro.tee.tdx import GOOD_FIRMWARE, OLD_FIRMWARE, TdxPlatform
from repro.workloads.unixbench import run_unixbench


def _context_test_time(firmware: str, trials: int = 5) -> float:
    platform = TdxPlatform(seed=1, firmware=firmware)
    vm = platform.create_vm()
    vm.boot()
    times = []
    for trial in range(trials):
        report = vm.run(lambda k: run_unixbench(k, scale=0.3), name="ub",
                        trial=trial).output
        times.append(report.score_of("context1").elapsed_ns)
    return statistics.fmean(times)


def test_firmware_upgrade_effect(benchmark, capsys):
    def run():
        return {
            "old": _context_test_time(OLD_FIRMWARE),
            "new": _context_test_time(GOOD_FIRMWARE),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    boost = result["old"] / result["new"]
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation — TDX firmware model (context-switch test time)",
            ["firmware", "mean time (ms)"],
            [
                [OLD_FIRMWARE, f"{result['old'] / 1e6:.3f}"],
                [GOOD_FIRMWARE, f"{result['new'] / 1e6:.3f}"],
                ["boost", f"{boost:.1f}x"],
            ],
        ))

    # "boosting the execution runtime up to a 10x factor" on the
    # transition-bound paths (the whole-suite effect is smaller)
    assert 4.0 < boost < 11.0
